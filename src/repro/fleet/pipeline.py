"""Workload-to-bid: metered query-cost savings become fleet bids.

This closes the loop the paper describes between physical design and
pricing. Each tenant declares the *workload* she will run — which table,
which columns, which probed keys, how many executions per slot, over
which service interval — and each candidate optimization is either a
hypothetical narrow view (:class:`~repro.db.savings.CandidateView`) or a
hypothetical index (:class:`~repro.db.savings.CandidateIndex`). The
:class:`~repro.db.savings.SavingsEstimator` turns (workload, candidate)
pairs into simulated seconds saved per slot; those savings *are* the
additive bids, and the candidate's storage footprint prices its period
cost ``C_j``. The resulting catalog and bids feed one
:class:`~repro.fleet.engine.FleetEngine`, so what the mechanisms share is
the physically-derived cost and what tenants bid is the physically-derived
benefit — no synthetic numbers anywhere in the chain. Views and indexes
travel the identical mechanism path: same quote type, same bid algebra,
same games (property-tested in ``tests/test_advisor_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.bids.additive import AdditiveBid
from repro.cloudsim.catalog import OptimizationCatalog, OptimizationSpec
from repro.db.savings import (
    Candidate,
    CandidateIndex,
    SavingsEstimator,
    SavingsQuote,
)
from repro.errors import GameConfigError
from repro.fleet.engine import FleetEngine

__all__ = [
    "TenantWorkload",
    "workload_bid",
    "candidate_catalog",
    "build_fleet",
    "build_service",
]


@dataclass(frozen=True)
class TenantWorkload:
    """One tenant's declared query workload for the period.

    The tenant runs ``runs_per_slot`` executions of a scan-shaped query
    over ``table_name`` touching ``columns``, in every slot of
    ``[start, end]``. ``key_columns`` names the columns those runs probe
    by key (equality or range): an index candidate only helps — and only
    earns a bid — when its column is among them. When only *some* of the
    runs probe a column, ``key_runs`` records the per-slot probing-run
    count per column (``((column, runs), ...)``); columns without an
    entry default to ``runs_per_slot`` — index savings are priced per
    probing run, not per pass of unrelated query shapes.
    """

    tenant: object
    table_name: str
    columns: tuple
    start: int
    end: int
    runs_per_slot: float = 1.0
    key_columns: tuple = ()
    key_runs: tuple = ()

    def __post_init__(self) -> None:
        if self.start < 1:
            raise GameConfigError(f"start slot must be >= 1, got {self.start}")
        if self.end < self.start:
            raise GameConfigError(
                f"end slot {self.end} precedes start slot {self.start}"
            )
        if self.runs_per_slot < 0:
            raise GameConfigError(
                f"runs per slot must be >= 0, got {self.runs_per_slot}"
            )
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(self, "key_columns", tuple(self.key_columns))
        key_runs = tuple((column, float(runs)) for column, runs in self.key_runs)
        for column, runs in key_runs:
            if runs < 0:
                raise GameConfigError(
                    f"key runs for {column!r} must be >= 0, got {runs}"
                )
        object.__setattr__(self, "key_runs", key_runs)

    def probing_runs(self, column: str) -> float:
        """Per-slot runs that probe ``column`` (``runs_per_slot`` default)."""
        for key, runs in self.key_runs:
            if key == column:
                return runs
        return self.runs_per_slot


def workload_bid(
    estimator: SavingsEstimator,
    workload: TenantWorkload,
    candidate: Candidate,
    quote: SavingsQuote | None = None,
) -> AdditiveBid | None:
    """The bid ``workload`` implies for ``candidate`` (None when useless).

    A view candidate helps a workload when it covers the same table and
    every column the queries touch; an index candidate helps when its
    column is one the workload probes. Either way the per-slot value is
    the simulated seconds the tenant's runs save through it — from there
    on, views and indexes are indistinguishable to the games. Pass the
    candidate's precomputed ``quote`` (from
    :meth:`~repro.db.savings.SavingsEstimator.price_many`) to skip the
    estimator's catalog walk — the numbers are identical.
    """
    if candidate.table_name != workload.table_name:
        return None
    if isinstance(candidate, CandidateIndex):
        if candidate.column not in workload.key_columns:
            return None
        runs = workload.probing_runs(candidate.column)
    else:
        if not set(workload.columns) <= set(candidate.columns):
            return None
        runs = workload.runs_per_slot
    if quote is None:
        quote = estimator.quote(candidate)
    per_slot = quote.saving_seconds(runs, estimator.model.seconds_per_unit)
    if per_slot <= 0.0:
        return None
    duration = workload.end - workload.start + 1
    return AdditiveBid.over(workload.start, [per_slot] * duration)


def candidate_catalog(
    estimator: SavingsEstimator,
    candidates: Iterable[Candidate],
    dollars_per_byte: float,
    quotes: Mapping[str, SavingsQuote] | None = None,
) -> OptimizationCatalog:
    """Price each candidate's storage into an optimization catalog.

    ``C_j`` is the candidate's materialized size times the period storage
    rate — the same "cost of keeping the view for ``T``" the paper
    amortizes; an index candidate's size is its (key, rid) footprint
    priced at the same rate. Pass precomputed ``quotes`` (from
    :meth:`~repro.db.savings.SavingsEstimator.price_many`) to skip the
    per-candidate sizing pass.
    """
    if dollars_per_byte <= 0:
        raise GameConfigError(
            f"storage rate must be positive, got {dollars_per_byte}"
        )
    catalog = OptimizationCatalog()
    for candidate in candidates:
        size = (
            quotes[candidate.name].view_bytes
            if quotes is not None
            else estimator.quote(candidate).view_bytes
        )
        if isinstance(candidate, CandidateIndex):
            kind = "index"
            description = (
                f"{candidate.kind} index on "
                f"{candidate.table_name}.{candidate.column}"
            )
        else:
            kind = "view"
            description = (
                f"narrow view {candidate.columns!r} over "
                f"{candidate.table_name}"
            )
        catalog.register(
            OptimizationSpec(
                candidate.name,
                size * dollars_per_byte,
                kind=kind,
                description=description,
            )
        )
    return catalog


def build_fleet(
    estimator: SavingsEstimator,
    workloads: Sequence[TenantWorkload],
    candidates: Sequence[Candidate],
    horizon: int,
    dollars_per_byte: float,
    shards: int = 1,
    workers: int = 0,
):
    """Assemble a fleet whose bids are workload-derived savings.

    Every (tenant, candidate) pair with a positive saving becomes one
    additive bid in the candidate's game; run the returned executor to
    see which physical designs the tenants collectively fund, and at
    what cost-shares. ``workers`` picks the executor backend
    (:meth:`~repro.fleet.engine.FleetEngine.build`): 0/1 in-process,
    more a shared-nothing multi-process pool with identical outcomes.

    Candidates are priced once up front
    (:meth:`~repro.db.savings.SavingsEstimator.price_many`), then the
    (workload, candidate) sweep reuses the quotes — the generated bids are
    bit-identical to calling :func:`workload_bid` per pair, without the
    O(W x C) catalog walks.
    """
    quotes = estimator.price_many(candidates)
    catalog = candidate_catalog(
        estimator, candidates, dollars_per_byte, quotes=quotes
    )
    engine = FleetEngine.build(
        catalog, horizon=horizon, shards=shards, workers=workers
    )
    for workload in workloads:
        if workload.end > horizon:
            raise GameConfigError(
                f"tenant {workload.tenant!r} runs until slot {workload.end}, "
                f"beyond the horizon {horizon}"
            )
        for candidate in candidates:
            bid = workload_bid(
                estimator, workload, candidate, quote=quotes[candidate.name]
            )
            if bid is not None:
                engine.place_bid(workload.tenant, candidate.name, bid)
    return engine


def build_service(
    estimator: SavingsEstimator,
    workloads: Sequence[TenantWorkload],
    candidates: Sequence[Candidate],
    horizon: int,
    dollars_per_byte: float,
    shards: int = 1,
    workers: int = 0,
):
    """:func:`build_fleet`, handed over behind the gateway facade.

    Returns a :class:`~repro.gateway.PricingService` whose open period
    *is* the assembled fleet (same engine object, same bids), sharing the
    estimator's relational catalog and cost model — so callers dispatch
    envelopes (``AdvanceSlots``, ``LedgerQuery``, ...) against the
    workload-derived games instead of driving the engine object directly.
    """
    # Imported lazily: the gateway sits above the fleet in the layering.
    from repro.gateway.service import PricingService

    engine = build_fleet(
        estimator,
        workloads,
        candidates,
        horizon,
        dollars_per_byte,
        shards,
        workers=workers,
    )
    return PricingService(
        db_catalog=estimator.catalog,
        cost_model=estimator.model,
        fleet=engine,
    )
