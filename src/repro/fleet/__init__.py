"""Fleet-scale pricing: many concurrent games, one slot-synchronized engine.

:mod:`repro.cloudsim` simulates one service period for one catalog with a
per-optimization Python loop; this package batches *hundreds* of
concurrent additive pricing games into a single scheduler
(:class:`~repro.fleet.engine.FleetEngine`) that makes one pass over the
fleet's arrivals and departures per slot — amortized O(changed bids)
across all games — over a sharded, deterministically ordered catalog
(:class:`~repro.fleet.shard.ShardMap`). The workload-to-bid pipeline
(:mod:`repro.fleet.pipeline`) feeds it bids derived from
:mod:`repro.db`'s cost model instead of synthetic numbers, closing the
paper's loop between physical design and pricing.

``CloudService``'s additive mode is a thin wrapper over this engine, so
the single-catalog service and the fleet share one mechanism path.
"""

from repro.fleet.engine import FleetBatch, FleetEngine, FleetReport
from repro.fleet.executor import FleetExecutor
from repro.fleet.pipeline import (
    TenantWorkload,
    build_fleet,
    build_service,
    candidate_catalog,
    workload_bid,
)
from repro.fleet.shard import ShardMap

__all__ = [
    "FleetBatch",
    "FleetEngine",
    "FleetExecutor",
    "FleetReport",
    "MultiProcessFleet",
    "ShardMap",
    "TenantWorkload",
    "workload_bid",
    "candidate_catalog",
    "build_fleet",
    "build_service",
]


def __getattr__(name: str):
    # MultiProcessFleet resolves lazily: repro.fleet.mp pulls in the
    # gateway codec, whose package imports the service, which imports
    # this package — eager import here would close that cycle on a
    # partially initialized module.
    if name == "MultiProcessFleet":
        from repro.fleet.mp import MultiProcessFleet

        return MultiProcessFleet
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
