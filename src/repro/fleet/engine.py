"""The fleet engine: hundreds of concurrent pricing games, one scheduler.

:class:`FleetEngine` runs every additive (AddOn) game of an optimization
catalog inside a single slot-synchronized loop. Where one
:class:`~repro.cloudsim.service.CloudService` per optimization would pay a
full Python slot-advance per game per slot — active-set bookkeeping,
residual recomputation, a mechanism step — the fleet makes one pass over
the whole fleet's arrivals and departures per slot:

* **Precomputed residual schedule.** A bid's per-slot residuals are fixed
  at placement (revisions rewrite only future slots), so the engine
  schedules them once instead of re-deriving them from an active set every
  slot. Bulk-ingested bids live in columnar arrays — one lexsorted
  ``(slot, shard-order)`` schedule shared by the whole fleet — and a slot
  is consumed by advancing a pointer, not by scanning per-game state.
* **Lazy games.** A game's sorted mechanism engine is not materialized
  until its bids could conceivably cover its cost. The proof is the same
  sound feasibility gate as
  :meth:`~repro.core.fastshapley.IncrementalShapley.settled` (a serviced
  set of size ``k`` needs bids summing to ``>= cost`` minus tolerances),
  tracked as an O(1) running total. For bulk bids even that tracking is
  precomputed: finalization reduces the schedule to per-``(slot, game)``
  group deltas with numpy, so a provably-idle group costs three scalar
  operations in the slot loop — amortized O(changed *groups*), not
  entries, across the entire fleet.
* **Batched dispatch.** Groups of games that might move are stepped
  through :meth:`repro.core.online.AddOnState.apply_changes`, the
  allocation-free batch entry point over the fused
  :meth:`~repro.core.fastshapley.IncrementalShapley.apply_and_solve`.
* **Array-backed shared state.** The schedule, its group index, the
  per-group deltas, and per-game revenue are flat parallel arrays; the
  ledger and event log are shared by every game.

Determinism is contractual (see DESIGN.md "Fleet conventions"): within a
slot, games step in shard-major order (:class:`~repro.fleet.shard.ShardMap`),
same-slot grants of one game are emitted in a fixed (type name, string)
user order, and departures are invoiced in placement order, so a fixed
trace replays to an identical event log regardless of how its changes
were discovered.

Each game lives in one of three states, only ever moving forward:

``vector-cold``
    Bulk schedule only; accounted by precomputed group deltas.
``dict-cold``
    Touched by :meth:`FleetEngine.place_bid` (the revisable per-bid path,
    which ``CloudService`` additive mode wraps): the current profile is an
    explicit dict, still gated without a mechanism engine.
``hot``
    The feasibility gate failed once: the profile is flushed into the
    game's :class:`~repro.core.online.AddOnState` and every later change
    is applied incrementally.

The per-bid entry points replicate ``CloudService``'s historical additive
semantics exactly; :meth:`FleetEngine.ingest` trusts its generator (one
bid per (user, optimization), no revisions) in exchange for vectorized
intake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro import obs
from repro.bids.additive import AdditiveBid
from repro.bids.revision import RevisableBid
from repro.cloudsim.catalog import OptimizationCatalog
from repro.cloudsim.events import (
    BidPlaced,
    BidRevised,
    EventLog,
    OptimizationImplemented,
    UserCharged,
    UserDeparted,
    UserGranted,
)
from repro.cloudsim.ledger import BillingLedger
from repro.core.fastshapley import GATE_SLACK as _GATE_SLACK
from repro.core.online import AddOnState
from repro.core.outcome import OptId, UserId
from repro.errors import GameConfigError, MechanismError, ProtocolError
from repro.fleet.executor import FleetExecutor
from repro.fleet.shard import ShardMap

__all__ = ["FleetBatch", "FleetEngine", "FleetReport"]

# Per-slot granularity only (DESIGN.md "Metrics conventions"): the
# per-bid/per-group loops inside a slot are the fleet's hot path and
# stay uninstrumented — one observation per advanced slot is the floor.
_SLOT_SECONDS = obs.REGISTRY.histogram(
    "repro_fleet_slot_advance_seconds",
    "Wall time of one FleetEngine slot advance.",
)


@dataclass(frozen=True)
class FleetBatch:
    """A columnar block of additive bids, one row per (user, game) bid.

    ``values`` is an ``(n, d)`` float matrix of per-slot declared values —
    every bid in a batch spans the same duration ``d``; generators emit one
    batch per duration. ``opt_ranks`` addresses games by catalog rank (see
    :meth:`FleetEngine.rank_of`).
    """

    users: tuple
    opt_ranks: np.ndarray
    starts: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.users)
        try:
            values = np.asarray(self.values, dtype=float)
        except (ValueError, TypeError) as exc:
            # Ragged rows (or junk cells) would otherwise surface as a
            # bare numpy ValueError; the wire boundary needs a typed code.
            raise ProtocolError(
                f"batch values do not form a rectangular matrix: {exc}"
            ) from None
        if values.ndim != 2:
            raise GameConfigError(
                f"values must be a 2-D (bids x slots) matrix, got {values.ndim}-D"
            )
        if not (len(self.opt_ranks) == len(self.starts) == values.shape[0] == n):
            raise GameConfigError(
                "users, opt_ranks, starts and values rows must align: "
                f"{n}/{len(self.opt_ranks)}/{len(self.starts)}/{values.shape[0]}"
            )
        if values.shape[1] < 1:
            raise GameConfigError("bids need at least one slot of values")
        object.__setattr__(self, "values", values)

    @property
    def duration(self) -> int:
        """Slots each bid in this batch spans."""
        return self.values.shape[1]

    def __len__(self) -> int:
        return len(self.users)


@dataclass(frozen=True)
class FleetReport:
    """End-of-period summary of one fleet run.

    ``epoch`` is the engine's mutation counter at report time (see
    :attr:`FleetEngine.epoch`), so a report is attributable to an exact
    point in the bid/slot history.
    """

    horizon: int
    games: tuple
    ledger: BillingLedger
    events: EventLog
    implemented: Mapping[OptId, int]
    granted_at: Mapping[tuple, int]
    payments: Mapping[UserId, float]
    game_revenue: Mapping[OptId, float]
    epoch: int = 0

    @property
    def cloud_balance(self) -> float:
        """Revenue minus build outlays across every game."""
        return self.ledger.balance

    def grant_slot(self, user: UserId, optimization: OptId) -> int | None:
        """Slot ``user`` gained access to ``optimization`` (None if never)."""
        return self.granted_at.get((user, optimization))

    def revenue_of(self, optimization: OptId) -> float:
        """Total invoiced for one game (0.0 for an unknown game)."""
        return self.game_revenue.get(optimization, 0.0)


class FleetEngine(FleetExecutor):
    """See the module docstring.

    Parameters
    ----------
    catalog:
        The fleet's optimizations; one independent AddOn game each.
    horizon:
        Number of slots in the shared amortization period ``T``.
    shards:
        Shard count for the deterministic slot-processing order.
    """

    @classmethod
    def build(
        cls,
        catalog: OptimizationCatalog | Mapping,
        horizon: int,
        *,
        shards: int | None = None,
        workers: int = 0,
    ) -> FleetExecutor:
        """Pick the executor backend for a period (the public seam).

        ``workers <= 1`` builds the in-process :class:`FleetEngine`;
        anything larger builds a
        :class:`~repro.fleet.mp.MultiProcessFleet` whose spawned workers
        each own a disjoint set of catalog shards. ``shards`` defaults
        to ``max(workers, 1)`` so every worker owns at least one shard;
        pass it explicitly to pin the processing order — outcomes are
        bit-identical across backends *and* worker counts for a fixed
        shard count.
        """
        if not isinstance(catalog, OptimizationCatalog):
            catalog = OptimizationCatalog.from_costs(dict(catalog))
        workers = int(workers)
        if workers < 0:
            raise GameConfigError(f"workers must be >= 0, got {workers}")
        if shards is None:
            shards = max(workers, 1)
        if workers <= 1:
            return cls(catalog, horizon, shards=shards)
        from repro.fleet.mp import MultiProcessFleet  # lazy: avoid cycle

        return MultiProcessFleet(
            catalog, horizon, shards=shards, workers=workers
        )

    def __init__(
        self, catalog: OptimizationCatalog, horizon: int, shards: int = 1
    ) -> None:
        if horizon < 1:
            raise GameConfigError(f"horizon must be >= 1, got {horizon}")
        if len(catalog) == 0:
            raise GameConfigError("catalog must offer at least one optimization")
        self.catalog = catalog
        self.horizon = horizon
        self.slot = 0  # last processed slot; slot 1 is processed first
        # Mutation counter, content-deterministic: +1 per accepted bid
        # (placed, revised, or bulk-ingested — batching does not matter)
        # and +1 per processed slot. Mirrors the db catalog's epoch so
        # fleet state is addressable the same way.
        self.epoch = 0
        self.ledger = BillingLedger()
        self.events = EventLog()
        self._opt_ids: list = list(catalog)
        self._rank_of: dict = {j: r for r, j in enumerate(self._opt_ids)}
        self._shards = ShardMap(len(self._opt_ids), shards)
        self._proc_rank = self._shards.process_rank
        self._states = [AddOnState(catalog.get(j).cost) for j in self._opt_ids]
        self._costs = [catalog.get(j).cost for j in self._opt_ids]
        n_games = len(self._opt_ids)
        # Per-game lifecycle (module docstring): hot flag, dict-cold
        # profile (None while vector-cold), and the cold gate accumulators.
        self._hot = [False] * n_games
        self._profile: list = [None] * n_games
        self._ctotal = [0.0] * n_games
        self._cnpos = [0] * n_games
        self._payments: dict[UserId, float] = {}
        self._granted_at: dict[tuple, int] = {}
        self._implemented: dict[OptId, int] = {}
        self._game_revenue = np.zeros(n_games)
        # Per-bid (revisable) path: handles plus per-slot residual buckets.
        self._handles: dict[tuple, RevisableBid] = {}
        self._pending: dict[int, dict[int, dict]] = {}
        self._ends_at: dict[int, list] = {}
        # Bulk (columnar) path: raw batches until the first slot finalizes
        # them into the flat schedule, its group index, and departures.
        # Users are interned to dense ints so every schedule array is a
        # fast int/float array; ``_users`` maps them back at event time.
        self._users: list = []
        self._batches: list = []
        self._bulk_taken: set | None = None  # lazy (user, rank) intake guard
        self._entries: tuple | None = None  # (user, val) in (slot, shard) order
        self._groups: tuple | None = None  # flush/hot groups only, as lists
        self._by_rank: tuple | None = None  # (slot, user, val, offsets) by rank
        self._deps: tuple | None = None
        # Bulk entries of games converted to dict-cold by a handle bid: the
        # walk skips their (pre-filtered) groups, so undelivered entries
        # stream in from here instead: rank -> [slots, users, vals, ptr, n].
        self._late: dict[int, list] = {}
        self._gp = 0  # group pointer
        self._dp = 0  # departure pointer
        self._finalized = False
        self._closed = False
        # Per-slot grant/charge tap (the multi-process workers' delta
        # extraction seam); None costs the slot loop one comparison.
        self.slot_observer = None

    # ------------------------------------------------------------- intake --

    def _ensure_usable(self) -> None:
        if self._closed:
            raise ProtocolError(
                "the fleet executor is closed; open a new period instead"
            )

    def close(self) -> None:
        """Retire the executor (idempotent); reports stay readable."""
        self._closed = True

    @property
    def shards(self) -> ShardMap:
        """The fleet's shard map (processing-order contract)."""
        return self._shards

    @property
    def bulk_intake_open(self) -> bool:
        """True while :meth:`ingest` is still allowed (no slot processed)."""
        return self.slot == 0 and not self._finalized

    def bulk_keys(self) -> set:
        """``(user, rank)`` pairs taken by bulk intake so far.

        The live guard set (treat as read-only); untrusted boundaries
        copy it to seed their own duplicate checks over the trusting
        bulk path.
        """
        return self._bulk_keys()

    def rank_of(self, optimization: OptId) -> int:
        """Catalog rank of one optimization (bulk batches address by rank)."""
        rank = self._rank_of.get(optimization)
        if rank is None:
            raise GameConfigError(f"no optimization {optimization!r} in catalog")
        return rank

    @property
    def rank_map(self) -> Mapping:
        """Live ``{optimization: catalog rank}`` mapping (treat as
        read-only); bulk callers hoist its ``.get`` out of hot loops."""
        return self._rank_of

    def _bulk_keys(self) -> set:
        """(user, rank) pairs taken by bulk bids, built on first demand.

        Only the per-bid path ever needs it (its duplicate guard must also
        cover bulk intake — one handle bid on top of a bulk bid would
        double-schedule and double-invoice the user), so pure-bulk fleets
        never pay for the set.
        """
        if self._bulk_taken is None:
            taken = set()
            names = self._users
            for base, ranks, _, values in self._batches:
                for offset, rank in enumerate(ranks.tolist()):
                    taken.add((names[base + offset], rank))
            if self._deps is not None:
                _, dep_ranks, dep_users = self._deps
                for uidx, rank in zip(dep_users, dep_ranks):
                    taken.add((names[uidx], rank))
            self._bulk_taken = taken
        return self._bulk_taken

    def check_bid(
        self, user: UserId, optimization: OptId, bid: AdditiveBid
    ) -> int:
        """All of :meth:`place_bid`'s validation, mutation-free.

        Returns the game's catalog rank. Callers placing several bids
        atomically (the gateway's ``SubmitBids``) check every bid first
        so one bad bid cannot leave earlier ones committed.
        """
        rank = self._rank_of.get(optimization)
        if rank is None:
            raise GameConfigError(f"no optimization {optimization!r} in catalog")
        key = (user, rank)
        if key in self._handles or key in self._bulk_keys():
            raise GameConfigError(
                f"user {user!r} already bid on {optimization!r}; revise instead"
            )
        if bid.start <= self.slot:
            raise GameConfigError(
                f"bid for slots from {bid.start} is retroactive at slot {self.slot}"
            )
        if bid.end > self.horizon:
            raise GameConfigError(
                f"bid ends at {bid.end}, beyond the horizon {self.horizon}"
            )
        return rank

    def place_bid(
        self, user: UserId, optimization: OptId, bid: AdditiveBid
    ) -> RevisableBid:
        """Declare one revisable bid; semantics match ``CloudService``."""
        rank = self.check_bid(user, optimization, bid)
        return self.place_checked(user, rank, optimization, bid)

    def place_checked(
        self, user: UserId, rank: int, optimization: OptId, bid: AdditiveBid
    ) -> RevisableBid:
        """The mutation half of :meth:`place_bid`.

        The caller must have run :meth:`check_bid` against the *current*
        engine state (no intervening placements or slot advances) —
        atomic multi-bid callers check everything first, then commit
        through here without paying the validation twice.
        """
        self._ensure_usable()
        key = (user, rank)
        if not self._hot[rank] and self._profile[rank] is None:
            self._materialize_profile(rank)
        handle = RevisableBid(bid, declared_at=self.slot + 1)
        self._handles[key] = handle
        self._schedule_residuals(user, rank, bid, bid.start)
        self._ends_at.setdefault(bid.end, []).append(key)
        self.events.record(
            BidPlaced(self.slot + 1, user, detail=f"opt={optimization!r}")
        )
        self.epoch += 1
        return handle

    def revise_bid(
        self, user: UserId, optimization: OptId, new_values: Mapping[int, float]
    ) -> None:
        """Upward revision of a previously placed (per-bid) bid."""
        self._ensure_usable()
        rank = self._rank_of.get(optimization)
        if rank is None:
            raise GameConfigError(f"no optimization {optimization!r} in catalog")
        key = (user, rank)
        handle = self._handles.get(key)
        if handle is None:
            raise GameConfigError(
                f"user {user!r} has no bid on {optimization!r} to revise"
            )
        if any(slot > self.horizon for slot in new_values):
            raise GameConfigError("revision extends beyond the horizon")
        old_end = handle.current.end
        handle.revise(self.slot + 1, new_values)
        revised = handle.current
        if revised.end != old_end:
            # The departure moved: re-index the invoice slot.
            departures = self._ends_at.get(old_end, [])
            if key in departures:
                departures.remove(key)
            self._ends_at.setdefault(revised.end, []).append(key)
        # Future residuals changed; overwrite the scheduled entries.
        self._schedule_residuals(user, rank, revised, self.slot + 1)
        self.events.record(
            BidRevised(self.slot + 1, user, detail=f"opt={optimization!r}")
        )
        self.epoch += 1

    def _schedule_residuals(
        self, user: UserId, rank: int, bid: AdditiveBid, from_slot: int
    ) -> None:
        # Residuals change on every slot the bid covers, plus one trailing
        # zero right after the departure (if still inside the horizon). A
        # bid enters its game at its start slot, never earlier — even when
        # a revision is placed before the interval begins.
        pending = self._pending
        last = min(bid.end + 1, self.horizon)
        for t in range(max(from_slot, bid.start), last + 1):
            bucket = pending.get(t)
            if bucket is None:
                bucket = pending[t] = {}
            game = bucket.get(rank)
            if game is None:
                game = bucket[rank] = {}
            game[user] = bid.residual(t)

    def _materialize_profile(self, rank: int) -> None:
        """Vector-cold -> dict-cold: build the game's explicit profile.

        Replays the game's bulk entries up to the current slot (last value
        per user wins — the same floats the slot loop would have stored),
        seeds the gate accumulators with an exact recount, and registers
        the undelivered tail for per-slot late delivery.
        """
        profile: dict = {}
        if self._by_rank is not None:
            slots, users, vals, offsets = self._by_rank
            lo, hi = offsets[rank], offsets[rank + 1]
            slot_list = slots[lo:hi].tolist()
            user_list = users[lo:hi].tolist()
            val_list = vals[lo:hi].tolist()
            names = self._users
            current = self.slot
            i = 0
            n = hi - lo
            while i < n and slot_list[i] <= current:
                profile[names[user_list[i]]] = val_list[i]
                i += 1
            if i < n:
                self._late[rank] = [slot_list, user_list, val_list, i, n]
        self._profile[rank] = profile
        total = 0.0
        n_pos = 0
        for value in profile.values():
            if value > 0.0:
                total += value
                n_pos += 1
        self._ctotal[rank] = total
        self._cnpos[rank] = n_pos

    def ingest(self, batch: FleetBatch) -> int:
        """Bulk-load one columnar batch of bids; returns the bid count.

        Only allowed before the first slot is processed. The bulk path
        trusts its generator: one bid per (user, optimization), no later
        revision (use :meth:`place_bid` for revisable bids). Validation is
        vectorized and happens entirely before any state changes (one
        batch either lands whole or not at all); per-bid ``BidPlaced``
        events are still recorded so the event log stays complete.
        """
        return self.ingest_many((batch,))

    def ingest_many(self, batches) -> int:
        """Atomically bulk-load several batches; returns the bid count.

        Every batch is validated before *any* batch is committed, so a
        bad batch in the middle cannot leave earlier ones scheduled — the
        all-or-nothing property untrusted boundaries (the gateway's
        batched dispatch) build their own contract on.

        Raises :class:`~repro.errors.ProtocolError` on a closed executor
        or a malformed (non-rectangular) batch, and
        :class:`~repro.errors.MechanismError` once the first slot closed
        bulk intake.
        """
        self._ensure_usable()
        if self.slot > 0 or self._finalized:
            raise MechanismError(
                "bulk ingestion is only allowed before the first slot"
            )
        checked = [
            (batch, self._validate_batch(batch))
            for batch in batches
            if len(batch) > 0
        ]
        total = 0
        for batch, (ranks, starts) in checked:
            base = len(self._users)
            self._users.extend(batch.users)
            self._batches.append((base, ranks, starts, batch.values))
            self.events.record_many([BidPlaced(1, user) for user in batch.users])
            total += len(batch)
        if checked:
            self._bulk_taken = None  # new bulk bids: rebuild guard on demand
        self.epoch += total
        return total

    def _validate_batch(self, batch: FleetBatch):
        """All of one batch's intake checks, mutation-free."""
        starts = np.asarray(batch.starts, dtype=np.int64)
        ranks = np.asarray(batch.opt_ranks, dtype=np.int64)
        values = batch.values
        if starts.min() < 1:
            raise GameConfigError("bulk bids must start at slot >= 1")
        ends = starts + values.shape[1] - 1
        if ends.max() > self.horizon:
            raise GameConfigError(
                f"bulk bids end at {int(ends.max())}, beyond the horizon "
                f"{self.horizon}"
            )
        if ranks.min() < 0 or ranks.max() >= len(self._opt_ids):
            raise GameConfigError("bulk bids address games outside the catalog")
        if not np.isfinite(values).all() or values.min() < 0:
            raise GameConfigError("bulk bid values must be finite and >= 0")
        if self._handles:
            # The symmetric duplicate guard: a bulk bid landing on a
            # (user, game) pair already taken by a handle bid would
            # double-schedule and double-invoice, exactly like the
            # reverse order place_bid rejects.
            handles = self._handles
            for user, rank in zip(batch.users, ranks.tolist()):
                if (user, rank) in handles:
                    raise GameConfigError(
                        f"user {user!r} already bid on "
                        f"{self._opt_ids[rank]!r}; revise instead"
                    )
        return ranks, starts

    def _finalize(self) -> None:
        """Flatten the ingested batches into the array-backed schedule.

        Produces, entirely in numpy:

        * per-entry ``(slot, rank, user, residual)`` lexsorted by
          ``(slot, shard order)`` — residuals are left-to-right suffix
          sums, bit-identical to ``AdditiveBid.residual``;
        * a group index over runs of equal ``(slot, rank)``, each with its
          gate deltas (sum of residual changes, net positive-bid count);
        * per game, its **flush slot**: the first slot at which the game's
          running bid total could cover its cost (the sound feasibility
          gate of :meth:`~repro.core.fastshapley.IncrementalShapley.settled`,
          evaluated for every group at once by segmented cumulative sums).
          Groups strictly before a game's flush slot provably leave its
          outcome untouched, so they are dropped from the slot walk
          entirely — a never-funded game costs the Python loop *nothing*;
        * the same entries re-sorted by ``(rank, slot)`` for profile
          materialization, and the departure schedule.
        """
        self._finalized = True
        if not self._batches:
            return
        slot_chunks, rank_chunks, val_chunks, user_chunks = [], [], [], []
        dtot_chunks, dpos_chunks = [], []
        dep_slot_chunks, dep_rank_chunks, dep_user_chunks = [], [], []
        for base, batch_ranks, batch_starts, values in self._batches:
            n, d = values.shape
            # Left-to-right suffix sums, vectorized across bids: column
            # order matches ``AdditiveBid.residual`` add-for-add, so the
            # scheduled floats are bit-identical to the per-bid path.
            residuals = np.empty((n, d + 1))
            residuals[:, d] = 0.0
            for i in range(d):
                acc = values[:, i].copy()
                for k in range(i + 1, d):
                    acc = acc + values[:, k]
                residuals[:, i] = acc
            # Gate deltas per entry: the profile's previous value for a
            # contiguous schedule is simply the previous residual.
            positive = residuals > 0.0
            dtotal = np.empty_like(residuals)
            dtotal[:, 0] = residuals[:, 0]
            dtotal[:, 1:] = residuals[:, 1:] - residuals[:, :-1]
            dnpos = positive.astype(np.int64)
            dnpos[:, 1:] -= positive[:, :-1]
            slots = batch_starts[:, None] + np.arange(d + 1)[None, :]
            keep = (slots <= self.horizon).ravel()
            uidx = np.arange(base, base + n, dtype=np.int64)
            slot_chunks.append(slots.ravel()[keep])
            rank_chunks.append(np.repeat(batch_ranks, d + 1)[keep])
            val_chunks.append(residuals.ravel()[keep])
            user_chunks.append(np.repeat(uidx, d + 1)[keep])
            dtot_chunks.append(dtotal.ravel()[keep])
            dpos_chunks.append(dnpos.ravel()[keep])
            dep_slot_chunks.append(batch_starts + (d - 1))
            dep_rank_chunks.append(batch_ranks)
            dep_user_chunks.append(uidx)
        slots = np.concatenate(slot_chunks)
        ranks = np.concatenate(rank_chunks)
        vals = np.concatenate(val_chunks)
        users = np.concatenate(user_chunks)
        dtotal = np.concatenate(dtot_chunks)
        dnpos = np.concatenate(dpos_chunks)
        proc = np.asarray(self._proc_rank, dtype=np.int64)
        n_games = len(self._opt_ids)

        # Single combined-key stable argsorts beat two-pass lexsorts here.
        order = np.argsort(slots * n_games + proc[ranks], kind="stable")
        slots_s, ranks_s = slots[order], ranks[order]
        if len(slots_s):
            # Group boundaries: runs of equal (slot, rank) in slot order.
            boundary = np.empty(len(slots_s), dtype=bool)
            boundary[0] = True
            boundary[1:] = (slots_s[1:] != slots_s[:-1]) | (
                ranks_s[1:] != ranks_s[:-1]
            )
            g_start = np.flatnonzero(boundary)
            g_end = np.append(g_start[1:], len(slots_s))
            g_slot = slots_s[g_start]
            g_rank = ranks_s[g_start]
            g_dtot = np.add.reduceat(dtotal[order], g_start)
            g_dpos = np.add.reduceat(dnpos[order], g_start)
            flush_slot = self._flush_slots(g_slot, g_rank, g_dtot, g_dpos)
            live = g_slot >= flush_slot[g_rank]
            self._entries = (users[order], vals[order])
            self._groups = (
                g_slot[live].tolist(),
                g_rank[live].tolist(),
                g_start[live].tolist(),
                g_end[live].tolist(),
            )
        by_rank = np.argsort(
            ranks * np.int64(self.horizon + 2) + slots, kind="stable"
        )
        offsets = np.searchsorted(
            ranks[by_rank], np.arange(n_games + 1)
        ).tolist()
        self._by_rank = (slots[by_rank], users[by_rank], vals[by_rank], offsets)
        # Games already dict-cold (handle bids placed before the first
        # slot): their groups never reach the walk, so stream everything
        # through the late-delivery path.
        for rank, profile in enumerate(self._profile):
            if profile is not None and rank not in self._late:
                lo, hi = offsets[rank], offsets[rank + 1]
                if lo < hi:
                    self._late[rank] = [
                        self._by_rank[0][lo:hi].tolist(),
                        self._by_rank[1][lo:hi].tolist(),
                        self._by_rank[2][lo:hi].tolist(),
                        0,
                        hi - lo,
                    ]
        dep_slots = np.concatenate(dep_slot_chunks)
        dep_order = np.argsort(dep_slots, kind="stable")
        self._deps = (
            dep_slots[dep_order].tolist(),
            np.concatenate(dep_rank_chunks)[dep_order].tolist(),
            np.concatenate(dep_user_chunks)[dep_order].tolist(),
        )
        self._batches = []

    def _flush_slots(self, g_slot, g_rank, g_dtot, g_dpos):
        """First slot per game at which its bids might cover its cost.

        Segmented cumulative sums of the group gate deltas, in (rank, slot)
        order, give every game's running total and positive-bid count at
        every one of its groups; the first group passing the feasibility
        check is the game's flush slot (``maxint`` when none ever does).
        Like every use of the gate this only needs to be *sound* — cumsum
        float drift is absorbed by the gate's slack.
        """
        n_groups = len(g_slot)
        order = np.argsort(
            g_rank * np.int64(self.horizon + 2) + g_slot, kind="stable"
        )
        r_sorted = g_rank[order]
        first = np.empty(n_groups, dtype=bool)
        first[0] = True
        first[1:] = r_sorted[1:] != r_sorted[:-1]
        idx_first = np.flatnonzero(first)
        seg_id = np.cumsum(first) - 1
        cum_t = np.cumsum(g_dtot[order])
        cum_p = np.cumsum(g_dpos[order])
        base_t = np.where(idx_first > 0, cum_t[idx_first - 1], 0.0)[seg_id]
        base_p = np.where(idx_first > 0, cum_p[idx_first - 1], 0)[seg_id]
        total = cum_t - base_t
        n_pos = cum_p - base_p
        costs = np.asarray(self._costs)[r_sorted]
        feasible = (n_pos > 0) & (
            total >= costs - _GATE_SLACK * (n_pos + 1.0) * (costs + 1.0)
        )
        position = np.where(feasible, np.arange(n_groups), n_groups)
        first_feasible = np.minimum.reduceat(position, idx_first)
        flush_slot = np.full(
            len(self._opt_ids), np.iinfo(np.int64).max, dtype=np.int64
        )
        found = first_feasible < n_groups
        slots_sorted = g_slot[order]
        flush_slot[r_sorted[idx_first][found]] = slots_sorted[
            first_feasible[found]
        ]
        return flush_slot

    # --------------------------------------------------------------- loop --

    def advance_slots(self, slots: int) -> int:
        """Process ``slots`` further slots; returns the new clock."""
        if slots < 1:
            raise GameConfigError(f"must advance by >= 1 slot, got {slots}")
        for _ in range(int(slots)):
            self.advance_slot()
        return self.slot

    def advance_slot(self) -> int:
        """Process the next slot for every game; returns its number."""
        with _SLOT_SECONDS.time():
            return self._advance_one_slot()

    def _advance_one_slot(self) -> int:
        self._ensure_usable()
        if self.slot >= self.horizon:
            raise MechanismError(f"period is over after slot {self.horizon}")
        if not self._finalized:
            self._finalize()
        t = self.slot + 1

        overlay = self._pending.pop(t, None)
        late = self._late
        groups = self._groups
        walk: list | None = None
        if groups is not None:
            g_slot, g_rank, g_start, g_end = groups
            gp = self._gp
            n = len(g_slot)
            if gp < n and g_slot[gp] == t:
                # Every surviving group belongs to a game at/after its
                # flush slot: first touch flushes the replayed profile,
                # later ones step the hot engine. Groups of late-delivery
                # (dict-cold) games are skipped — their entries stream in
                # through ``late`` instead.
                if overlay is None and not late:
                    # Pure-bulk hot path: dispatch in walk (= shard) order.
                    hot = self._hot
                    profile = self._profile
                    while gp < n and g_slot[gp] == t:
                        rank = g_rank[gp]
                        if hot[rank]:
                            self._apply_hot(t, rank, self._group_dict(gp))
                        elif profile[rank] is None:
                            # The precomputed flush: the replayed profile
                            # already includes this group's entries.
                            self._go_hot(rank, t)
                            self._apply_hot(t, rank, self._profile_flush(rank))
                        else:
                            self._step_game(t, rank, self._group_dict(gp))
                        gp += 1
                else:
                    # Mixed intake this slot: collect the walk groups and
                    # dispatch them together with the overlay below, in
                    # one shard-major pass (DESIGN.md's ordering contract
                    # holds across change sources).
                    walk = []
                    while gp < n and g_slot[gp] == t:
                        rank = g_rank[gp]
                        if rank not in late:
                            walk.append((rank, gp))
                        gp += 1
                self._gp = gp
        if late:
            overlay = self._drain_late(t, overlay)
        if walk or overlay:
            self._dispatch_merged(t, walk or (), overlay)

        self._invoice_departures(t)
        self.slot = t
        self.epoch += 1
        return t

    def _dispatch_merged(self, t: int, walk, overlay: dict | None) -> None:
        """One shard-major pass over bulk-walk groups and overlay changes.

        ``walk`` holds ``(rank, group index)`` pairs already in processing
        order; overlay ranks are merged in by process rank. A game present
        in both sources gets a single merged change set (same-slot per-bid
        revisions win over columnar entries).
        """
        proc = self._proc_rank
        merged: list = [(proc[rank], rank, gp) for rank, gp in walk]
        if overlay:
            walk_ranks = {rank for rank, _ in walk}
            merged.extend(
                (proc[rank], rank, None)
                for rank in overlay
                if rank not in walk_ranks
            )
            merged.sort()
        hot = self._hot
        profile = self._profile
        for _, rank, gp in merged:
            changes = None if gp is None else self._group_dict(gp)
            if overlay and rank in overlay:
                if changes is None:
                    changes = overlay[rank]
                else:
                    changes.update(overlay[rank])
            if gp is None:
                self._step_game(t, rank, changes)
            elif hot[rank]:
                self._apply_hot(t, rank, changes)
            elif profile[rank] is None:
                # Precomputed flush; the replayed profile already includes
                # this group's entries, and an overlay change for a
                # vector-cold game is impossible (handle bids convert the
                # game to dict-cold at placement).
                self._go_hot(rank, t)
                self._apply_hot(t, rank, self._profile_flush(rank))
            else:
                self._step_game(t, rank, changes)

    def _drain_late(self, t: int, overlay: dict | None) -> dict | None:
        """Deliver this slot's bulk entries of dict-cold games.

        Merged into the overlay (same-slot per-bid revisions win) so the
        shard-ordered dispatch below sees one change set per game.
        """
        names = self._users
        exhausted = []
        for rank, record in self._late.items():
            slot_list, user_list, val_list, i, n = record
            changed = None
            while i < n and slot_list[i] == t:
                if changed is None:
                    changed = {}
                changed[names[user_list[i]]] = val_list[i]
                i += 1
            record[3] = i
            if i >= n:
                exhausted.append(rank)
            if changed:
                if overlay is None:
                    overlay = {}
                existing = overlay.get(rank)
                if existing:
                    changed.update(existing)
                overlay[rank] = changed
        for rank in exhausted:
            del self._late[rank]
        return overlay

    def _group_dict(self, gp: int) -> dict:
        """Materialize one columnar group's ``{user: residual}`` dict."""
        users, vals = self._entries
        _, _, g_start, g_end = self._groups
        lo, hi = g_start[gp], g_end[gp]
        names = self._users
        return dict(
            zip(
                [names[u] for u in users[lo:hi].tolist()],
                vals[lo:hi].tolist(),
            )
        )

    def _go_hot(self, rank: int, t: int) -> None:
        """Vector-cold -> hot: reconstruct the profile for the flush."""
        slots, users, vals, offsets = self._by_rank
        lo, hi = offsets[rank], offsets[rank + 1]
        slot_list = slots[lo:hi].tolist()
        user_list = users[lo:hi].tolist()
        val_list = vals[lo:hi].tolist()
        names = self._users
        profile: dict = {}
        for i in range(hi - lo):
            if slot_list[i] > t:
                break
            profile[names[user_list[i]]] = val_list[i]
        self._profile[rank] = profile

    def _profile_flush(self, rank: int) -> dict:
        """Hand the materialized profile over exactly once."""
        profile = self._profile[rank]
        self._profile[rank] = None
        self._hot[rank] = True
        return profile

    def _step_game(self, t: int, rank: int, residuals: dict) -> None:
        """Dict-cold/hot dispatch for one game's changed residuals."""
        if self._hot[rank]:
            self._apply_hot(t, rank, residuals)
            return
        profile = self._profile[rank]
        if profile is None:
            # A vector-cold game reached through the overlay merge path:
            # materialize its dict profile first (exact, replayed).
            self._materialize_profile(rank)
            profile = self._profile[rank]
        total = self._ctotal[rank]
        n_pos = self._cnpos[rank]
        for user, bid in residuals.items():
            old = profile.get(user, 0.0)
            if old == bid:
                continue
            if bid != bid:  # NaN: fail exactly like the engine path
                raise MechanismError(
                    f"bid for user {user!r} must be >= 0, got {bid}"
                )
            profile[user] = bid
            if old > 0.0:
                total -= old
                n_pos -= 1
            if bid > 0.0:
                total += bid
                n_pos += 1
        if not n_pos:
            total = 0.0
        cost = self._costs[rank]
        self._cnpos[rank] = n_pos
        self._ctotal[rank] = total
        if not n_pos or total < cost - _GATE_SLACK * (n_pos + 1.0) * (cost + 1.0):
            # Provably still infeasible: the game's outcome is untouched,
            # so the sorted engine is not even materialized this slot.
            return
        self._apply_hot(t, rank, self._profile_flush(rank))

    def _apply_hot(self, t: int, rank: int, residuals: dict) -> None:
        state = self._states[rank]
        result = state.apply_changes(t, residuals)
        if result is None:
            return
        _, _, newly = result
        optimization = self._opt_ids[rank]
        granted = self._granted_at
        record = self.events.record
        users = sorted(newly, key=_grant_order)
        for user in users:
            granted[(user, optimization)] = t
            record(UserGranted(t, user, optimization))
        implemented_cost = None
        if state.implemented_at == t:
            implemented_cost = cost = state.cost
            self._implemented[optimization] = t
            self.ledger.build_outlay(t, optimization, cost)
            record(OptimizationImplemented(t, optimization, cost))
        if self.slot_observer is not None and (
            users or implemented_cost is not None
        ):
            self.slot_observer.stepped(rank, users, implemented_cost)

    def _invoice_departures(self, t: int) -> None:
        departed: dict = {}
        payments = self._payments
        hot = self._hot
        deps = self._deps
        if deps is not None:
            dep_slots, dep_ranks, dep_users = deps
            names = self._users
            dp = self._dp
            n = len(dep_slots)
            while dp < n and dep_slots[dp] == t:
                user = names[dep_users[dp]]
                rank = dep_ranks[dp]
                dp += 1
                if hot[rank]:
                    self._invoice(t, user, rank, departed)
                else:
                    # A cold game has never serviced anyone: the departure
                    # owes exactly zero, no engine consultation needed.
                    payments[user] = payments.get(user, 0.0)
                    departed[user] = None
                    if self.slot_observer is not None:
                        self.slot_observer.charged(user, rank, 0.0)
            self._dp = dp
        for key in self._ends_at.pop(t, ()):
            user, rank = key
            if self._handles[key].current.end != t:
                continue  # the departure moved by revision; invoice later
            self._invoice(t, user, rank, departed)
        if departed:
            self.events.record_many([UserDeparted(t, user) for user in departed])

    def _invoice(self, t: int, user: UserId, rank: int, departed: dict) -> None:
        amount = self._states[rank].exit_price(user)
        self._payments[user] = self._payments.get(user, 0.0) + amount
        if amount > 0:
            optimization = self._opt_ids[rank]
            self.ledger.invoice(t, user, amount, memo=f"opt={optimization!r}")
            self.events.record(UserCharged(t, user, amount))
            self._game_revenue[rank] += amount
        departed[user] = None
        if self.slot_observer is not None:
            self.slot_observer.charged(user, rank, amount)

    def run_to_end(self) -> FleetReport:
        """Process every remaining slot and return the report."""
        while self.slot < self.horizon:
            self.advance_slot()
        return self.report()

    # ------------------------------------------------------------ queries --

    def state_of(self, optimization: OptId) -> AddOnState:
        """The live per-game state machine (read-mostly; for inspection)."""
        return self._states[self.rank_of(optimization)]

    @property
    def implemented(self) -> Mapping[OptId, int]:
        """Live ``{optimization: slot built}`` mapping (treat as
        read-only); cheaper than a full :meth:`report` when only the
        implementation set is needed per slot."""
        return self._implemented

    def report(self) -> FleetReport:
        """The current summary (complete once the period is over)."""
        return FleetReport(
            horizon=self.horizon,
            games=tuple(self._opt_ids),
            ledger=self.ledger,
            events=self.events,
            implemented=dict(self._implemented),
            granted_at=dict(self._granted_at),
            payments=dict(self._payments),
            game_revenue={
                j: float(self._game_revenue[r])
                for r, j in enumerate(self._opt_ids)
                if self._game_revenue[r] != 0.0
            },
            epoch=self.epoch,
        )


def _grant_order(user) -> tuple:
    """Deterministic ordering for same-slot grants of one game."""
    return (str(type(user).__name__), str(user))
