"""The executor seam: one protocol over every fleet backend.

A pricing period can run in-process (:class:`repro.fleet.FleetEngine`)
or sharded across a shared-nothing worker pool
(:class:`repro.fleet.MultiProcessFleet`); everything above the seam —
:class:`repro.gateway.PricingService`, the workload-to-bid pipeline,
the CLI — programs against :class:`FleetExecutor` and cannot tell the
backends apart.  The contract is strict: for the same intake, every
backend must produce bit-identical outcomes, metered costs, billing
ledger, and event log (property-tested in ``tests/test_fleet_mp.py``).

Pick a backend with :meth:`repro.fleet.FleetEngine.build`::

    fleet = FleetEngine.build(catalog, horizon=8, workers=4)

``workers<=1`` returns the in-process engine; anything larger returns a
:class:`~repro.fleet.mp.MultiProcessFleet` whose workers each own a
disjoint set of catalog shards.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.fleet.engine import FleetReport

__all__ = ["FleetExecutor"]


class FleetExecutor(ABC):
    """What a pricing-period backend must implement.

    Implementations also expose the read surface the gateway leans on
    (``catalog``, ``horizon``, ``slot``, ``epoch``, ``ledger``,
    ``events``, ``shards``, the bid placement/validation methods), but
    the four methods below are the lifecycle every caller can rely on
    regardless of backend.
    """

    #: Worker processes behind this executor (0 = in-process).
    workers: int = 0

    @abstractmethod
    def ingest_many(self, batches) -> int:
        """Bulk-load columnar :class:`~repro.fleet.engine.FleetBatch`
        blocks before the first slot; returns the number of bids taken.

        Raises :class:`~repro.errors.ProtocolError` once the executor is
        closed or when a batch is not shaped like a rectangular columnar
        block, and :class:`~repro.errors.MechanismError` after the first
        slot has been processed.
        """

    @abstractmethod
    def advance_slots(self, slots: int) -> int:
        """Process ``slots`` further slots; returns the new clock."""

    @abstractmethod
    def report(self):
        """The period outcome so far as a
        :class:`~repro.fleet.engine.FleetReport` (complete once the
        horizon is reached)."""

    @abstractmethod
    def close(self) -> None:
        """Release backend resources (worker processes, pipes).

        Idempotent. After ``close()`` every mutating method raises
        :class:`~repro.errors.ProtocolError`; :meth:`report` keeps
        working so a period's outcome survives its executor.
        """

    # Sugar shared by every backend ------------------------------------

    def advance_slot(self) -> int:
        """Process exactly one slot (``advance_slots(1)``)."""
        return self.advance_slots(1)

    def run_to_end(self) -> "FleetReport":
        """Advance through the horizon, then report."""
        remaining = self.horizon - self.slot  # type: ignore[attr-defined]
        if remaining > 0:
            self.advance_slots(remaining)
        return self.report()
