"""Deterministic sharding of a fleet's optimization catalog.

The fleet engine processes every changed game of a slot in one pass; the
shard map pins down the *order* of that pass so fleet runs are reproducible
regardless of how the slot's changes were discovered. Games are ranked by
catalog insertion order and dealt round-robin across shards (rank ``r``
lands on shard ``r % shards``, balancing load for any catalog ordering);
within a slot, shards are processed in ascending shard index and games
within a shard in ascending rank. DESIGN.md's "Fleet conventions" section
makes this ordering contractual.
"""

from __future__ import annotations

from repro.errors import GameConfigError

__all__ = ["ShardMap"]


class ShardMap:
    """Round-robin shard assignment with a total processing order.

    Parameters
    ----------
    n_games:
        Number of games (catalog size); ranks are ``0 .. n_games - 1`` in
        catalog insertion order.
    shards:
        Shard count; may exceed ``n_games`` (the extra shards stay empty).
    """

    __slots__ = ("n_games", "shards", "_order", "_process_rank")

    def __init__(self, n_games: int, shards: int = 1) -> None:
        if n_games < 0:
            raise GameConfigError(f"game count must be >= 0, got {n_games}")
        if shards < 1:
            raise GameConfigError(f"shard count must be >= 1, got {shards}")
        self.n_games = n_games
        self.shards = shards
        self._order = [
            rank for shard in range(shards) for rank in range(shard, n_games, shards)
        ]
        self._process_rank = [0] * n_games
        for position, rank in enumerate(self._order):
            self._process_rank[rank] = position

    def shard_of(self, rank: int) -> int:
        """Shard holding the game with catalog rank ``rank``."""
        if not 0 <= rank < self.n_games:
            raise GameConfigError(f"rank {rank} outside [0, {self.n_games})")
        return rank % self.shards

    @property
    def order(self) -> list[int]:
        """Ranks in slot-processing order (shard-major, copy)."""
        return list(self._order)

    @property
    def process_rank(self) -> list[int]:
        """``process_rank[rank]`` = position of that game in the slot pass.

        Returned as the live list (callers treat it as read-only); the fleet
        engine uses it as a sort key when merging change sources.
        """
        return self._process_rank

    def members(self, shard: int) -> list[int]:
        """Ranks assigned to one shard, in processing order."""
        if not 0 <= shard < self.shards:
            raise GameConfigError(f"shard {shard} outside [0, {self.shards})")
        return list(range(shard, self.n_games, self.shards))

    def owner_of(self, rank: int, workers: int) -> int:
        """Worker owning ``rank`` in a ``workers``-strong fleet.

        Whole shards are dealt round-robin across workers (shard ``s`` to
        worker ``s % workers``), so one worker always owns a disjoint set
        of shards and the shard-major processing order is preserved
        within every worker. Purely arithmetic: after a worker loss the
        replacement recomputes the same mapping, so ranks never migrate
        between ranks' owners across a respawn.
        """
        if workers < 1:
            raise GameConfigError(f"worker count must be >= 1, got {workers}")
        return self.shard_of(rank) % workers

    def owned_ranks(self, worker: int, workers: int) -> list[int]:
        """Ranks owned by one worker, in processing order."""
        if not 0 <= worker < workers:
            raise GameConfigError(f"worker {worker} outside [0, {workers})")
        return [
            rank
            for shard in range(worker, self.shards, workers)
            for rank in self.members(shard)
        ]

    def __len__(self) -> int:
        return self.shards
