"""Shared-nothing multi-process fleet: every catalog shard on its own core.

:class:`MultiProcessFleet` implements the :class:`~repro.fleet.executor.
FleetExecutor` protocol by scattering a period's games across a pool of
``multiprocessing`` **spawn** workers. Each worker owns a disjoint set of
catalog shards (:meth:`~repro.fleet.shard.ShardMap.owner_of`: shard ``s``
to worker ``s % workers``) and runs a full
:class:`~repro.fleet.engine.FleetEngine` over *only its own games'* bids —
games are independent pricing games, so a worker's per-game floats are the
exact floats the single-process engine would compute. What cannot be
computed per-partition — the shared event log, billing ledger, payment
accumulation, and cross-game departure ordering — is replayed on the
master from per-slot deltas, in the exact global order the single-process
engine uses, which is what makes the whole construction **bit-identical**
(outcomes, metered costs, ledger, event log; property-tested in
``tests/test_fleet_mp.py``).

Master-side anatomy:

* **Intake mirror.** The master keeps a never-advanced ``FleetEngine``
  that every bid passes through first. It provides validation, the
  authoritative ``BidPlaced``/``BidRevised`` events, the epoch counter,
  revisable-bid handles and the departure index for free — and because it
  never processes a slot, it never pays for mechanism work.
* **Scatter/gather barrier per slot.** ``advance_slots`` fans one
  ``("advance", k)`` command to every worker and gathers per-slot deltas:
  each worker's engine reports its grants (in its shard-major order) and
  departure charges through the engine's ``slot_observer`` tap. The
  master k-way-merges grant blocks by
  :attr:`~repro.fleet.shard.ShardMap.process_rank` and replays
  departures in the master-computed global departure order, so every
  event, ledger entry, and float accumulation happens in single-process
  order.
* **Codec-dict pickling rule.** User and optimization ids cross the
  process boundary as :mod:`repro.gateway.codec` value dicts
  (``encode_value``/``decode_value``), so exactly the ids the wire
  protocol can express are the ids a multi-process fleet accepts —
  anything else raises :class:`~repro.errors.ProtocolError` *before* any
  state changes. Columnar batch arrays ride along as pickled numpy
  arrays.
* **Crash tolerance by replay.** The master records every mutating
  command per worker. A worker that dies (killed, OOM, crashed) is
  respawned from the spawn context, its history is replayed, and it is
  advanced back to the master's slot — deterministically identical to
  the lost worker, so a mid-period kill changes nothing about the
  period's outcome (tested with a literal ``Process.kill``).

Spawn-only is deliberate (DESIGN.md "Multi-process conventions"):
forked children would inherit the master's engine state and numpy
globals, and fork is unsafe under threads; spawn keeps workers' state
exactly "history replayed from nothing", which is also what makes
respawn correct.
"""

from __future__ import annotations

import heapq
import multiprocessing
from typing import Mapping

import numpy as np

from repro import obs
from repro.bids.additive import AdditiveBid
from repro.cloudsim.catalog import OptimizationCatalog
from repro.cloudsim.events import (
    OptimizationImplemented,
    UserCharged,
    UserDeparted,
    UserGranted,
)
from repro.core.outcome import OptId, UserId
from repro.errors import GameConfigError, MechanismError, ProtocolError
from repro.fleet.engine import FleetBatch, FleetEngine, FleetReport
from repro.fleet.executor import FleetExecutor
from repro.fleet.shard import ShardMap
from repro.gateway.codec import decode_value, encode_value

__all__ = ["MultiProcessFleet"]

# Master-side fleet instrumentation. Both live in the *master* process,
# so their values survive worker kills — a respawned worker rebuilds its
# own (worker-local, unread) registry, never this one. Worker labels are
# process ranks: cardinality == pool size.
_RESPAWNS_TOTAL = obs.REGISTRY.counter(
    "repro_fleet_respawns_total",
    "Worker processes respawned after a crash (master-side count).",
)
_CHUNK_SECONDS = obs.REGISTRY.histogram(
    "repro_fleet_worker_chunk_seconds",
    "Master wall time from chunk scatter until each worker's reply.",
    ("worker",),
)

#: Slots per scatter/gather round trip. Bounds per-message delta payloads
#: while amortizing pipe latency across many slots.
_ADVANCE_CHUNK = 32


class _WorkerDied(Exception):
    """A worker pipe broke mid-command (crash, kill, OOM)."""

    def __init__(self, worker: int) -> None:
        super().__init__(f"fleet worker {worker} died")
        self.worker = worker


# ----------------------------------------------------------- worker side --


class _NullEvents:
    """Worker engines drop events; the master's log is authoritative."""

    def record(self, event) -> None:
        pass

    def record_many(self, events) -> None:
        pass


class _NullLedger:
    """Worker engines drop ledger entries; the master replays them."""

    def invoice(self, *args, **kwargs) -> None:
        pass

    def build_outlay(self, *args, **kwargs) -> None:
        pass


class _SlotTap:
    """The worker's per-slot delta buffer behind ``slot_observer``.

    ``grants`` arrive in the worker engine's processing order (ascending
    process rank over the worker's own games), which is what lets the
    master k-way-merge blocks without re-sorting. ``charges`` carry the
    exact float the engine computed at departure (0.0 for a departure
    from a never-funded game).
    """

    __slots__ = ("grants", "charges")

    def __init__(self) -> None:
        self.grants: list = []
        self.charges: list = []

    def stepped(self, rank: int, users: list, implemented_cost) -> None:
        self.grants.append(
            (rank, [encode_value(user) for user in users], implemented_cost)
        )

    def charged(self, user, rank: int, amount: float) -> None:
        self.charges.append((encode_value(user), rank, amount))

    def take(self) -> dict:
        delta = {"grants": self.grants, "charges": self.charges}
        self.grants = []
        self.charges = []
        return delta


def _worker_main(conn) -> None:
    """One worker process: a command loop over a private fleet engine."""
    engine = None
    opt_ids: list = []
    tap = _SlotTap()
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            return
        try:
            result = None
            if command == "init":
                opt_ids = [decode_value(j) for j, _ in payload["opts"]]
                costs = dict(
                    zip(opt_ids, (cost for _, cost in payload["opts"]))
                )
                engine = FleetEngine(
                    OptimizationCatalog.from_costs(costs),
                    horizon=payload["horizon"],
                    shards=payload["shards"],
                )
                engine.events = _NullEvents()
                engine.ledger = _NullLedger()
                engine.slot_observer = tap
            elif command == "ingest":
                engine.ingest_many(
                    [
                        FleetBatch(
                            users=decode_value(block["users"]),
                            opt_ranks=block["ranks"],
                            starts=block["starts"],
                            values=block["values"],
                        )
                        for block in payload
                    ]
                )
            elif command == "place":
                user, rank, start, values = payload
                engine.place_bid(
                    decode_value(user),
                    opt_ids[rank],
                    AdditiveBid.over(start, values),
                )
            elif command == "revise":
                user, rank, new_values = payload
                engine.revise_bid(
                    decode_value(user), opt_ids[rank], decode_value(new_values)
                )
            elif command == "advance":
                result = []
                for _ in range(payload):
                    engine.advance_slot()
                    result.append(tap.take())
            elif command == "close":
                conn.close()
                return
            else:  # pragma: no cover - protocol bug guard
                raise ProtocolError(f"unknown fleet worker command {command!r}")
            reply = ("ok", result)
        except BaseException as exc:  # total: errors travel home as data
            reply = ("error", type(exc).__name__, str(exc))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


# ----------------------------------------------------------- master side --


class MultiProcessFleet(FleetExecutor):
    """See the module docstring.

    Parameters
    ----------
    catalog, horizon, shards:
        Exactly :class:`~repro.fleet.engine.FleetEngine`'s; ``shards``
        also determines worker ownership, so pick ``shards >= workers``
        (``FleetEngine.build`` defaults to ``shards = workers``).
    workers:
        Worker process count (>= 1). Outcomes are bit-identical across
        worker counts for a fixed shard count.
    """

    def __init__(
        self,
        catalog: OptimizationCatalog,
        horizon: int,
        shards: int = 1,
        workers: int = 2,
    ) -> None:
        if workers < 1:
            raise GameConfigError(f"worker count must be >= 1, got {workers}")
        # The intake mirror validates catalog/horizon/shards and carries
        # the authoritative events, ledger, epoch, handles, and clock.
        self._intake = FleetEngine(catalog, horizon, shards=shards)
        self.workers = int(workers)
        self.catalog = self._intake.catalog
        self.horizon = self._intake.horizon
        self._opt_ids = list(self.catalog)
        n_games = len(self._opt_ids)
        shard_map = self._intake.shards
        self._proc_rank = shard_map.process_rank
        self._owner_arr = np.array(
            [shard_map.owner_of(rank, self.workers) for rank in range(n_games)],
            dtype=np.int64,
        )
        self._payments: dict[UserId, float] = {}
        self._granted_at: dict[tuple, int] = {}
        self._implemented: dict[OptId, int] = {}
        self._game_revenue = np.zeros(n_games)
        self._deps: tuple | None = None  # master's global departure order
        self._dp = 0
        self._closed = False
        # Everything needed to rebuild a worker from nothing: the init
        # command plus, per worker, every mutating command it was sent.
        self._init_msg = (
            "init",
            {
                "opts": [
                    (encode_value(j), self.catalog.get(j).cost)
                    for j in self._opt_ids
                ],
                "horizon": self.horizon,
                "shards": shard_map.shards,
            },
        )
        self._history: list[list] = [[] for _ in range(self.workers)]
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: list = [None] * self.workers
        self._conns: list = [None] * self.workers
        for worker in range(self.workers):
            self._spawn(worker)

    # -------------------------------------------------------- worker pool --

    @property
    def processes(self) -> list:
        """Live worker :class:`multiprocessing.Process` handles (the
        crash tests kill these; treat as read-only)."""
        return list(self._procs)

    def _spawn(self, worker: int) -> None:
        """Start (or restart) one worker and replay it to the present."""
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            daemon=True,
            name=f"repro-fleet-worker-{worker}",
        )
        proc.start()
        child_conn.close()
        self._procs[worker] = proc
        self._conns[worker] = parent_conn
        # Replay the worker's full command history — mutations and
        # advances interleaved exactly as first sent, so the rebuilt
        # worker's clock matches every command's original clock
        # (declaration slots, revision slots, residual scheduling).
        # Advance deltas were already merged; discard them.
        self._roundtrip(worker, self._init_msg)
        for message in self._history[worker]:
            self._roundtrip(worker, message)

    def _respawn(self, worker: int) -> None:
        _RESPAWNS_TOTAL.inc()
        proc = self._procs[worker]
        if proc is not None:
            try:
                proc.kill()
                proc.join(timeout=2.0)
            except (OSError, ValueError):
                pass
        try:
            self._conns[worker].close()
        except OSError:
            pass
        self._spawn(worker)

    def _roundtrip(self, worker: int, message: tuple):
        """One command round trip; a broken pipe raises ``_WorkerDied``."""
        conn = self._conns[worker]
        try:
            conn.send(message)
            reply = conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise _WorkerDied(worker) from exc
        if reply[0] == "error":
            _, name, text = reply
            raise MechanismError(
                f"fleet worker {worker} rejected {message[0]!r}: {name}: {text}"
            )
        return reply[1]

    def _mutate(self, worker: int, message: tuple) -> None:
        """Record-then-send. The history append comes first so a worker
        dying mid-command is recovered by replay (which includes the
        command) instead of an ambiguous resend."""
        self._history[worker].append(message)
        try:
            self._roundtrip(worker, message)
        except _WorkerDied:
            self._respawn(worker)

    # ------------------------------------------------------------- intake --

    def _ensure_usable(self) -> None:
        if self._closed:
            raise ProtocolError(
                "the fleet executor is closed; open a new period instead"
            )

    @property
    def slot(self) -> int:
        return self._intake.slot

    @property
    def epoch(self) -> int:
        return self._intake.epoch

    @property
    def ledger(self):
        return self._intake.ledger

    @property
    def events(self):
        return self._intake.events

    @property
    def shards(self) -> ShardMap:
        return self._intake.shards

    @property
    def bulk_intake_open(self) -> bool:
        return not self._closed and self._intake.bulk_intake_open

    @property
    def implemented(self) -> Mapping[OptId, int]:
        return self._implemented

    def bulk_keys(self) -> set:
        return self._intake.bulk_keys()

    def rank_of(self, optimization: OptId) -> int:
        return self._intake.rank_of(optimization)

    @property
    def rank_map(self) -> Mapping:
        return self._intake.rank_map

    def check_bid(
        self, user: UserId, optimization: OptId, bid: AdditiveBid
    ) -> int:
        return self._intake.check_bid(user, optimization, bid)

    def place_bid(
        self, user: UserId, optimization: OptId, bid: AdditiveBid
    ):
        rank = self.check_bid(user, optimization, bid)
        return self.place_checked(user, rank, optimization, bid)

    def place_checked(
        self, user: UserId, rank: int, optimization: OptId, bid: AdditiveBid
    ):
        self._ensure_usable()
        # Encode before committing: an id the wire codec cannot express
        # must fail with nothing placed anywhere (all-or-nothing).
        encoded_user = encode_value(user)
        handle = self._intake.place_checked(user, rank, optimization, bid)
        self._mutate(
            self._owner(rank),
            ("place", (encoded_user, rank, bid.start, bid.schedule.values)),
        )
        return handle

    def revise_bid(
        self, user: UserId, optimization: OptId, new_values: Mapping[int, float]
    ) -> None:
        self._ensure_usable()
        new_values = dict(new_values)
        encoded = (encode_value(user), encode_value(new_values))
        rank = self._intake.rank_of(optimization)
        self._intake.revise_bid(user, optimization, new_values)
        self._mutate(
            self._owner(rank), ("revise", (encoded[0], rank, encoded[1]))
        )

    def ingest(self, batch: FleetBatch) -> int:
        return self.ingest_many((batch,))

    def ingest_many(self, batches) -> int:
        self._ensure_usable()
        batches = [batch for batch in batches if len(batch) > 0]
        # Partition and encode first (raising ProtocolError on ids the
        # codec cannot express), then commit to the intake mirror, then
        # scatter — so a failure at any stage leaves no partial intake.
        per_worker = self._partition_batches(batches)
        count = self._intake.ingest_many(batches)
        for worker, blocks in enumerate(per_worker):
            if blocks:
                self._mutate(worker, ("ingest", blocks))
        return count

    def _owner(self, rank: int) -> int:
        return int(self._owner_arr[rank])

    def _partition_batches(self, batches) -> list:
        """Each batch split by owning worker, as codec-dict blocks."""
        per_worker: list[list] = [[] for _ in range(self.workers)]
        for batch in batches:
            ranks = np.asarray(batch.opt_ranks, dtype=np.int64)
            starts = np.asarray(batch.starts, dtype=np.int64)
            owners = self._owner_arr[ranks]
            for worker in range(self.workers):
                index = np.flatnonzero(owners == worker)
                if not len(index):
                    continue
                users = tuple(batch.users[i] for i in index.tolist())
                per_worker[worker].append(
                    {
                        "users": encode_value(users),
                        "ranks": ranks[index],
                        "starts": starts[index],
                        "values": batch.values[index],
                    }
                )
        return per_worker

    # --------------------------------------------------------------- loop --

    def advance_slots(self, slots: int) -> int:
        self._ensure_usable()
        if slots < 1:
            raise GameConfigError(f"must advance by >= 1 slot, got {slots}")
        if self._deps is None:
            self._finalize_departures()
        target = self.slot + int(slots)
        stop = min(target, self.horizon)
        while self.slot < stop:
            chunk = min(_ADVANCE_CHUNK, stop - self.slot)
            deltas = self._advance_chunk(chunk)
            base = self.slot
            for i in range(chunk):
                self._merge_slot(
                    base + 1 + i, [per_worker[i] for per_worker in deltas]
                )
            # Only a fully merged chunk enters the replay history; a
            # worker lost mid-chunk is replayed to the pre-chunk slot
            # and re-asked for this chunk (see _advance_chunk).
            done = ("advance", chunk)
            for history in self._history:
                history.append(done)
        if target > self.horizon:
            raise MechanismError(f"period is over after slot {self.horizon}")
        return self.slot

    def _advance_chunk(self, chunk: int) -> list:
        """Scatter one advance command, gather every worker's deltas.

        Sends first, then collects — the barrier is per chunk, so all
        workers run their slots concurrently. A worker found dead at
        either phase is respawned (replayed to the pre-chunk slot) and
        the chunk is re-requested from it alone.
        """
        message = ("advance", chunk)
        results: list = [None] * self.workers
        dead: list[int] = []
        begin = obs.REGISTRY.clock() if obs.REGISTRY.enabled else None
        for worker in range(self.workers):
            try:
                self._conns[worker].send(message)
            except (BrokenPipeError, ConnectionResetError, OSError):
                dead.append(worker)
        for worker in range(self.workers):
            if worker in dead:
                continue
            try:
                reply = self._conns[worker].recv()
            except (EOFError, ConnectionResetError, OSError):
                dead.append(worker)
                continue
            if reply[0] == "error":
                _, name, text = reply
                raise MechanismError(
                    f"fleet worker {worker} rejected 'advance': {name}: {text}"
                )
            results[worker] = reply[1]
            if begin is not None:
                _CHUNK_SECONDS.labels(worker=str(worker)).observe(
                    obs.REGISTRY.clock() - begin
                )
        for worker in dead:
            last: Exception | None = None
            for _ in range(2):
                try:
                    self._respawn(worker)
                    results[worker] = self._roundtrip(worker, message)
                    last = None
                    break
                except _WorkerDied as exc:
                    last = exc
            if begin is not None and results[worker] is not None:
                _CHUNK_SECONDS.labels(worker=str(worker)).observe(
                    obs.REGISTRY.clock() - begin
                )
            if last is not None:
                raise MechanismError(
                    f"fleet worker {worker} keeps dying mid-advance"
                ) from last
        return results

    def _finalize_departures(self) -> None:
        """The master's global departure schedule, from the intake mirror.

        Computed exactly like ``FleetEngine._finalize`` computes its
        departure arrays (per-batch ``start + duration - 1``, stable
        argsort by slot), but *before* the first advance and without
        consuming the mirror's batches — the mirror never advances, so
        its raw batches (and handle index) stay available for
        ``bulk_keys`` and late validation.
        """
        slot_chunks, rank_chunks, user_chunks = [], [], []
        for base, ranks, starts, values in self._intake._batches:
            duration = values.shape[1]
            slot_chunks.append(starts + (duration - 1))
            rank_chunks.append(ranks)
            user_chunks.append(
                np.arange(base, base + len(ranks), dtype=np.int64)
            )
        if slot_chunks:
            slots = np.concatenate(slot_chunks)
            order = np.argsort(slots, kind="stable")
            self._deps = (
                slots[order].tolist(),
                np.concatenate(rank_chunks)[order].tolist(),
                np.concatenate(user_chunks)[order].tolist(),
            )
        else:
            self._deps = ((), (), ())

    def _merge_slot(self, t: int, worker_deltas: list) -> None:
        """Replay one slot's worker deltas in global single-process order.

        Grants (and implementations) first, k-way merged by process
        rank; then departures in the master's own global departure
        order, then handle departures, then the departure events — the
        exact sequence of ``FleetEngine.advance_slot``.
        """
        intake = self._intake
        record = intake.events.record
        opt_ids = self._opt_ids
        proc = self._proc_rank
        granted = self._granted_at
        blocks = [d["grants"] for d in worker_deltas if d and d["grants"]]
        if len(blocks) == 1:
            merged = blocks[0]
        else:
            merged = heapq.merge(*blocks, key=lambda grant: proc[grant[0]])
        for rank, users, implemented_cost in merged:
            optimization = opt_ids[rank]
            for user in users:
                user = decode_value(user)
                granted[(user, optimization)] = t
                record(UserGranted(t, user, optimization))
            if implemented_cost is not None:
                self._implemented[optimization] = t
                intake.ledger.build_outlay(t, optimization, implemented_cost)
                record(
                    OptimizationImplemented(t, optimization, implemented_cost)
                )

        charges: dict = {}
        for delta in worker_deltas:
            if not delta:
                continue
            for user, rank, amount in delta["charges"]:
                charges[(decode_value(user), rank)] = amount
        departed: dict = {}
        dep_slots, dep_ranks, dep_users = self._deps
        names = intake._users
        dp = self._dp
        n = len(dep_slots)
        while dp < n and dep_slots[dp] == t:
            user = names[dep_users[dp]]
            rank = dep_ranks[dp]
            dp += 1
            self._settle(t, user, rank, charges.pop((user, rank)), departed)
        self._dp = dp
        for key in intake._ends_at.pop(t, ()):
            user, rank = key
            if intake._handles[key].current.end != t:
                continue  # the departure moved by revision; invoice later
            self._settle(t, user, rank, charges.pop((user, rank)), departed)
        if charges:  # pragma: no cover - divergence bug guard
            raise MechanismError(
                f"fleet workers charged {len(charges)} departure(s) the "
                f"master never scheduled at slot {t}"
            )
        if departed:
            intake.events.record_many(
                [UserDeparted(t, user) for user in departed]
            )
        # The mirror's clock and epoch move exactly like the engine's:
        # +1 slot, +1 epoch per processed slot (bids already counted).
        intake.slot = t
        intake.epoch += 1

    def _settle(
        self, t: int, user, rank: int, amount: float, departed: dict
    ) -> None:
        """One departure, replaying ``FleetEngine._invoice`` float-for-
        float with the worker-computed amount (0.0 = never-funded game,
        which the engine's cold path also books as a plain 0.0)."""
        self._payments[user] = self._payments.get(user, 0.0) + amount
        if amount > 0:
            optimization = self._opt_ids[rank]
            self._intake.ledger.invoice(
                t, user, amount, memo=f"opt={optimization!r}"
            )
            self._intake.events.record(UserCharged(t, user, amount))
            self._game_revenue[rank] += amount
        departed[user] = None

    # ------------------------------------------------------------ queries --

    def report(self) -> FleetReport:
        return FleetReport(
            horizon=self.horizon,
            games=tuple(self._opt_ids),
            ledger=self._intake.ledger,
            events=self._intake.events,
            implemented=dict(self._implemented),
            granted_at=dict(self._granted_at),
            payments=dict(self._payments),
            game_revenue={
                j: float(self._game_revenue[r])
                for r, j in enumerate(self._opt_ids)
                if self._game_revenue[r] != 0.0
            },
            epoch=self.epoch,
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(("close", None))
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass
        for conn in self._conns:
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)

    def __del__(self) -> None:  # pragma: no cover - gc-time best effort
        try:
            self.close()
        except Exception:
            pass
