"""Extensions beyond the paper's core mechanisms.

* :mod:`~repro.extensions.multi_period` — Section 5 describes the pricing
  period ``T`` ("e.g., a month"): the fixed cost covers implementation plus
  maintenance for one period, after which the cost is *recomputed* and all
  interested users must purchase again. The paper evaluates a single
  period; this module implements the chained-period service it describes,
  with build costs charged once and maintenance-only costs afterwards.
* :mod:`~repro.extensions.tiers` — Section 3 explicitly excludes
  continuous optimizations (degree of replication); this module offers the
  nearest discrete relaxation: replication *tiers* priced through
  SubstOff's general bid-matrix form. Best-effort: the paper's
  truthfulness proof covers equal-value substitute sets, not graded tiers,
  and the module documents where that matters.
"""

from repro.extensions.multi_period import (
    MultiPeriodOutcome,
    PeriodSpec,
    run_multi_period_addon,
)
from repro.extensions.tiers import TierSpec, TieredOutcome, run_tiered_game

__all__ = [
    "PeriodSpec",
    "MultiPeriodOutcome",
    "run_multi_period_addon",
    "TierSpec",
    "TieredOutcome",
    "run_tiered_game",
]
