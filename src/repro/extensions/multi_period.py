"""Chained pricing periods (the paper's Section 5 service model).

Each period runs one independent AddOn game — that is what keeps
truthfulness and cost-recovery intact per period (users cannot bid across
period boundaries, and nothing carries over except the physical artifact).
What changes across periods is the *cost*: the first period a game
implements the optimization it charges ``build_cost + maintenance_cost``;
every later period recomputes the price as ``maintenance_cost`` only (the
index already exists — only storage/update upkeep must be recovered). If a
period ends with nobody paying maintenance, the optimization is dropped
and the next interested period pays the build cost again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.bids.additive import AdditiveBid
from repro.core.accounting import addon_total_utility
from repro.core.addon import run_addon
from repro.core.outcome import AddOnOutcome, UserId
from repro.errors import GameConfigError

__all__ = ["PeriodSpec", "MultiPeriodOutcome", "run_multi_period_addon"]


@dataclass(frozen=True)
class PeriodSpec:
    """One pricing period: its slot horizon and the two cost components."""

    horizon: int
    build_cost: float
    maintenance_cost: float

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise GameConfigError(f"horizon must be >= 1, got {self.horizon}")
        if self.build_cost <= 0:
            raise GameConfigError(
                f"build cost must be positive, got {self.build_cost}"
            )
        if self.maintenance_cost <= 0:
            raise GameConfigError(
                f"maintenance cost must be positive, got {self.maintenance_cost}"
            )

    def total_cost(self, already_built: bool) -> float:
        """The period's recomputed cost ``C_j``."""
        if already_built:
            return self.maintenance_cost
        return self.build_cost + self.maintenance_cost


@dataclass(frozen=True)
class MultiPeriodOutcome:
    """Per-period outcomes plus cross-period bookkeeping."""

    outcomes: tuple
    charged_costs: tuple
    built_in: tuple

    @property
    def periods(self) -> int:
        """Number of periods run."""
        return len(self.outcomes)

    def outcome(self, period: int) -> AddOnOutcome:
        """One period's AddOn outcome (0-indexed)."""
        return self.outcomes[period]

    @property
    def total_payment(self) -> float:
        """Collected across all periods."""
        return sum(o.total_payment for o in self.outcomes)

    @property
    def total_cost(self) -> float:
        """Costs the cloud actually incurred across all periods."""
        return sum(
            cost
            for cost, outcome in zip(self.charged_costs, self.outcomes)
            if outcome.implemented
        )

    @property
    def cloud_balance(self) -> float:
        """Payments minus incurred costs; per-period AddOn keeps it >= 0."""
        return self.total_payment - self.total_cost

    def total_utility(
        self, true_bids_per_period: Sequence[Mapping[UserId, AdditiveBid]]
    ) -> float:
        """Summed social utility against per-period true values."""
        return sum(
            addon_total_utility(outcome, truth)
            for outcome, truth in zip(self.outcomes, true_bids_per_period)
        )


def run_multi_period_addon(
    periods: Sequence[PeriodSpec],
    bids_per_period: Sequence[Mapping[UserId, AdditiveBid]],
) -> MultiPeriodOutcome:
    """Run the chained-period service for one optimization.

    ``bids_per_period[k]`` holds the bids placed during period ``k`` (slot
    numbers are local to the period, ``1..periods[k].horizon``). The
    optimization's built/dropped state threads through: a period keeps the
    artifact alive only if its own game implements (i.e. someone pays the
    recomputed cost).
    """
    if len(periods) != len(bids_per_period):
        raise GameConfigError(
            f"{len(periods)} periods but {len(bids_per_period)} bid profiles"
        )
    outcomes = []
    charged = []
    built_in = []
    already_built = False
    for spec, bids in zip(periods, bids_per_period):
        for user, bid in bids.items():
            if bid.end > spec.horizon:
                raise GameConfigError(
                    f"user {user!r} bids past the period horizon {spec.horizon}"
                )
        cost = spec.total_cost(already_built)
        outcome = run_addon(cost, bids, horizon=spec.horizon)
        outcomes.append(outcome)
        charged.append(cost)
        built_in.append(outcome.implemented)
        # Kept alive only while some period's users pay for it.
        already_built = outcome.implemented
    return MultiPeriodOutcome(
        outcomes=tuple(outcomes),
        charged_costs=tuple(charged),
        built_in=tuple(built_in),
    )
