"""Tiered (quasi-continuous) optimizations via SubstOff's bid matrix.

The paper restricts itself to binary optimizations and explicitly sets
aside continuous ones like the degree of replication (Section 3). The
nearest mechanism-compatible relaxation discretizes the continuum into
*tiers* — e.g. 1x / 2x / 3x replication — and treats them as a
substitutable family: a user enjoys at most one tier, so her bid is one
value per tier and SubstOff's phase loop (which already accepts arbitrary
non-negative matrices) selects tiers and shares costs.

Caveats, stated up front: the paper proves truthfulness for substitutable
bids with a *single* value across the set. With graded per-tier values the
proof does not carry — a user might shade her bid on an expensive tier to
steer the phase loop toward a cheaper one she values almost as much. The
tests demonstrate the mechanics and cost recovery (which holds regardless,
being per-phase Shapley), not strategy-proofness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.outcome import SubstOffOutcome, UserId
from repro.core.substoff import run_substoff
from repro.errors import GameConfigError
from repro.utils.rng import RngLike

__all__ = ["TierSpec", "TieredOutcome", "run_tiered_game"]


@dataclass(frozen=True)
class TierSpec:
    """One tier of a graded optimization (e.g. a replication level)."""

    tier_id: str
    level: int
    cost: float

    def __post_init__(self) -> None:
        if self.level < 1:
            raise GameConfigError(f"tier level must be >= 1, got {self.level}")
        if self.cost <= 0:
            raise GameConfigError(f"tier cost must be positive, got {self.cost}")


@dataclass(frozen=True)
class TieredOutcome:
    """SubstOff's outcome plus tier-level convenience accessors."""

    tiers: tuple
    outcome: SubstOffOutcome

    def tier_of(self, user: UserId) -> TierSpec | None:
        """The tier ``user`` was granted, if any."""
        granted = self.outcome.grants.get(user)
        if granted is None:
            return None
        return next(t for t in self.tiers if t.tier_id == granted)

    @property
    def implemented_levels(self) -> tuple:
        """Levels of the tiers that were built, in phase order."""
        by_id = {t.tier_id: t.level for t in self.tiers}
        return tuple(by_id[j] for j in self.outcome.implemented)

    def payment(self, user: UserId) -> float:
        """What ``user`` pays."""
        return self.outcome.payment(user)


def run_tiered_game(
    tiers: Mapping[str, TierSpec] | list,
    values: Mapping[UserId, Mapping[str, float]],
    rng: RngLike = None,
    randomize_ties: bool = False,
) -> TieredOutcome:
    """Select and price tiers for selfish users.

    ``values[i][tier_id]`` is user ``i``'s (declared) value for living at
    that tier; omitted tiers count as worthless to her. Values should be
    non-decreasing in level for a sane replication story, but the
    mechanism itself doesn't require it.
    """
    tier_list = list(tiers.values()) if isinstance(tiers, Mapping) else list(tiers)
    ids = [t.tier_id for t in tier_list]
    if len(set(ids)) != len(ids):
        raise GameConfigError(f"duplicate tier ids in {ids}")
    costs = {t.tier_id: t.cost for t in tier_list}
    for user, row in values.items():
        unknown = set(row) - set(costs)
        if unknown:
            raise GameConfigError(
                f"user {user!r} values unknown tiers: {sorted(unknown)}"
            )
    outcome = run_substoff(costs, values, rng=rng, randomize_ties=randomize_ties)
    return TieredOutcome(tiers=tuple(tier_list), outcome=outcome)
