"""Loss-minimizing single-price search for the Regret baseline.

After implementing an optimization at slot ``t_r``, Regret charges every
future user one price ``p``. With ``I(p) = |{i : F_i >= p}|`` (``F_i`` the
user's residual future value) and loss ``L(p) = cost - p * I(p)``, the
paper picks ``p = argmin_p max{L(p), 0}``, smallest ``p`` on ties so user
utilities are maximized.

Concretely: if any price recovers the cost, the smallest such price is
``cost / k*`` where ``k*`` is the largest ``k`` with ``F_(k) >= cost / k``
(``F_(k)`` the k-th largest residual) — the same structure as a Shapley
share. Otherwise revenue is maximized at one of the residual values and we
take the smallest maximizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import GameConfigError

__all__ = ["PriceDecision", "optimal_price"]


@dataclass(frozen=True)
class PriceDecision:
    """The chosen price and its bookkeeping.

    ``payers`` is ``I(p)`` restricted to strictly-positive residuals (users
    with zero future value gain nothing and are not serviced). ``loss`` is
    ``max(cost - revenue, 0)`` — zero exactly when the cost is recovered.
    """

    price: float
    payers: int
    revenue: float
    loss: float

    @property
    def recovers_cost(self) -> bool:
        """True when the collected revenue covers the optimization cost."""
        return self.loss == 0.0


def optimal_price(cost: float, future_values: Iterable[float]) -> PriceDecision:
    """Choose the loss-minimizing price for ``cost`` given residual values.

    Parameters
    ----------
    cost:
        The optimization cost ``c_j`` to recover.
    future_values:
        One residual value ``F_i = sum_{t > t_r} v_ij(t)`` per future user.

    Returns
    -------
    PriceDecision
        The smallest price among loss minimizers, with payer count, revenue
        and residual loss.
    """
    import math

    if cost <= 0 or math.isnan(cost) or math.isinf(cost):
        raise GameConfigError(f"cost must be positive and finite, got {cost}")
    residuals = sorted((f for f in future_values if f > 0), reverse=True)
    if not residuals:
        return PriceDecision(price=0.0, payers=0, revenue=0.0, loss=cost)

    # Feasible full recovery: largest k with F_(k) >= cost / k.
    best_k = 0
    for k, f_k in enumerate(residuals, start=1):
        if f_k >= cost / k:
            best_k = k
    if best_k > 0:
        price = cost / best_k
        payers = sum(1 for f in residuals if f >= price)
        revenue = price * payers
        return PriceDecision(price=price, payers=payers, revenue=revenue, loss=0.0)

    # No price recovers the cost: maximize revenue; smallest price on ties.
    best_price = residuals[0]
    best_revenue = 0.0
    for candidate in sorted(set(residuals)):
        payers = sum(1 for f in residuals if f >= candidate)
        revenue = candidate * payers
        if revenue > best_revenue:
            best_revenue = revenue
            best_price = candidate
    payers = sum(1 for f in residuals if f >= best_price)
    return PriceDecision(
        price=best_price,
        payers=payers,
        revenue=best_revenue,
        loss=cost - best_revenue,
    )
