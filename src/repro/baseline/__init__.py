"""The state-of-the-art baseline: regret-based amortization (Section 7.1).

Re-implements the core of Dash/Kantere et al.'s approach as the paper
abstracts it: accumulate *regret* (value that would have been realized had
the optimization existed), implement greedily once regret covers the cost,
then charge future users a single price chosen — with clairvoyant knowledge
of future values, an upper bound on the real approach — to minimize the
cloud's loss.
"""

from repro.baseline.pricing import PriceDecision, optimal_price
from repro.baseline.regret import (
    RegretOptOutcome,
    RegretOutcome,
    run_regret_additive,
    run_regret_additive_many,
    run_regret_substitutable,
)

__all__ = [
    "PriceDecision",
    "optimal_price",
    "RegretOptOutcome",
    "RegretOutcome",
    "run_regret_additive",
    "run_regret_additive_many",
    "run_regret_substitutable",
]
