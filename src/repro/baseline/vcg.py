"""VCG (Clarke pivot) pricing for offline additive games.

The third corner of Section 3's impossibility triangle: VCG is *efficient*
(it implements the welfare-maximizing alternative) and *truthful*, but it
is **not cost-recovering** — exactly the trade the paper refuses. For an
additive game the Clarke payment decomposes per optimization:

    p_ij = max(0, C_j - sum_{k != i} b_kj)    when j is implemented,

i.e. each user pays only her *pivotal* contribution. Whenever an
optimization is comfortably funded, everyone's pivotal share is 0 and the
cloud eats the whole cost. The ablation benchmark quantifies that deficit
against the Shapley mechanisms' welfare loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.efficiency import EfficientAdditiveOutcome, efficient_additive
from repro.core.outcome import OptId, UserId

__all__ = ["VcgOutcome", "run_vcg_additive"]


@dataclass(frozen=True)
class VcgOutcome:
    """The efficient alternative plus Clarke payments."""

    efficient: EfficientAdditiveOutcome
    payments: Mapping[UserId, float]

    @property
    def implemented(self) -> frozenset:
        """Optimizations built (the efficient set)."""
        return self.efficient.implemented

    @property
    def welfare(self) -> float:
        """Realized social welfare (optimal by construction)."""
        return self.efficient.welfare

    @property
    def total_cost(self) -> float:
        """Combined build costs."""
        return self.efficient.total_cost

    @property
    def total_payment(self) -> float:
        """Combined Clarke payments."""
        return sum(self.payments.values())

    @property
    def deficit(self) -> float:
        """Unrecovered cost (>= 0); the price of efficiency."""
        return max(0.0, self.total_cost - self.total_payment)

    def payment(self, user: UserId) -> float:
        """Clarke payment of one user."""
        return self.payments.get(user, 0.0)


def run_vcg_additive(
    costs: Mapping[OptId, float],
    bids: Mapping[OptId, Mapping[UserId, float]],
) -> VcgOutcome:
    """Run VCG on an offline additive game.

    Implements the efficient set per :func:`efficient_additive` and
    charges each granted user her per-optimization pivotal payment.
    """
    outcome = efficient_additive(costs, bids)
    payments: dict[UserId, float] = {}
    for optimization in outcome.implemented:
        opt_bids = bids.get(optimization, {})
        positive_total = sum(v for v in opt_bids.values() if v > 0)
        cost = costs[optimization]
        for user, value in opt_bids.items():
            if value <= 0:
                continue
            others = positive_total - value
            pivotal = max(0.0, cost - others)
            if pivotal > 0:
                payments[user] = payments.get(user, 0.0) + pivotal
    return VcgOutcome(efficient=outcome, payments=payments)
