"""Regret-based amortization (paper Section 7.1).

``R_j(t) = sum_{tau < t} sum_i v_ij(tau)`` is the value that would have
been realized had ``j`` existed from the start. The greedy policy builds
``j`` at the first slot ``t_r`` with ``C_j <= R_j(t_r)``. Users can then
access ``j`` for slots ``t > t_r`` after paying the single price chosen by
:func:`repro.baseline.pricing.optimal_price` over the (clairvoyantly known)
residual future values — an upper bound on how well the real approach can
price, as the paper notes.

Boundary conventions (documented in DESIGN.md): value at slot ``t_r``
itself is lost (regret excludes ``t``, the pricing formula counts
``t > t_r``), and when several substitutable optimizations cross their
threshold in the same slot they are processed in the order they appear in
the ``costs`` mapping, each locking its serviced users before the next.

The baseline trusts bids: it has no defense against misreports, which is
one of the two critiques (with non-guaranteed cost recovery) the paper
levels at it. Callers should therefore feed it *true* values when comparing
total utility, as the paper's experiments do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.baseline.pricing import optimal_price
from repro.bids.additive import AdditiveBid
from repro.bids.substitutive import SubstitutableBid
from repro.core.outcome import OptId, UserId
from repro.errors import MechanismError
from repro.utils.numeric import is_positive_finite

__all__ = [
    "RegretOptOutcome",
    "RegretOutcome",
    "run_regret_additive",
    "run_regret_additive_many",
    "run_regret_substitutable",
]


@dataclass(frozen=True)
class RegretOptOutcome:
    """Regret outcome for a single optimization.

    ``regret_trace[t]`` is ``R_j(t)`` for ``t = 0..horizon`` (index 0 kept
    at 0 for 1-indexed slots). ``realized_values`` maps each serviced user
    to the value she obtains (her residual after ``t_r``).
    """

    cost: float
    horizon: int
    implemented_at: int | None
    price: float
    serviced: frozenset
    payments: Mapping[UserId, float]
    realized_values: Mapping[UserId, float]
    regret_trace: tuple

    @property
    def implemented(self) -> bool:
        """True when regret ever reached the cost."""
        return self.implemented_at is not None

    @property
    def total_cost(self) -> float:
        """Cost incurred (0 when never implemented)."""
        return self.cost if self.implemented else 0.0

    @property
    def total_payment(self) -> float:
        """Revenue collected from serviced users."""
        return sum(self.payments.values())

    @property
    def total_utility(self) -> float:
        """Realized value minus incurred cost (can be negative)."""
        return sum(self.realized_values.values()) - self.total_cost

    @property
    def cloud_balance(self) -> float:
        """Payments minus costs; negative means the cloud lost money."""
        return self.total_payment - self.total_cost


@dataclass(frozen=True)
class RegretOutcome:
    """Aggregate Regret outcome over several optimizations."""

    per_opt: Mapping[OptId, RegretOptOutcome]

    @property
    def total_cost(self) -> float:
        """Combined incurred costs."""
        return sum(o.total_cost for o in self.per_opt.values())

    @property
    def total_payment(self) -> float:
        """Combined user payments."""
        return sum(o.total_payment for o in self.per_opt.values())

    @property
    def total_utility(self) -> float:
        """Combined total utility."""
        return sum(o.total_utility for o in self.per_opt.values())

    @property
    def cloud_balance(self) -> float:
        """Payments minus costs; negative means the cloud lost money."""
        return self.total_payment - self.total_cost


def run_regret_additive(
    cost: float,
    bids: Mapping[UserId, AdditiveBid],
    horizon: int | None = None,
) -> RegretOptOutcome:
    """Run Regret for one additive optimization.

    ``bids`` are the users' (trusted) value schedules; see the module
    docstring for why they should be true values.
    """
    if not is_positive_finite(cost):
        raise MechanismError(f"optimization cost must be positive, got {cost}")
    if horizon is None:
        horizon = max((b.end for b in bids.values()), default=0)

    regret_trace = [0.0]
    regret = 0.0
    implemented_at: int | None = None
    for t in range(1, horizon + 1):
        # R_j(t) sums value strictly before t: check, then accumulate t.
        if implemented_at is None and regret >= cost:
            implemented_at = t
        regret_trace.append(regret)
        regret += sum(bid.value_at(t) for bid in bids.values())

    if implemented_at is None:
        return RegretOptOutcome(
            cost=cost,
            horizon=horizon,
            implemented_at=None,
            price=0.0,
            serviced=frozenset(),
            payments={},
            realized_values={},
            regret_trace=tuple(regret_trace),
        )

    residuals = {
        user: bid.residual(implemented_at + 1) for user, bid in bids.items()
    }
    decision = optimal_price(cost, residuals.values())
    serviced = frozenset(
        user
        for user, residual in residuals.items()
        if residual > 0 and residual >= decision.price
    )
    payments = {user: decision.price for user in serviced}
    realized = {user: residuals[user] for user in serviced}
    return RegretOptOutcome(
        cost=cost,
        horizon=horizon,
        implemented_at=implemented_at,
        price=decision.price,
        serviced=serviced,
        payments=payments,
        realized_values=realized,
        regret_trace=tuple(regret_trace),
    )


def run_regret_additive_many(
    costs: Mapping[OptId, float],
    bids: Mapping[OptId, Mapping[UserId, AdditiveBid]],
    horizon: int | None = None,
) -> RegretOutcome:
    """Run Regret independently for several additive optimizations."""
    unknown = set(bids) - set(costs)
    if unknown:
        raise MechanismError(
            f"bids reference unknown optimizations: {sorted(map(str, unknown))}"
        )
    if horizon is None:
        ends = [
            bid.end for opt_bids in bids.values() for bid in opt_bids.values()
        ]
        horizon = max(ends, default=0)
    per_opt = {
        j: run_regret_additive(cost, bids.get(j, {}), horizon=horizon)
        for j, cost in costs.items()
    }
    return RegretOutcome(per_opt=per_opt)


def run_regret_substitutable(
    costs: Mapping[OptId, float],
    bids: Mapping[UserId, SubstitutableBid],
    horizon: int | None = None,
) -> RegretOutcome:
    """Run Regret for substitutable optimizations.

    Each optimization accumulates regret from the not-yet-serviced users
    whose substitute set contains it. Once a user pays for an implemented
    optimization she is locked to it and stops feeding regret to the others.
    """
    for optimization, cost in costs.items():
        if not is_positive_finite(cost):
            raise MechanismError(
                f"cost of {optimization!r} must be positive, got {cost}"
            )
    for user, bid in bids.items():
        missing = bid.substitutes - set(costs)
        if missing:
            raise MechanismError(
                f"user {user!r} wants unknown optimizations: {sorted(map(str, missing))}"
            )
    if horizon is None:
        horizon = max((b.end for b in bids.values()), default=0)

    regret: dict[OptId, float] = {j: 0.0 for j in costs}
    traces: dict[OptId, list[float]] = {j: [0.0] for j in costs}
    implemented_at: dict[OptId, int] = {}
    prices: dict[OptId, float] = {}
    serviced_by: dict[UserId, OptId] = {}
    payments: dict[UserId, float] = {}
    realized: dict[UserId, float] = {}

    for t in range(1, horizon + 1):
        # Threshold checks happen at the start of the slot, in mapping order.
        for j, cost in costs.items():
            traces[j].append(regret[j])
            if j in implemented_at or regret[j] < cost:
                continue
            implemented_at[j] = t
            eligible = {
                user: bid.residual(t + 1)
                for user, bid in bids.items()
                if user not in serviced_by and j in bid.substitutes
            }
            decision = optimal_price(cost, eligible.values())
            prices[j] = decision.price
            for user, residual in eligible.items():
                if residual > 0 and residual >= decision.price:
                    serviced_by[user] = j
                    payments[user] = decision.price
                    realized[user] = residual

        # Accumulate this slot's value into the regret of unserviced users.
        for user, bid in bids.items():
            if user in serviced_by:
                continue
            value = bid.value_at(t)
            if value <= 0:
                continue
            for j in bid.substitutes:
                if j not in implemented_at:
                    regret[j] += value

    per_opt: dict[OptId, RegretOptOutcome] = {}
    for j, cost in costs.items():
        users_j = frozenset(u for u, jj in serviced_by.items() if jj == j)
        per_opt[j] = RegretOptOutcome(
            cost=cost,
            horizon=horizon,
            implemented_at=implemented_at.get(j),
            price=prices.get(j, 0.0),
            serviced=users_j,
            payments={u: payments[u] for u in users_j},
            realized_values={u: realized[u] for u in users_j},
            regret_trace=tuple(traces[j]),
        )
    return RegretOutcome(per_opt=per_opt)
