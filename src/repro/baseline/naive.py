"""Naive mechanisms the paper uses as negative examples.

* :func:`run_naive_pay_your_bid` — Example 1: implement when the bids sum
  to the cost, charge everyone her own bid. Cost-recovering but not
  truthful (underbidding keeps you serviced at a lower price).
* :func:`run_naive_online_shapley` — Example 2: run the Shapley mechanism
  per slot until the optimization is implemented, then give it away for
  free. Truthful users who arrive after implementation free-ride, so
  hiding early value is profitable — the flaw AddOn's residual bids and
  cumulative forcing remove.

Both exist for the ablation benchmarks and tests; do not use them to price
anything real.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.bids.additive import AdditiveBid
from repro.core.outcome import AddOnOutcome, ShapleyResult, UserId
from repro.core.shapley import run_shapley
from repro.errors import MechanismError
from repro.utils.numeric import is_positive_finite

__all__ = ["run_naive_pay_your_bid", "run_naive_online_shapley"]


def run_naive_pay_your_bid(
    cost: float, bids: Mapping[UserId, float]
) -> ShapleyResult:
    """Example 1's mechanism: if ``sum(bids) >= cost``, everyone pays her bid.

    Returns a :class:`ShapleyResult` for interface parity (``price`` is the
    *average* payment, payments are per-user bids).
    """
    if not is_positive_finite(cost):
        raise MechanismError(f"optimization cost must be positive, got {cost}")
    for user, bid in bids.items():
        if bid < 0 or math.isnan(bid):
            raise MechanismError(f"bid for user {user!r} must be >= 0, got {bid}")
    bidders = {user: bid for user, bid in bids.items() if bid > 0}
    total = sum(bidders.values())
    if total < cost:
        return ShapleyResult(frozenset(), 0.0, {}, rounds=1)
    return ShapleyResult(
        serviced=frozenset(bidders),
        price=total / len(bidders),
        payments=dict(bidders),
        rounds=1,
    )


def run_naive_online_shapley(
    cost: float,
    bids: Mapping[UserId, AdditiveBid],
    horizon: int | None = None,
) -> AddOnOutcome:
    """Example 2's naive adaptation of Shapley to a dynamic setting.

    Each slot runs Mechanism 1 over the residual bids of present users.
    The first slot whose run succeeds implements the optimization and
    charges that slot's serviced set; afterwards everyone present is
    serviced for free.
    """
    if not is_positive_finite(cost):
        raise MechanismError(f"optimization cost must be positive, got {cost}")
    if horizon is None:
        horizon = max((b.end for b in bids.values()), default=0)

    serviced_by_slot: list[frozenset] = [frozenset()]
    cumulative_by_slot: list[frozenset] = [frozenset()]
    price_by_slot: list[float] = [0.0]
    payments: dict[UserId, float] = {}
    implemented_at: int | None = None
    cumulative: set = set()

    for t in range(1, horizon + 1):
        if implemented_at is None:
            residuals = {
                user: (bid.residual(t) if t >= bid.start else 0.0)
                for user, bid in bids.items()
            }
            result = run_shapley(cost, residuals)
            price_by_slot.append(result.price)
            if result.implemented:
                implemented_at = t
                for user in result.serviced:
                    payments[user] = result.price
                cumulative |= set(result.serviced)
        else:
            price_by_slot.append(0.0)  # free riders welcome

        if implemented_at is not None:
            # Everyone present rides along from the implementation slot on.
            cumulative |= {
                user for user, bid in bids.items() if t >= bid.start
            }
        active = frozenset(
            user for user in cumulative if bids[user].start <= t <= bids[user].end
        )
        serviced_by_slot.append(active)
        cumulative_by_slot.append(frozenset(cumulative))

    return AddOnOutcome(
        cost=cost,
        horizon=horizon,
        serviced_by_slot=tuple(serviced_by_slot),
        cumulative_by_slot=tuple(cumulative_by_slot),
        price_by_slot=tuple(price_by_slot),
        payments=payments,
        implemented_at=implemented_at,
    )
