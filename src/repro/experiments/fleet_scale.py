"""FLEET — fleet engine vs independent services, measured at scale.

Not a paper figure: this driver measures the codebase's own claim that the
:class:`~repro.fleet.engine.FleetEngine` runs hundreds of concurrent
pricing games faster than the same games as independent
:class:`~repro.cloudsim.service.CloudService` instances, while producing
bit-for-bit identical grants, prices, and payments (asserted on every
point before any timing is reported). ``benchmarks/bench_fleet.py``
enforces the headline speedup floor; this driver powers the ``fleet`` CLI
command and sweeps the game count.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass

from repro.cloudsim.catalog import OptimizationCatalog
from repro.cloudsim.service import CloudService
from repro.errors import GameConfigError
from repro.experiments.common import ExperimentResult, Series
import numpy as np

from repro.fleet.engine import FleetBatch, FleetEngine
from repro.workloads.fleet import (
    fleet_arrival_trace,
    fleet_batches,
    fleet_game_costs,
)

__all__ = [
    "FleetScaleConfig",
    "run_fleet_scale",
    "measure_fleet_point",
    "measure_fleet_mp_point",
    "measure_gateway_point",
]


@dataclass(frozen=True)
class FleetScaleConfig:
    """Knobs for the fleet-vs-services sweep."""

    games_grid: tuple = (25, 50, 100, 200)
    users_per_game: int = 250
    slots: int = 1000
    max_duration: int = 4
    mean_cost: float = 30.0
    shards: int = 8
    repeats: int = 2
    seed: int = 2012

    def __post_init__(self) -> None:
        if self.users_per_game < 1:
            raise GameConfigError(
                f"users per game must be >= 1, got {self.users_per_game}"
            )
        if self.repeats < 1:
            raise GameConfigError(f"repeats must be >= 1, got {self.repeats}")


def measure_fleet_point(
    games: int,
    users: int,
    slots: int,
    max_duration: int = 4,
    mean_cost: float = 30.0,
    shards: int = 8,
    repeats: int = 2,
    seed: int = 2012,
) -> tuple[float, float]:
    """Wall-clock seconds ``(services, fleet)`` for one workload point.

    Both sides run the *same* drawn population — the object-form trace and
    the columnar batches are generated with identical RNG consumption, so
    their bids are bit-identical. Before any timing is trusted, the two
    reports are checked for identical payments, grants, and implementation
    slots; best-of-``repeats`` timings absorb scheduler noise.
    """
    costs = fleet_game_costs(seed, games, mean_cost)
    trace = fleet_arrival_trace(seed + 1, users, games, slots, max_duration)
    by_game: dict = {}
    for arrival in trace:
        by_game.setdefault(arrival.optimization, []).append(arrival)
    batches = fleet_batches(seed + 1, users, games, slots, max_duration)
    catalog = OptimizationCatalog.from_costs(costs)

    def run_services():
        started = time.perf_counter()
        reports = {}
        for game, cost in costs.items():
            service = CloudService(
                OptimizationCatalog.from_costs({game: cost}),
                horizon=slots,
                mode="additive",
            )
            for arrival in by_game.get(game, ()):
                service.place_additive_bid(arrival.user, game, arrival.bid)
            reports[game] = service.run_to_end()
        return time.perf_counter() - started, reports

    def run_fleet():
        started = time.perf_counter()
        engine = FleetEngine(catalog, horizon=slots, shards=shards)
        for batch in batches:
            engine.ingest(batch)
        report = engine.run_to_end()
        return time.perf_counter() - started, report

    services_s, service_reports = run_services()
    fleet_s, fleet_report = run_fleet()
    _assert_identical(service_reports, fleet_report)
    # Drop the parity artifacts (hundreds of thousands of event/ledger
    # objects) before the clean timing repeats: a heap full of survivors
    # turns every generational GC pass into a full scan, taxing whichever
    # side happens to run under it.
    del service_reports, fleet_report
    gc.collect()
    for _ in range(repeats - 1):
        services_s = min(services_s, run_services()[0])
        fleet_s = min(fleet_s, run_fleet()[0])
    return services_s, fleet_s


def measure_fleet_mp_point(
    games: int,
    users: int,
    slots: int,
    max_duration: int = 4,
    mean_cost: float = 30.0,
    shards: int = 8,
    repeats: int = 2,
    seed: int = 2012,
    workers: int = 2,
) -> tuple[float, float]:
    """Wall-clock seconds ``(single, pool)`` for one workload point.

    Races the in-process :class:`~repro.fleet.engine.FleetEngine` against
    the shared-nothing :class:`~repro.fleet.mp.MultiProcessFleet` on the
    same drawn population. Both executors consume the identical columnar
    batches; before any timing is trusted, their reports are asserted
    bit-identical — payments, grants, implementations, per-game revenue,
    the ledger and the event log. ``benchmarks/bench_fleet_mp.py`` turns
    the ratio into the scaling-curve floor.
    """
    if workers < 2:
        raise GameConfigError(
            f"multi-process race needs workers >= 2, got {workers}"
        )
    costs = fleet_game_costs(seed, games, mean_cost)
    batches = fleet_batches(seed + 1, users, games, slots, max_duration)
    catalog = OptimizationCatalog.from_costs(costs)

    def run_single():
        started = time.perf_counter()
        engine = FleetEngine.build(catalog, horizon=slots, shards=shards)
        engine.ingest_many(batches)
        report = engine.run_to_end()
        return time.perf_counter() - started, report

    def run_pool():
        started = time.perf_counter()
        fleet = FleetEngine.build(
            catalog, horizon=slots, shards=shards, workers=workers
        )
        try:
            fleet.ingest_many(batches)
            report = fleet.run_to_end()
        finally:
            fleet.close()
        return time.perf_counter() - started, report

    single_s, single_report = run_single()
    pool_s, pool_report = run_pool()
    _assert_reports_equal(
        single_report, pool_report, f"{workers}-worker pool"
    )
    del single_report, pool_report
    gc.collect()
    for _ in range(repeats - 1):
        single_s = min(single_s, run_single()[0])
        pool_s = min(pool_s, run_pool()[0])
    return single_s, pool_s


def measure_gateway_point(
    games: int,
    users: int,
    slots: int,
    max_duration: int = 4,
    mean_cost: float = 30.0,
    shards: int = 8,
    repeats: int = 2,
    seed: int = 2012,
) -> tuple[float, float]:
    """Wall-clock seconds ``(direct, gateway)`` for one workload point.

    Both sides start from the same 50k-scale *per-user* bid records —
    the position any real client is in. The *direct* side columnarizes
    the records into duration-major :class:`~repro.fleet.engine.FleetBatch`
    blocks itself, bulk-ingests them into a bare
    :class:`~repro.fleet.engine.FleetEngine`, and runs the period; the
    *gateway* side dispatches one pre-built ``SubmitBids`` envelope per
    user through one batched :meth:`~repro.gateway.PricingService.dispatch`
    (which does the identical regrouping behind the facade) and runs the
    same period through it. Reports are asserted bit-identical —
    payments, grants, implementations, per-game revenue, the ledger and
    the event log — against each other *and* against pre-built
    :func:`~repro.workloads.fleet.fleet_batches` intake, before any
    timing is trusted. ``benchmarks/bench_gateway.py`` turns the ratio
    into the <15% dispatch-overhead gate.
    """
    from repro.gateway.envelopes import SubmitBids
    from repro.gateway.service import PricingService

    costs = fleet_game_costs(seed, games, mean_cost)
    batches = fleet_batches(seed + 1, users, games, slots, max_duration)
    trace = fleet_arrival_trace(seed + 1, users, games, slots, max_duration)
    requests = [
        SubmitBids(
            tenant=arrival.user,
            bids=(
                (
                    arrival.optimization,
                    arrival.bid.start,
                    arrival.bid.schedule.values,
                ),
            ),
        )
        for arrival in trace
    ]

    def _timed(run):
        # Same GC regime for both sides: the resident population (50k
        # request/bid objects) makes generational passes effectively full
        # scans, and which side gets hit is luck of the allocation clock.
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            result = run()
            return time.perf_counter() - started, result
        finally:
            gc.enable()

    def run_direct():
        def run():
            engine = FleetEngine(
                OptimizationCatalog.from_costs(costs),
                horizon=slots,
                shards=shards,
            )
            rank_get = engine.rank_map.get
            columns: dict[int, tuple] = {}
            for arrival in trace:
                bid = arrival.bid
                values = bid.schedule.values
                group = columns.get(len(values))
                if group is None:
                    group = columns[len(values)] = ([], [], [], [])
                group[0].append(arrival.user)
                group[1].append(rank_get(arrival.optimization))
                group[2].append(bid.start)
                group[3].append(values)
            for duration in sorted(columns):
                tenants, ranks, starts, values = columns[duration]
                engine.ingest(
                    FleetBatch(
                        users=tuple(tenants),
                        opt_ranks=np.array(ranks, dtype=np.int64),
                        starts=np.array(starts, dtype=np.int64),
                        values=np.array(values, dtype=float),
                    )
                )
            return engine.run_to_end()

        return _timed(run)

    def run_gateway():
        def run():
            service = PricingService(
                OptimizationCatalog.from_costs(costs),
                horizon=slots,
                shards=shards,
            )
            acks = service.dispatch(requests)
            if getattr(acks, "failed", None) is not None:
                raise AssertionError(f"bulk dispatch failed: {acks.failed}")
            return service.run_to_end()

        return _timed(run)

    # Pre-built batches are the engine's native intake; the sweep below
    # must match them bit for bit, proving neither columnarization path
    # (direct-from-records or gateway-from-envelopes) drifts.
    reference = FleetEngine(
        OptimizationCatalog.from_costs(costs), horizon=slots, shards=shards
    )
    for batch in batches:
        reference.ingest(batch)
    reference_report = reference.run_to_end()

    direct_s, direct_report = run_direct()
    gateway_s, gateway_report = run_gateway()
    _assert_reports_equal(reference_report, direct_report, "direct-from-records")
    _assert_reports_equal(direct_report, gateway_report, "gateway")
    del reference_report, direct_report, gateway_report
    gc.collect()
    for _ in range(repeats - 1):
        direct_s = min(direct_s, run_direct()[0])
        gateway_s = min(gateway_s, run_gateway()[0])
    return direct_s, gateway_s


def _assert_reports_equal(expected, actual, label: str) -> None:
    for field in ("payments", "granted_at", "implemented", "game_revenue"):
        if dict(getattr(expected, field)) != dict(getattr(actual, field)):
            raise AssertionError(f"{label} {field} diverge from the direct fleet")
    if expected.ledger != actual.ledger:
        raise AssertionError(f"{label} ledger diverges from the direct fleet")
    if expected.events != actual.events:
        raise AssertionError(f"{label} event log diverges from the direct fleet")


def _assert_identical(service_reports: dict, fleet_report) -> None:
    payments: dict = {}
    granted: dict = {}
    implemented: dict = {}
    for report in service_reports.values():
        for user, paid in report.payments.items():
            payments[user] = payments.get(user, 0.0) + paid
        granted.update(report.granted_at)
        implemented.update(report.implemented)
    if payments != dict(fleet_report.payments):
        raise AssertionError("fleet payments diverge from independent services")
    if granted != dict(fleet_report.granted_at):
        raise AssertionError("fleet grants diverge from independent services")
    if implemented != dict(fleet_report.implemented):
        raise AssertionError(
            "fleet implementations diverge from independent services"
        )


def run_fleet_scale(config: FleetScaleConfig = FleetScaleConfig()) -> ExperimentResult:
    """Sweep the game count; returns seconds-per-side plus the speedup."""
    xs = tuple(int(g) for g in config.games_grid)
    services_y = []
    fleet_y = []
    speedup_y = []
    for games in xs:
        services_s, fleet_s = measure_fleet_point(
            games=games,
            users=games * config.users_per_game,
            slots=config.slots,
            max_duration=config.max_duration,
            mean_cost=config.mean_cost,
            shards=config.shards,
            repeats=config.repeats,
            seed=config.seed,
        )
        services_y.append(services_s)
        fleet_y.append(fleet_s)
        speedup_y.append(services_s / fleet_s)
    return ExperimentResult(
        experiment="fleet_scale",
        x_label="concurrent games (x%d users each)" % config.users_per_game,
        y_label="wall-clock seconds (and x speedup)",
        series=(
            Series("independent services [s]", xs, tuple(services_y)),
            Series("fleet engine [s]", xs, tuple(fleet_y)),
            Series("speedup [x]", xs, tuple(speedup_y)),
        ),
    )
