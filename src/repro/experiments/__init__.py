"""Experiment drivers: one module per figure of the paper's evaluation.

Each driver exposes a frozen ``*Config`` dataclass (defaults match the
paper's setup) and a ``run_*`` function returning an
:class:`~repro.experiments.common.ExperimentResult` whose series carry the
same curves the paper plots. ``repro.experiments.report.format_result``
renders the series as a plain-text table — the benchmark harnesses print
exactly that.

Beyond the paper's figures, :mod:`repro.experiments.fleet_scale` measures
this codebase's own fleet-engine claim (many concurrent games vs
independent services) behind the ``fleet`` CLI command and
``benchmarks/bench_fleet.py``, and :mod:`repro.experiments.advisor_loop`
measures the closed optimization loop (:mod:`repro.advisor`) behind the
``advise`` CLI command and ``benchmarks/bench_advisor.py``.
"""

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.report import format_result, format_summary
from repro.experiments.fig1_astronomy import Fig1Config, run_fig1_astronomy
from repro.experiments.fig2_collaboration import (
    Fig2AdditiveConfig,
    Fig2SubstitutiveConfig,
    run_fig2_additive,
    run_fig2_substitutive,
)
from repro.experiments.fig3_overlap import (
    Fig3aConfig,
    Fig3bConfig,
    run_fig3a_slot_count,
    run_fig3b_duration,
)
from repro.experiments.fig4_skew import Fig4Config, run_fig4_skew
from repro.experiments.fig5_selectivity import (
    Fig5Config,
    run_fig5_selectivity,
)
from repro.experiments.fleet_scale import (
    FleetScaleConfig,
    measure_fleet_mp_point,
    measure_fleet_point,
    measure_gateway_point,
    run_fleet_scale,
)
from repro.experiments.advisor_loop import (
    AdvisorLoopConfig,
    AdvisorLoopResult,
    run_advisor_loop,
)

__all__ = [
    "ExperimentResult",
    "Series",
    "format_result",
    "format_summary",
    "Fig1Config",
    "run_fig1_astronomy",
    "Fig2AdditiveConfig",
    "Fig2SubstitutiveConfig",
    "run_fig2_additive",
    "run_fig2_substitutive",
    "Fig3aConfig",
    "Fig3bConfig",
    "run_fig3a_slot_count",
    "run_fig3b_duration",
    "Fig4Config",
    "run_fig4_skew",
    "Fig5Config",
    "run_fig5_selectivity",
    "FleetScaleConfig",
    "measure_fleet_mp_point",
    "measure_fleet_point",
    "measure_gateway_point",
    "run_fleet_scale",
    "AdvisorLoopConfig",
    "AdvisorLoopResult",
    "run_advisor_loop",
]
