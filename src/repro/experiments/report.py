"""Plain-text rendering of experiment results.

The benchmark harnesses print each figure's series as an aligned table —
the textual equivalent of the paper's plots — so a run's output can be
compared against EXPERIMENTS.md at a glance.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult

__all__ = ["format_result", "format_summary"]


def format_result(
    result: ExperimentResult,
    max_rows: int | None = None,
    width: int = 16,
) -> str:
    """Render every series of ``result`` as one aligned text table.

    ``max_rows`` thins long cost grids by keeping evenly spaced rows (first
    and last always included).
    """
    xs = result.series[0].x
    indices = list(range(len(xs)))
    if max_rows is not None and len(indices) > max_rows:
        stride = (len(indices) - 1) / (max_rows - 1)
        indices = sorted({int(round(k * stride)) for k in range(max_rows)})

    header_cells = [result.x_label[:width].ljust(width)]
    header_cells += [s.name[:width].ljust(width) for s in result.series]
    lines = [
        f"== {result.experiment} ==",
        f"   y: {result.y_label}",
        " | ".join(header_cells),
        "-+-".join("-" * width for _ in header_cells),
    ]
    for idx in indices:
        cells = [f"{xs[idx]:.4g}".ljust(width)]
        for s in result.series:
            if s.x != xs and idx >= len(s.y):
                cells.append("".ljust(width))
                continue
            cells.append(f"{s.y[idx]:+.4f}".ljust(width))
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def format_summary(result: ExperimentResult) -> str:
    """One line per series: min / mean / max over the grid."""
    lines = [f"== {result.experiment} summary =="]
    for s in result.series:
        ys = s.y
        lines.append(
            f"  {s.name:<24} min {min(ys):+.4f}  mean {sum(ys)/len(ys):+.4f}  "
            f"max {max(ys):+.4f}"
        )
    return "\n".join(lines)
