"""Figure 5 — selectivity of substitutes.

Selectivity is the ratio of a user's substitute-set size to the pool size:
panel (a) draws 3 of 4 optimizations (selectivity 0.75), panel (b) 3 of 12
(0.25). More selective users (fewer shared substitutes) lower both
mechanisms' utility, but SubstOn keeps a utility of 1.0 at mean costs
roughly 2.5x / 12.5x those where Regret last manages 1.0 (Section 7.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baseline.regret import run_regret_substitutable
from repro.core.accounting import subston_total_utility
from repro.core.subston import run_subston
from repro.experiments.common import (
    ExperimentResult,
    Series,
    as_tuple,
    average_trials,
    cost_grid,
)
from repro.utils.rng import RngLike
from repro.workloads.scenarios import substitutable_game

__all__ = ["Fig5Config", "run_fig5_selectivity"]

#: The paper's Figure 5 x-axis: 0.03 to 2.73.
FIG5_GRID = cost_grid(0.03, 2.73, 0.06)


@dataclass(frozen=True)
class Fig5Config:
    """Defaults reproduce panel (a): 3 substitutes out of 4."""

    users: int = 6
    slots: int = 12
    optimizations: int = 4
    choose: int = 3
    mean_costs: tuple = field(default=FIG5_GRID)
    trials: int = 200
    seed: int = 2012

    @classmethod
    def low_selectivity(cls, **overrides) -> "Fig5Config":
        """Panel (a): 3 of 4 optimizations."""
        return cls(**overrides)

    @classmethod
    def high_selectivity(cls, **overrides) -> "Fig5Config":
        """Panel (b): 3 of 12 optimizations."""
        defaults = dict(optimizations=12)
        defaults.update(overrides)
        return cls(**defaults)


def run_fig5_selectivity(
    config: Fig5Config = Fig5Config(),
    rng: RngLike = None,
) -> ExperimentResult:
    """Reproduce Figure 5(a)/(b)."""

    def trial(generator: np.random.Generator) -> np.ndarray:
        bids = substitutable_game(
            generator,
            config.users,
            config.slots,
            config.optimizations,
            config.choose,
        )
        unit_costs = generator.uniform(0.0, 1.0, size=config.optimizations)
        rows = []
        for mean_cost in config.mean_costs:
            costs = {
                j: max(2.0 * mean_cost * unit_costs[j], 1e-9)
                for j in range(config.optimizations)
            }
            subston = run_subston(costs, bids, horizon=config.slots)
            regret = run_regret_substitutable(costs, bids, horizon=config.slots)
            rows.append(
                (
                    subston_total_utility(subston, bids),
                    regret.total_utility,
                )
            )
        return np.asarray(rows)

    mean, std = average_trials(trial, config.trials, config.seed if rng is None else rng)
    x = as_tuple(config.mean_costs)
    selectivity = config.choose / config.optimizations
    return ExperimentResult(
        experiment=f"fig5-selectivity-{selectivity:.2f}",
        x_label="mean optimization cost",
        y_label="amount of money",
        series=(
            Series("SubstOn Utility", x, as_tuple(mean[:, 0]), as_tuple(std[:, 0])),
            Series("Regret Utility", x, as_tuple(mean[:, 1]), as_tuple(std[:, 1])),
        ),
    )
