"""Shared containers and trial plumbing for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import GameConfigError
from repro.utils.rng import RngLike, spawn_rngs

__all__ = ["Series", "ExperimentResult", "average_trials"]


@dataclass(frozen=True)
class Series:
    """One plotted curve: a name, x coordinates, and mean y values.

    ``std`` holds the across-trial standard deviation when the driver
    computed one (Figure 1 reports mean and deviation over bid
    combinations; the others report means).
    """

    name: str
    x: tuple
    y: tuple
    std: tuple | None = None

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise GameConfigError(
                f"series {self.name!r}: {len(self.x)} x values vs {len(self.y)} y values"
            )
        if self.std is not None and len(self.std) != len(self.x):
            raise GameConfigError(
                f"series {self.name!r}: std length {len(self.std)} != {len(self.x)}"
            )

    def at(self, x_value) -> float:
        """The y value at an exact x coordinate."""
        return self.y[self.x.index(x_value)]

    def mean(self) -> float:
        """Mean of the y values (used by the gap experiments)."""
        return float(np.mean(self.y))


@dataclass(frozen=True)
class ExperimentResult:
    """All the curves of one figure, plus axis labels for reporting."""

    experiment: str
    x_label: str
    y_label: str
    series: tuple

    def get(self, name: str) -> Series:
        """Look one curve up by name."""
        for s in self.series:
            if s.name == name:
                return s
        raise GameConfigError(
            f"no series named {name!r}; have {[s.name for s in self.series]}"
        )

    @property
    def names(self) -> list[str]:
        """Names of the curves, in plot order."""
        return [s.name for s in self.series]


def average_trials(
    trial: Callable[[np.random.Generator], np.ndarray],
    trials: int,
    rng: RngLike,
) -> tuple[np.ndarray, np.ndarray]:
    """Run ``trial`` with independent child RNGs; return mean and std.

    ``trial`` must return an array of fixed shape; results are averaged
    elementwise across trials. Child generators are spawned up front so the
    outcome does not depend on evaluation order.
    """
    if trials < 1:
        raise GameConfigError(f"need at least one trial, got {trials}")
    rngs = spawn_rngs(rng, trials)
    stack = np.stack([np.asarray(trial(r), dtype=float) for r in rngs])
    return stack.mean(axis=0), stack.std(axis=0)


def cost_grid(start: float, stop: float, step: float) -> tuple:
    """An inclusive arithmetic cost grid, rounded to avoid fp drift."""
    if step <= 0:
        raise GameConfigError(f"step must be positive, got {step}")
    count = int(round((stop - start) / step)) + 1
    return tuple(round(start + k * step, 10) for k in range(count))


def as_tuple(values: Sequence[float]) -> tuple:
    """Coerce a sequence into a plain tuple of floats."""
    return tuple(float(v) for v in values)
