"""Figure 3 — effect of usage overlap on the AddOn-vs-Regret utility gap.

Panel (a): squeeze 6 single-slot users into fewer and fewer slots
(z = 12..1) — more overlap means AddOn finds a slot with enough combined
residual value more often, so its advantage over Regret grows as z falls.
Panel (b): keep 12 entry slots but spread each user's value evenly over a
service interval of duration d = 1..12 — longer intervals also concentrate
residual value ahead of any given slot, growing the gap with d.

Both panels report the *mean over the cost grid* of
(AddOn utility - Regret utility), matching the paper's "0.77 to 2.75 more
utility, on average" framing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baseline.regret import run_regret_additive
from repro.core.accounting import addon_total_utility
from repro.core.addon import run_addon
from repro.experiments.common import (
    ExperimentResult,
    Series,
    as_tuple,
    average_trials,
)
from repro.experiments.fig2_collaboration import SMALL_GRID
from repro.utils.rng import RngLike
from repro.workloads.scenarios import (
    additive_duration_game,
    additive_single_slot_game,
)

__all__ = [
    "Fig3aConfig",
    "Fig3bConfig",
    "run_fig3a_slot_count",
    "run_fig3b_duration",
]


@dataclass(frozen=True)
class Fig3aConfig:
    """Single-slot collaboration with a shrinking slot pool."""

    users: int = 6
    slot_counts: tuple = tuple(range(1, 13))
    costs: tuple = field(default=SMALL_GRID)
    trials: int = 300
    seed: int = 2012


def run_fig3a_slot_count(
    config: Fig3aConfig = Fig3aConfig(),
    rng: RngLike = None,
) -> ExperimentResult:
    """Reproduce Figure 3(a): mean utility gap vs number of slots."""

    def trial(generator: np.random.Generator) -> np.ndarray:
        gaps = []
        for slots in config.slot_counts:
            bids = additive_single_slot_game(generator, config.users, slots)
            gap_sum = 0.0
            for cost in config.costs:
                addon = run_addon(cost, bids, horizon=slots)
                regret = run_regret_additive(cost, bids, horizon=slots)
                gap_sum += addon_total_utility(addon, bids) - regret.total_utility
            gaps.append(gap_sum / len(config.costs))
        return np.asarray(gaps)

    mean, std = average_trials(trial, config.trials, config.seed if rng is None else rng)
    x = tuple(config.slot_counts)
    return ExperimentResult(
        experiment="fig3a-slot-count",
        x_label="number of time slots available",
        y_label="AddOn utility minus Regret utility",
        series=(Series("AddOn minus Regret", x, as_tuple(mean), as_tuple(std)),),
    )


@dataclass(frozen=True)
class Fig3bConfig:
    """Fixed 12 entry slots, growing service duration."""

    users: int = 6
    slots: int = 12
    durations: tuple = tuple(range(1, 13))
    costs: tuple = field(default=SMALL_GRID)
    trials: int = 300
    seed: int = 2012


def run_fig3b_duration(
    config: Fig3bConfig = Fig3bConfig(),
    rng: RngLike = None,
) -> ExperimentResult:
    """Reproduce Figure 3(b): mean utility gap vs bid duration."""

    def trial(generator: np.random.Generator) -> np.ndarray:
        gaps = []
        for duration in config.durations:
            bids = additive_duration_game(
                generator, config.users, config.slots, duration
            )
            horizon = config.slots + duration - 1
            gap_sum = 0.0
            for cost in config.costs:
                addon = run_addon(cost, bids, horizon=horizon)
                regret = run_regret_additive(cost, bids, horizon=horizon)
                gap_sum += addon_total_utility(addon, bids) - regret.total_utility
            gaps.append(gap_sum / len(config.costs))
        return np.asarray(gaps)

    mean, std = average_trials(trial, config.trials, config.seed if rng is None else rng)
    x = tuple(config.durations)
    return ExperimentResult(
        experiment="fig3b-duration",
        x_label="duration of slots serviced",
        y_label="AddOn utility minus Regret utility",
        series=(Series("AddOn minus Regret", x, as_tuple(mean), as_tuple(std)),),
    )
