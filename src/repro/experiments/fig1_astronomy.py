"""Figure 1 — the astronomy use-case on an EC2-style subscription.

Six astronomers share 27 materialized-view optimizations over a year split
into 4 purchase quarters of 3 month-slots each. Each user picks a quarter
interval (one of the 10 possible ``(s, e)`` pairs — the paper enumerates
all ``10^6`` group combinations; we sample them, or enumerate exhaustively
when ``samples=None``), executes her workload ``x`` times in total (the
x-axis, 1 to 90), and splits the resulting value equally across her slots
(the paper's Section 7.4 convention).

Optimization values come either from the :mod:`repro.astro` engine
(``values="engine"``: measured query speedups priced at $0.25/hour) or from
the paper's published numbers (``values="paper"``: 44/18/8/39/23/9 minutes
saved by the final-snapshot view -> 18/7/3/16/9/4 cents, 2.5 minutes -> 1
cent for every other view, $2.31 per view cost).

Expected shape (Section 7.2): both approaches save real money; AddOn yields
28-47% of the baseline cost as utility and beats Regret by 18-118%, and
the cloud never loses money under AddOn while Regret's balance can go
substantially negative.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.astro.usecase import (
    PAPER_FINAL_VIEW_SAVINGS_MIN,
    PAPER_MEAN_VIEW_COST,
    PAPER_OTHER_VIEW_SAVINGS_MIN,
    PAPER_RUNTIMES_MIN,
    AstronomyUseCase,
    UseCaseConfig,
    build_use_case,
)
from repro.baseline.regret import run_regret_additive_many
from repro.bids.additive import AdditiveBid
from repro.core.accounting import addon_total_utility
from repro.core.addon import run_addon
from repro.errors import GameConfigError
from repro.experiments.common import ExperimentResult, Series, as_tuple
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["Fig1Config", "run_fig1_astronomy", "paper_value_table"]

#: Workload strides of the six astronomers, used by `values="paper"`.
PAPER_STRIDES = (1, 2, 4, 1, 2, 4)
PAPER_HOURLY_RATE = 0.25


@dataclass(frozen=True)
class Fig1Config:
    """Figure 1 setup; defaults match the paper.

    ``engine_mode`` and ``universe_scale`` only matter for
    ``values="engine"``: the mode selects the relational engine's physical
    execution path and the scale multiplies the simulated universe's
    particle count (the columnar path is what makes scales of 10+ —
    tens of thousands of particles across 27 snapshots — tractable).
    """

    executions: tuple = (1, 10, 20, 30, 40, 50, 60, 70, 80, 90)
    quarters: int = 4
    slots_per_quarter: int = 3
    samples: int | None = 150
    seed: int = 2012
    values: str = "engine"
    engine_mode: str = "auto"
    universe_scale: int = 1

    def __post_init__(self) -> None:
        if self.values not in ("engine", "paper"):
            raise GameConfigError(
                f"values must be 'engine' or 'paper', got {self.values!r}"
            )
        if self.quarters < 1:
            raise GameConfigError(f"quarters must be >= 1, got {self.quarters}")
        if self.slots_per_quarter < 1:
            raise GameConfigError(
                f"slots_per_quarter must be >= 1, got {self.slots_per_quarter}"
            )
        if self.universe_scale < 1:
            raise GameConfigError(
                f"universe_scale must be >= 1, got {self.universe_scale}"
            )


def paper_value_table(snapshots: int = 27) -> tuple[dict, dict, tuple]:
    """(per-view costs, per-(user, view) dollars/execution, baselines).

    Encodes the paper's published numbers for ``values="paper"``: view v27
    saves each user her published minutes; every other view her workload
    touches saves 2.5 minutes (about 1 cent).
    """
    view_ids = [f"v{k:02d}" for k in range(1, snapshots + 1)]
    costs = {v: PAPER_MEAN_VIEW_COST for v in view_ids}
    values: dict = {}
    for user, stride in enumerate(PAPER_STRIDES):
        touched = set(range(snapshots, 0, -stride))
        for k in range(1, snapshots + 1):
            if k not in touched:
                continue
            if k == snapshots:
                minutes = PAPER_FINAL_VIEW_SAVINGS_MIN[user]
            else:
                minutes = PAPER_OTHER_VIEW_SAVINGS_MIN
            values[(user, f"v{k:02d}")] = minutes / 60.0 * PAPER_HOURLY_RATE
    baselines = tuple(
        r / 60.0 * PAPER_HOURLY_RATE for r in PAPER_RUNTIMES_MIN
    )
    return costs, values, baselines


def _value_table(
    config: Fig1Config, use_case: AstronomyUseCase | None
) -> tuple[dict, dict, tuple, int]:
    """Resolve (costs, values, baselines, users) for the configured mode."""
    if config.values == "paper":
        costs, values, baselines = paper_value_table()
        return costs, values, baselines, len(PAPER_STRIDES)
    if use_case is None:
        use_case = build_use_case(
            UseCaseConfig.scaled(config.universe_scale, config.engine_mode)
        )
    costs = dict(use_case.view_costs)
    users = len(use_case.workloads)
    values = {
        (user, view): use_case.value_dollars(user, view)
        for user in range(users)
        for view in use_case.view_names
        if use_case.value_dollars(user, view) > 0
    }
    baselines = tuple(use_case.baseline_dollars(u) for u in range(users))
    return costs, values, baselines, users


def _intervals(quarters: int) -> list[tuple[int, int]]:
    """All (start, end) quarter intervals — 10 of them for 4 quarters."""
    return [
        (s, e) for s in range(1, quarters + 1) for e in range(s, quarters + 1)
    ]


def run_fig1_astronomy(
    config: Fig1Config = Fig1Config(),
    use_case: AstronomyUseCase | None = None,
    rng: RngLike = None,
) -> ExperimentResult:
    """Reproduce Figure 1.

    Pass a prebuilt ``use_case`` to amortize the engine build across calls
    (the benchmarks do); it is ignored in ``values="paper"`` mode.
    """
    costs, values, baselines, users = _value_table(config, use_case)
    view_ids = list(costs)
    intervals = _intervals(config.quarters)
    spq = config.slots_per_quarter
    horizon = config.quarters * spq

    if config.samples is None:
        combos: Sequence = list(itertools.product(range(len(intervals)), repeat=users))
    else:
        generator = ensure_rng(config.seed if rng is None else rng)
        combos = generator.integers(
            0, len(intervals), size=(config.samples, users)
        )

    rows = np.zeros((len(combos), len(config.executions), 4))
    for c_idx, combo in enumerate(combos):
        user_intervals = [intervals[int(k)] for k in combo]
        for x_idx, executions in enumerate(config.executions):
            # x is the *total* number of workload executions per user; each
            # user spreads the resulting value equally over her slots (the
            # paper's Section 7.4 convention), and the baseline is the cost
            # of those executions without any optimization.
            baseline_cost = sum(
                executions * baselines[u] for u in range(len(user_intervals))
            )
            addon_utility = 0.0
            bids_by_view: dict = {}
            for view in view_ids:
                bids = {}
                for user, (s, e) in enumerate(user_intervals):
                    total_value = executions * values.get((user, view), 0.0)
                    if total_value <= 0:
                        continue
                    # Service is bought in whole quarters; the bid's slot
                    # granularity is finer (months by default), with the
                    # value split equally across the covered slots.
                    first_slot = (s - 1) * spq + 1
                    width = (e - s + 1) * spq
                    bids[user] = AdditiveBid.over(
                        first_slot, [total_value / width] * width
                    )
                if bids:
                    bids_by_view[view] = bids
                    outcome = run_addon(costs[view], bids, horizon=horizon)
                    addon_utility += addon_total_utility(outcome, bids)
            regret = run_regret_additive_many(
                costs, bids_by_view, horizon=horizon
            )
            rows[c_idx, x_idx] = (
                baseline_cost,
                addon_utility,
                regret.total_utility,
                regret.cloud_balance,
            )

    mean = rows.mean(axis=0)
    std = rows.std(axis=0)
    x = tuple(config.executions)
    names = ("Baseline Cost", "AddOn Utility", "Regret Utility", "Regret Balance")
    series = tuple(
        Series(name, x, as_tuple(mean[:, k]), as_tuple(std[:, k]))
        for k, name in enumerate(names)
    )
    return ExperimentResult(
        experiment=f"fig1-astronomy-{config.values}-values",
        x_label="workload executions per user per quarter",
        y_label="amount in $",
        series=series,
    )
