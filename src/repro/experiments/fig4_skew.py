"""Figure 4 — effect of arrival-time skew on AddOn and Regret.

Six users bid single slots for one optimization; arrivals are uniform,
early (Exp mean 1.28), or late (12 - Exp mean 1.2). The paper plots, per
cost, the ratio of each setting's utility to Early-AddOn's utility.
Expected shape: AddOn *improves* with skew (clustered arrivals make some
slot affordable) while Regret worsens (skew overshoots the regret
threshold), so Early-AddOn dominates and Regret's curves sink below the
uniform ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baseline.regret import run_regret_additive
from repro.core.accounting import addon_total_utility
from repro.core.addon import run_addon
from repro.experiments.common import (
    ExperimentResult,
    Series,
    as_tuple,
    average_trials,
    cost_grid,
)
from repro.utils.rng import RngLike
from repro.workloads.scenarios import additive_single_slot_game

__all__ = ["Fig4Config", "run_fig4_skew"]

#: The paper's Figure 4 x-axis: 0.03 to 1.71.
SKEW_GRID = cost_grid(0.03, 1.71, 0.06)

#: Arrival settings in plot order.
SETTINGS = ("uniform", "early", "late")


@dataclass(frozen=True)
class Fig4Config:
    """Six users, one optimization, three arrival skews."""

    users: int = 6
    slots: int = 12
    costs: tuple = field(default=SKEW_GRID)
    trials: int = 400
    seed: int = 2012
    normalize: bool = True


def run_fig4_skew(
    config: Fig4Config = Fig4Config(),
    rng: RngLike = None,
) -> ExperimentResult:
    """Reproduce Figure 4.

    With ``normalize`` (default, as in the paper) every curve is divided
    pointwise by the mean Early-AddOn utility; set it to False for raw
    utilities.
    """

    def trial(generator: np.random.Generator) -> np.ndarray:
        # rows: cost x (addon, regret) x setting
        rows = np.zeros((len(config.costs), 2, len(SETTINGS)))
        for s_idx, setting in enumerate(SETTINGS):
            bids = additive_single_slot_game(
                generator, config.users, config.slots, arrival=setting
            )
            for c_idx, cost in enumerate(config.costs):
                addon = run_addon(cost, bids, horizon=config.slots)
                regret = run_regret_additive(cost, bids, horizon=config.slots)
                rows[c_idx, 0, s_idx] = addon_total_utility(addon, bids)
                rows[c_idx, 1, s_idx] = regret.total_utility
        return rows

    mean, std = average_trials(trial, config.trials, config.seed if rng is None else rng)

    early_addon = mean[:, 0, SETTINGS.index("early")]
    if config.normalize:
        # Guard the tail where even Early-AddOn is ~0 (cost too high for
        # anyone): ratios there are reported as 0 rather than noise blowups.
        denominator = np.where(np.abs(early_addon) > 1e-9, early_addon, np.inf)
    else:
        denominator = np.ones_like(early_addon)

    x = as_tuple(config.costs)
    series = []
    for s_idx, setting in enumerate(SETTINGS):
        label = setting.capitalize()
        series.append(
            Series(f"{label}-AddOn", x, as_tuple(mean[:, 0, s_idx] / denominator))
        )
        series.append(
            Series(f"{label}-Regret", x, as_tuple(mean[:, 1, s_idx] / denominator))
        )
    return ExperimentResult(
        experiment="fig4-arrival-skew",
        x_label="cost of optimization",
        y_label="ratio of utility" if config.normalize else "utility",
        series=tuple(series),
    )
