"""Figure 2 — total utility vs optimization cost by collaboration size.

Panels (a)/(b): additive, one optimization, 6 vs 24 users, each bidding a
U[0,1) value in one uniform slot of 12. Panels (c)/(d): substitutive, 12
optimizations with costs ~ U[0, 2c], each user drawing 3 substitutes.
Curves: AddOn (resp. SubstOn) utility, Regret utility, Regret balance.

Expected shapes (Section 7.3): the mechanism never goes negative in either
utility or balance; Regret's balance dips negative as costs grow, followed
by its utility; in large collaborations there is a band of costs where
Regret's utility briefly exceeds AddOn's before collapsing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baseline.regret import run_regret_additive, run_regret_substitutable
from repro.core.accounting import addon_total_utility, subston_total_utility
from repro.core.addon import run_addon
from repro.core.subston import run_subston
from repro.experiments.common import (
    ExperimentResult,
    Series,
    as_tuple,
    average_trials,
    cost_grid,
)
from repro.utils.rng import RngLike
from repro.workloads.scenarios import additive_single_slot_game, substitutable_game

__all__ = [
    "Fig2AdditiveConfig",
    "Fig2SubstitutiveConfig",
    "run_fig2_additive",
    "run_fig2_substitutive",
]

#: Paper cost grids: 0.03..2.91 for 6 users, 0.12..11.64 for 24 users.
SMALL_GRID = cost_grid(0.03, 2.91, 0.06)
LARGE_GRID = cost_grid(0.12, 11.64, 0.24)


@dataclass(frozen=True)
class Fig2AdditiveConfig:
    """Setup for panels (a)/(b); defaults reproduce panel (a)."""

    users: int = 6
    slots: int = 12
    costs: tuple = field(default=SMALL_GRID)
    trials: int = 400
    seed: int = 2012

    @classmethod
    def small(cls, **overrides) -> "Fig2AdditiveConfig":
        """Panel (a): 6 users on the small cost grid."""
        return cls(**overrides)

    @classmethod
    def large(cls, **overrides) -> "Fig2AdditiveConfig":
        """Panel (b): 24 users on a 4x cost grid."""
        defaults = dict(users=24, costs=LARGE_GRID)
        defaults.update(overrides)
        return cls(**defaults)


def run_fig2_additive(
    config: Fig2AdditiveConfig = Fig2AdditiveConfig(),
    rng: RngLike = None,
) -> ExperimentResult:
    """Reproduce Figure 2(a)/(b)."""

    def trial(generator: np.random.Generator) -> np.ndarray:
        bids = additive_single_slot_game(generator, config.users, config.slots)
        rows = []
        for cost in config.costs:
            addon = run_addon(cost, bids, horizon=config.slots)
            regret = run_regret_additive(cost, bids, horizon=config.slots)
            rows.append(
                (
                    addon_total_utility(addon, bids),
                    regret.total_utility,
                    regret.cloud_balance,
                )
            )
        return np.asarray(rows)

    mean, std = average_trials(trial, config.trials, config.seed if rng is None else rng)
    x = as_tuple(config.costs)
    return ExperimentResult(
        experiment=f"fig2-additive-{config.users}users",
        x_label="optimization cost",
        y_label="amount of money",
        series=(
            Series("AddOn Utility", x, as_tuple(mean[:, 0]), as_tuple(std[:, 0])),
            Series("Regret Utility", x, as_tuple(mean[:, 1]), as_tuple(std[:, 1])),
            Series("Regret Balance", x, as_tuple(mean[:, 2]), as_tuple(std[:, 2])),
        ),
    )


@dataclass(frozen=True)
class Fig2SubstitutiveConfig:
    """Setup for panels (c)/(d); defaults reproduce panel (c)."""

    users: int = 6
    slots: int = 12
    optimizations: int = 12
    choose: int = 3
    mean_costs: tuple = field(default=SMALL_GRID)
    trials: int = 200
    seed: int = 2012

    @classmethod
    def small(cls, **overrides) -> "Fig2SubstitutiveConfig":
        """Panel (c): 6 users."""
        return cls(**overrides)

    @classmethod
    def large(cls, **overrides) -> "Fig2SubstitutiveConfig":
        """Panel (d): 24 users on a 4x grid of mean costs."""
        defaults = dict(users=24, mean_costs=LARGE_GRID)
        defaults.update(overrides)
        return cls(**defaults)


def run_fig2_substitutive(
    config: Fig2SubstitutiveConfig = Fig2SubstitutiveConfig(),
    rng: RngLike = None,
) -> ExperimentResult:
    """Reproduce Figure 2(c)/(d).

    Within a trial the per-optimization cost *shape* is drawn once (one
    U[0,1) draw per optimization) and rescaled by ``2c`` along the x-axis,
    mirroring the paper's "vary the cost keeping user values constant".
    """

    def trial(generator: np.random.Generator) -> np.ndarray:
        bids = substitutable_game(
            generator,
            config.users,
            config.slots,
            config.optimizations,
            config.choose,
        )
        unit_costs = generator.uniform(0.0, 1.0, size=config.optimizations)
        rows = []
        for mean_cost in config.mean_costs:
            costs = {
                j: max(2.0 * mean_cost * unit_costs[j], 1e-9)
                for j in range(config.optimizations)
            }
            subston = run_subston(costs, bids, horizon=config.slots)
            regret = run_regret_substitutable(costs, bids, horizon=config.slots)
            rows.append(
                (
                    subston_total_utility(subston, bids),
                    regret.total_utility,
                    regret.cloud_balance,
                )
            )
        return np.asarray(rows)

    mean, std = average_trials(trial, config.trials, config.seed if rng is None else rng)
    x = as_tuple(config.mean_costs)
    return ExperimentResult(
        experiment=f"fig2-substitutive-{config.users}users",
        x_label="mean optimization cost",
        y_label="amount of money",
        series=(
            Series("SubstOn Utility", x, as_tuple(mean[:, 0]), as_tuple(std[:, 0])),
            Series("Regret Utility", x, as_tuple(mean[:, 1]), as_tuple(std[:, 1])),
            Series("Regret Balance", x, as_tuple(mean[:, 2]), as_tuple(std[:, 2])),
        ),
    )
