"""ADVISOR — the closed optimization loop on the astronomy workload.

Not a paper figure: this driver measures the codebase's own claim that
the :mod:`repro.advisor` loop — mine the logged workload, enumerate
candidate views *and* indexes, price them through the fleet games, adopt
the funded designs — cuts the astronomers' metered workload cost without
changing a single query result. It powers the ``advise`` CLI command and
``benchmarks/bench_advisor.py`` (which enforces the >= 3x floor at 40k
particles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.advisor import AdvisorOutcome
from repro.astro.simulator import UniverseConfig, UniverseSimulator
from repro.astro.workload import AstronomerWorkload
from repro.db.catalog import Catalog
from repro.errors import GameConfigError
from repro.experiments.common import ExperimentResult, Series
from repro.gateway.envelopes import AdviseRequest, ErrorReply
from repro.gateway.service import PricingService, TenantSession

__all__ = ["AdvisorLoopConfig", "AdvisorLoopResult", "run_advisor_loop"]


@dataclass(frozen=True)
class AdvisorLoopConfig:
    """Knobs of the advisor-loop measurement."""

    particles: int = 4000
    halos: int = 20
    snapshots: int = 4
    min_halo_members: int = 10
    halos_per_group: int = 3
    seed: int = 2012
    engine_mode: str = "auto"
    horizon: int = 12
    dollars_per_byte: float = 1e-6
    shards: int = 2

    def __post_init__(self) -> None:
        if self.snapshots < 2:
            raise GameConfigError(
                f"need >= 2 snapshots for merger trees, got {self.snapshots}"
            )


def _loop_workloads(final_snapshot, halos_per_group: int, snapshots: int):
    """Two interleaved halo groups x every valid stride (1, 2, 4).

    Like the paper's six astronomers, but strides touching fewer than two
    snapshots are dropped so the loop also runs on short simulations.
    """
    labels, counts = np.unique(
        final_snapshot.halo[final_snapshot.halo >= 0], return_counts=True
    )
    if len(labels) < 2 * halos_per_group:
        raise GameConfigError(
            f"final snapshot has only {len(labels)} halos; need "
            f"{2 * halos_per_group} — increase particles or halos"
        )
    by_size = labels[np.argsort(-counts, kind="stable")]
    groups = (
        tuple(int(h) for h in by_size[0 : 2 * halos_per_group : 2]),
        tuple(int(h) for h in by_size[1 : 2 * halos_per_group : 2]),
    )
    strides = [s for s in (1, 2, 4) if len(range(0, snapshots, s)) >= 2]
    return tuple(
        AstronomerWorkload(f"astro-g{g + 1}-s{stride}", halos, stride)
        for g, halos in enumerate(groups)
        for stride in strides
    )


@dataclass(frozen=True)
class AdvisorLoopResult:
    """Outcome of one closed loop over the astronomy workload."""

    result: ExperimentResult
    outcome: AdvisorOutcome
    baseline_units: float
    advised_units: float

    @property
    def cost_ratio(self) -> float:
        """Metered-cost reduction: baseline over advised."""
        return self.baseline_units / self.advised_units


def _workload_units(
    session: TenantSession,
    workload: AstronomerWorkload,
    table_names: list[str],
    record: bool,
) -> float:
    """One astronomer's full workload through ``RunQuery`` envelopes.

    The envelope sequence issues exactly the engine calls
    :meth:`AstronomerWorkload.run` issues — one ``contributors`` and one
    ``chain`` query per studied halo — so the logged templates and the
    metered units are those of the direct engine path.
    """
    tables = workload.snapshot_tables(table_names)
    if len(tables) < 2:
        raise GameConfigError(
            f"workload {workload.name!r} needs at least two snapshots, "
            f"got {len(tables)}"
        )
    units = 0.0
    for halo in workload.final_halos:
        for query in ("contributors", "chain"):
            reply = session.run_query(
                query, tables=tuple(tables), halo=halo, record=record
            )
            if isinstance(reply, ErrorReply):
                raise GameConfigError(
                    f"workload query failed: [{reply.code}] {reply.message}"
                )
            units += reply.units
    return units


def run_advisor_loop(
    config: AdvisorLoopConfig = AdvisorLoopConfig(),
) -> AdvisorLoopResult:
    """Run the full loop once; see the module docstring.

    The whole loop goes through the gateway facade: every query is a
    ``RunQuery`` envelope dispatched under the astronomer's tenant
    session, and the advising round is one ``AdviseRequest``. The same
    service executes the same workloads before and after that round; the
    only thing that changes in between is the catalog's physical design
    (plus the ANALYZE statistics the round registers), so the per-tenant
    unit deltas are exactly what adoption bought.
    """
    universe = UniverseConfig(
        particles=config.particles,
        halos=config.halos,
        snapshots=config.snapshots,
        min_halo_members=config.min_halo_members,
    )
    snapshots = UniverseSimulator(universe, rng=config.seed).run()
    catalog = Catalog()
    table_names = []
    for snapshot in snapshots:
        table_names.append(catalog.create_table(snapshot.to_table()).name)
    workloads = _loop_workloads(
        snapshots[-1], config.halos_per_group, config.snapshots
    )

    service = PricingService(
        db_catalog=catalog, engine_mode=config.engine_mode
    )
    sessions = {w.name: service.session(w.name) for w in workloads}
    baseline = [
        _workload_units(sessions[w.name], w, table_names, record=True)
        for w in workloads
    ]

    reply = service.dispatch(
        AdviseRequest(
            horizon=config.horizon,
            dollars_per_byte=config.dollars_per_byte,
            shards=config.shards,
        )
    )
    if isinstance(reply, ErrorReply):
        raise GameConfigError(
            f"advising round failed: [{reply.code}] {reply.message}"
        )
    outcome = service.last_advice

    # The measurement re-run is not new workload signal: record=False.
    advised = [
        _workload_units(sessions[w.name], w, table_names, record=False)
        for w in workloads
    ]

    xs = tuple(range(len(workloads)))
    result = ExperimentResult(
        experiment="advisor_loop",
        x_label="astronomer (workload index)",
        y_label="metered workload cost [units]",
        series=(
            Series("baseline [units]", xs, tuple(baseline)),
            Series("advised [units]", xs, tuple(advised)),
            Series(
                "ratio [x]",
                xs,
                tuple(b / a for b, a in zip(baseline, advised)),
            ),
        ),
    )
    return AdvisorLoopResult(
        result=result,
        outcome=outcome,
        baseline_units=float(sum(baseline)),
        advised_units=float(sum(advised)),
    )
