"""The cloud service loop: bids in, grants and invoices out.

:class:`CloudService` runs one amortization period ``T`` of ``horizon``
slots in either *additive* mode (one independent AddOn game per catalog
optimization) or *substitutable* mode (one SubstOn game across the
catalog). Users place bids for future slots, may revise them upward, are
granted service as soon as the mechanism admits them, and are invoiced
their final cost-share at their departure slot. Every step is recorded in
the event log and the billing ledger.

Additive mode is a thin wrapper over the fleet scheduler
(:class:`repro.fleet.engine.FleetEngine`, sized to this one catalog).
The ``gateway`` property fronts the same engine with a
:class:`repro.gateway.PricingService` facade on demand; the object
methods below are retained for handle-based revision (envelopes carry
no :class:`~repro.bids.revision.RevisableBid` handles) and drive the
engine directly — new code should prefer the gateway surface. Bids
are residual-scheduled at placement into per-slot buckets, and a slot is
one batched pass over the bids whose residuals actually changed, stepped
through the incremental engine's gated
:meth:`~repro.core.online.AddOnState.apply_changes` path. Substitutable
mode drives :class:`~repro.core.online.SubstOnState` directly with
per-slot deltas (bids indexed by entry and departure slot), since the
cross-optimization phase loop cannot be split into independent games.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.bids.additive import AdditiveBid
from repro.bids.revision import RevisableBid
from repro.bids.substitutive import SubstitutableBid
from repro.cloudsim.catalog import OptimizationCatalog
from repro.cloudsim.events import (
    BidPlaced,
    EventLog,
    OptimizationImplemented,
    UserCharged,
    UserDeparted,
    UserGranted,
)
from repro.cloudsim.ledger import BillingLedger
from repro.core.online import SubstOnState
from repro.core.outcome import OptId, UserId
from repro.errors import GameConfigError, MechanismError
from repro.utils.rng import RngLike

__all__ = ["CloudService", "ServiceReport"]


@dataclass(frozen=True)
class ServiceReport:
    """End-of-period summary of one service run."""

    horizon: int
    mode: str
    ledger: BillingLedger
    events: EventLog
    implemented: Mapping[OptId, int]
    granted_at: Mapping[tuple, int]
    payments: Mapping[UserId, float]

    @property
    def cloud_balance(self) -> float:
        """Revenue minus build outlays; the mechanisms keep this >= 0."""
        return self.ledger.balance

    def grant_slot(self, user: UserId, optimization: OptId) -> int | None:
        """Slot ``user`` gained access to ``optimization`` (None if never)."""
        return self.granted_at.get((user, optimization))

    def realized_value(
        self, user: UserId, optimization: OptId, truth: AdditiveBid
    ) -> float:
        """True value realized from one grant, given the true schedule."""
        granted = self.granted_at.get((user, optimization))
        if granted is None:
            return 0.0
        return sum(truth.value_at(t) for t in range(granted, truth.end + 1))


class CloudService:
    """See the module docstring.

    Parameters
    ----------
    catalog:
        The purchasable optimizations.
    horizon:
        Number of slots in the period ``T``.
    mode:
        ``"additive"`` (independent AddOn per optimization) or
        ``"substitutable"`` (one SubstOn game).
    """

    def __init__(
        self,
        catalog: OptimizationCatalog,
        horizon: int,
        mode: str = "additive",
        rng: RngLike = None,
        randomize_ties: bool = False,
    ) -> None:
        if horizon < 1:
            raise GameConfigError(f"horizon must be >= 1, got {horizon}")
        if mode not in ("additive", "substitutable"):
            raise GameConfigError(f"unknown mode {mode!r}")
        if len(catalog) == 0:
            raise GameConfigError("catalog must offer at least one optimization")
        self.catalog = catalog
        self.horizon = horizon
        self.mode = mode

        if mode == "additive":
            # Imported here to keep repro.fleet -> repro.cloudsim the only
            # static dependency direction between the two packages. The
            # gateway facade over this engine is built lazily by the
            # ``gateway`` property so the many short-lived services the
            # experiment baselines construct never pay for it.
            from repro.fleet.engine import FleetEngine

            self._fleet = FleetEngine(catalog, horizon)
            self._gateway = None
            self.ledger = self._fleet.ledger
            self.events = self._fleet.events
        else:
            self._slot = 0  # last processed slot; slot 1 is processed first
            self.ledger = BillingLedger()
            self.events = EventLog()
            self._payments: dict[UserId, float] = {}
            self._granted_at: dict[tuple, int] = {}
            self._implemented: dict[OptId, int] = {}
            # Entry/departure indexes: which bids become active at slot t,
            # and which must be invoiced (and then zeroed) at slot t.
            self._starts_at: dict[int, list] = {}
            self._ends_at: dict[int, list] = {}
            self._active: set = set()
            self._subston = SubstOnState(
                catalog.costs, rng=rng, randomize_ties=randomize_ties
            )
            self._subst_bids: dict[UserId, SubstitutableBid] = {}

    @property
    def slot(self) -> int:
        """Last processed slot (slot 1 is processed first)."""
        return self._fleet.slot if self.mode == "additive" else self._slot

    @property
    def gateway(self):
        """The :class:`~repro.gateway.PricingService` fronting this period.

        Additive mode only: envelopes dispatched against it address the
        very same games the object API below manipulates. Built on first
        access (lazily, to keep plain additive services cheap) around the
        service's own fleet engine.
        """
        self._require_mode("additive")
        if self._gateway is None:
            # Lazy upward import: cloudsim sits below the gateway in the
            # layering; only this property reaches up.
            from repro.gateway.service import PricingService

            self._gateway = PricingService(fleet=self._fleet)
        return self._gateway

    # -------------------------------------------------------------- bids --

    def place_additive_bid(
        self, user: UserId, optimization: OptId, bid: AdditiveBid
    ) -> RevisableBid:
        """Declare a bid for one optimization; returns the revisable handle."""
        self._require_mode("additive")
        return self._fleet.place_bid(user, optimization, bid)

    def revise_additive_bid(
        self, user: UserId, optimization: OptId, new_values: Mapping[int, float]
    ) -> None:
        """Upward revision of a previously placed bid."""
        self._require_mode("additive")
        self._fleet.revise_bid(user, optimization, new_values)

    def place_substitutable_bid(self, user: UserId, bid: SubstitutableBid) -> None:
        """Declare a substitutable bid ``(s_i, e_i, b_i, J_i)``."""
        self._require_mode("substitutable")
        missing = bid.substitutes - set(self.catalog.costs)
        if missing:
            raise GameConfigError(
                f"unknown optimizations in substitute set: {sorted(map(str, missing))}"
            )
        if user in self._subst_bids:
            raise GameConfigError(f"user {user!r} already bid")
        if bid.start <= self.slot:
            raise GameConfigError(
                f"bid for slots from {bid.start} is retroactive at slot {self.slot}"
            )
        if bid.end > self.horizon:
            raise GameConfigError(
                f"bid ends at {bid.end}, beyond the horizon {self.horizon}"
            )
        self._subst_bids[user] = bid
        self._starts_at.setdefault(bid.start, []).append(user)
        self._ends_at.setdefault(bid.end, []).append(user)
        self.events.record(BidPlaced(self.slot + 1, user))

    # -------------------------------------------------------------- loop --

    def advance_slot(self) -> int:
        """Process the next slot; returns its number."""
        if self.mode == "additive":
            return self._fleet.advance_slot()
        if self._slot >= self.horizon:
            raise MechanismError(f"period is over after slot {self.horizon}")
        t = self._slot + 1
        self._advance_substitutable(t)
        self._slot = t
        return t

    def run_to_end(self) -> ServiceReport:
        """Process every remaining slot and return the report."""
        while self.slot < self.horizon:
            self.advance_slot()
        return self.report()

    def report(self) -> ServiceReport:
        """The current summary (complete once the period is over)."""
        if self.mode == "additive":
            fleet = self._fleet.report()
            return ServiceReport(
                horizon=self.horizon,
                mode=self.mode,
                ledger=fleet.ledger,
                events=fleet.events,
                implemented=dict(fleet.implemented),
                granted_at=dict(fleet.granted_at),
                payments=dict(fleet.payments),
            )
        return ServiceReport(
            horizon=self.horizon,
            mode=self.mode,
            ledger=self.ledger,
            events=self.events,
            implemented=dict(self._implemented),
            granted_at=dict(self._granted_at),
            payments=dict(self._payments),
        )

    # ---------------------------------------------------------- internals --

    def _require_mode(self, mode: str) -> None:
        if self.mode != mode:
            raise GameConfigError(
                f"service is in {self.mode!r} mode; operation needs {mode!r}"
            )

    def _advance_substitutable(self, t: int) -> None:
        self._active.update(self._starts_at.pop(t, ()))
        changed: dict[UserId, dict[OptId, float]] = {}
        settled = []
        for user in self._active:
            if user in self._subston.grants:
                settled.append(user)  # locked: the engine forces her bid
                continue
            bid = self._subst_bids[user]
            residual = bid.residual(t)
            changed[user] = {
                j: (residual if j in bid.substitutes else 0.0)
                for j in self.catalog
            }
        self._active.difference_update(settled)

        delta = self._subston.step_changed(t, changed)
        for user, optimization in delta.new_grants.items():
            self._granted_at[(user, optimization)] = t
            self.events.record(UserGranted(t, user, optimization))
        for optimization in delta.new_implementations:
            cost = self.catalog.get(optimization).cost
            self._implemented[optimization] = t
            self.ledger.build_outlay(t, optimization, cost)
            self.events.record(OptimizationImplemented(t, optimization, cost))

        for user in self._ends_at.pop(t, ()):
            amount = self._subston.exit_price(user)
            self._payments[user] = amount
            if amount > 0:
                self.ledger.invoice(t, user, amount)
                self.events.record(UserCharged(t, user, amount))
            self.events.record(UserDeparted(t, user))
            # An unserviced departure stops contributing residuals; a
            # granted one keeps her forced bid in the denominator forever.
            self._subston.retire(user)
            self._active.discard(user)
