"""The cloud service loop: bids in, grants and invoices out.

:class:`CloudService` runs one amortization period ``T`` of ``horizon``
slots in either *additive* mode (one independent AddOn game per catalog
optimization) or *substitutable* mode (one SubstOn game across the
catalog). Users place bids for future slots, may revise them upward, are
granted service as soon as the mechanism admits them, and are invoiced
their final cost-share at their departure slot. Every step is recorded in
the event log and the billing ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.bids.additive import AdditiveBid
from repro.bids.revision import RevisableBid
from repro.bids.substitutive import SubstitutableBid
from repro.cloudsim.catalog import OptimizationCatalog
from repro.cloudsim.events import (
    BidPlaced,
    BidRevised,
    EventLog,
    OptimizationImplemented,
    UserCharged,
    UserDeparted,
    UserGranted,
)
from repro.cloudsim.ledger import BillingLedger
from repro.core.online import AddOnState, SubstOnState
from repro.core.outcome import OptId, UserId
from repro.errors import GameConfigError, MechanismError
from repro.utils.rng import RngLike

__all__ = ["CloudService", "ServiceReport"]


@dataclass(frozen=True)
class ServiceReport:
    """End-of-period summary of one service run."""

    horizon: int
    mode: str
    ledger: BillingLedger
    events: EventLog
    implemented: Mapping[OptId, int]
    granted_at: Mapping[tuple, int]
    payments: Mapping[UserId, float]

    @property
    def cloud_balance(self) -> float:
        """Revenue minus build outlays; the mechanisms keep this >= 0."""
        return self.ledger.balance

    def grant_slot(self, user: UserId, optimization: OptId) -> int | None:
        """Slot ``user`` gained access to ``optimization`` (None if never)."""
        return self.granted_at.get((user, optimization))

    def realized_value(
        self, user: UserId, optimization: OptId, truth: AdditiveBid
    ) -> float:
        """True value realized from one grant, given the true schedule."""
        granted = self.granted_at.get((user, optimization))
        if granted is None:
            return 0.0
        return sum(truth.value_at(t) for t in range(granted, truth.end + 1))


class CloudService:
    """See the module docstring.

    Parameters
    ----------
    catalog:
        The purchasable optimizations.
    horizon:
        Number of slots in the period ``T``.
    mode:
        ``"additive"`` (independent AddOn per optimization) or
        ``"substitutable"`` (one SubstOn game).
    """

    def __init__(
        self,
        catalog: OptimizationCatalog,
        horizon: int,
        mode: str = "additive",
        rng: RngLike = None,
        randomize_ties: bool = False,
    ) -> None:
        if horizon < 1:
            raise GameConfigError(f"horizon must be >= 1, got {horizon}")
        if mode not in ("additive", "substitutable"):
            raise GameConfigError(f"unknown mode {mode!r}")
        if len(catalog) == 0:
            raise GameConfigError("catalog must offer at least one optimization")
        self.catalog = catalog
        self.horizon = horizon
        self.mode = mode
        self.slot = 0  # last processed slot; slot 1 is processed first
        self.ledger = BillingLedger()
        self.events = EventLog()
        self._payments: dict[UserId, float] = {}
        self._granted_at: dict[tuple, int] = {}
        self._implemented: dict[OptId, int] = {}

        if mode == "additive":
            self._addon: dict[OptId, AddOnState] = {
                j: AddOnState(catalog.get(j).cost) for j in catalog
            }
            self._additive_bids: dict[tuple, RevisableBid] = {}
        else:
            self._subston = SubstOnState(
                catalog.costs, rng=rng, randomize_ties=randomize_ties
            )
            self._subst_bids: dict[UserId, SubstitutableBid] = {}

    # -------------------------------------------------------------- bids --

    def place_additive_bid(
        self, user: UserId, optimization: OptId, bid: AdditiveBid
    ) -> RevisableBid:
        """Declare a bid for one optimization; returns the revisable handle."""
        self._require_mode("additive")
        if optimization not in self.catalog:
            raise GameConfigError(f"no optimization {optimization!r} in catalog")
        if (user, optimization) in self._additive_bids:
            raise GameConfigError(
                f"user {user!r} already bid on {optimization!r}; revise instead"
            )
        if bid.start <= self.slot:
            raise GameConfigError(
                f"bid for slots from {bid.start} is retroactive at slot {self.slot}"
            )
        if bid.end > self.horizon:
            raise GameConfigError(
                f"bid ends at {bid.end}, beyond the horizon {self.horizon}"
            )
        handle = RevisableBid(bid, declared_at=self.slot + 1)
        self._additive_bids[(user, optimization)] = handle
        self.events.record(
            BidPlaced(self.slot + 1, user, detail=f"opt={optimization!r}")
        )
        return handle

    def revise_additive_bid(
        self, user: UserId, optimization: OptId, new_values: Mapping[int, float]
    ) -> None:
        """Upward revision of a previously placed bid."""
        self._require_mode("additive")
        handle = self._additive_bids.get((user, optimization))
        if handle is None:
            raise GameConfigError(
                f"user {user!r} has no bid on {optimization!r} to revise"
            )
        if any(slot > self.horizon for slot in new_values):
            raise GameConfigError("revision extends beyond the horizon")
        handle.revise(self.slot + 1, new_values)
        self.events.record(
            BidRevised(self.slot + 1, user, detail=f"opt={optimization!r}")
        )

    def place_substitutable_bid(self, user: UserId, bid: SubstitutableBid) -> None:
        """Declare a substitutable bid ``(s_i, e_i, b_i, J_i)``."""
        self._require_mode("substitutable")
        missing = bid.substitutes - set(self.catalog.costs)
        if missing:
            raise GameConfigError(
                f"unknown optimizations in substitute set: {sorted(map(str, missing))}"
            )
        if user in self._subst_bids:
            raise GameConfigError(f"user {user!r} already bid")
        if bid.start <= self.slot:
            raise GameConfigError(
                f"bid for slots from {bid.start} is retroactive at slot {self.slot}"
            )
        if bid.end > self.horizon:
            raise GameConfigError(
                f"bid ends at {bid.end}, beyond the horizon {self.horizon}"
            )
        self._subst_bids[user] = bid
        self.events.record(BidPlaced(self.slot + 1, user))

    # -------------------------------------------------------------- loop --

    def advance_slot(self) -> int:
        """Process the next slot; returns its number."""
        if self.slot >= self.horizon:
            raise MechanismError(f"period is over after slot {self.horizon}")
        t = self.slot + 1
        if self.mode == "additive":
            self._advance_additive(t)
        else:
            self._advance_substitutable(t)
        self.slot = t
        return t

    def run_to_end(self) -> ServiceReport:
        """Process every remaining slot and return the report."""
        while self.slot < self.horizon:
            self.advance_slot()
        return self.report()

    def report(self) -> ServiceReport:
        """The current summary (complete once the period is over)."""
        return ServiceReport(
            horizon=self.horizon,
            mode=self.mode,
            ledger=self.ledger,
            events=self.events,
            implemented=dict(self._implemented),
            granted_at=dict(self._granted_at),
            payments=dict(self._payments),
        )

    # ---------------------------------------------------------- internals --

    def _require_mode(self, mode: str) -> None:
        if self.mode != mode:
            raise GameConfigError(
                f"service is in {self.mode!r} mode; operation needs {mode!r}"
            )

    def _advance_additive(self, t: int) -> None:
        # Gather residual bids per optimization, step every contested game.
        by_opt: dict[OptId, dict[UserId, float]] = {}
        for (user, optimization), handle in self._additive_bids.items():
            view = handle.as_of(t)
            residual = view.residual(t) if t >= view.start else 0.0
            by_opt.setdefault(optimization, {})[user] = residual
        for optimization, residuals in by_opt.items():
            state = self._addon[optimization]
            before = state.cumulative
            result = state.step(t, residuals)
            for newcomer in result.serviced - before:
                self._granted_at[(newcomer, optimization)] = t
                self.events.record(UserGranted(t, newcomer, optimization))
            if state.implemented_at == t:
                cost = self.catalog.get(optimization).cost
                self._implemented[optimization] = t
                self.ledger.build_outlay(t, optimization, cost)
                self.events.record(OptimizationImplemented(t, optimization, cost))

        # Invoice departures: a user pays each game's share as its bid ends.
        departed: set[UserId] = set()
        for (user, optimization), handle in self._additive_bids.items():
            if handle.as_of(t).end != t:
                continue
            amount = self._addon[optimization].exit_price(user)
            self._payments[user] = self._payments.get(user, 0.0) + amount
            if amount > 0:
                self.ledger.invoice(t, user, amount, memo=f"opt={optimization!r}")
                self.events.record(UserCharged(t, user, amount))
            departed.add(user)
        for user in departed:
            self.events.record(UserDeparted(t, user))

    def _advance_substitutable(self, t: int) -> None:
        residuals: dict[UserId, dict[OptId, float]] = {}
        for user, bid in self._subst_bids.items():
            if user in self._subston.grants:
                continue
            if t >= bid.start:
                residual = bid.residual(t)
                residuals[user] = {
                    j: (residual if j in bid.substitutes else 0.0)
                    for j in self.catalog
                }
            else:
                residuals[user] = {j: 0.0 for j in self.catalog}

        before_grants = set(self._subston.grants)
        before_impl = set(self._subston.implemented_at)
        self._subston.step(t, residuals)
        for user in set(self._subston.grants) - before_grants:
            optimization = self._subston.grants[user]
            self._granted_at[(user, optimization)] = t
            self.events.record(UserGranted(t, user, optimization))
        for optimization in set(self._subston.implemented_at) - before_impl:
            cost = self.catalog.get(optimization).cost
            self._implemented[optimization] = t
            self.ledger.build_outlay(t, optimization, cost)
            self.events.record(OptimizationImplemented(t, optimization, cost))

        for user, bid in self._subst_bids.items():
            if bid.end == t:
                amount = self._subston.exit_price(user)
                self._payments[user] = amount
                if amount > 0:
                    self.ledger.invoice(t, user, amount)
                    self.events.record(UserCharged(t, user, amount))
                self.events.record(UserDeparted(t, user))
