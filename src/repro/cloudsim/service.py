"""The cloud service loop: bids in, grants and invoices out.

:class:`CloudService` runs one amortization period ``T`` of ``horizon``
slots in either *additive* mode (one independent AddOn game per catalog
optimization) or *substitutable* mode (one SubstOn game across the
catalog). Users place bids for future slots, may revise them upward, are
granted service as soon as the mechanism admits them, and are invoiced
their final cost-share at their departure slot. Every step is recorded in
the event log and the billing ledger.

The loop drives the incremental engine (:mod:`repro.core.online`'s
``step_changed`` paths): bids are indexed by their entry and departure
slots, so a slot's work is proportional to the bids whose residuals
actually changed — users not yet arrived, already departed, or already in
a cumulative serviced set cost nothing — instead of rebuilding the full
bid profile for every optimization at every slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.bids.additive import AdditiveBid
from repro.bids.revision import RevisableBid
from repro.bids.substitutive import SubstitutableBid
from repro.cloudsim.catalog import OptimizationCatalog
from repro.cloudsim.events import (
    BidPlaced,
    BidRevised,
    EventLog,
    OptimizationImplemented,
    UserCharged,
    UserDeparted,
    UserGranted,
)
from repro.cloudsim.ledger import BillingLedger
from repro.core.online import AddOnState, SubstOnState
from repro.core.outcome import OptId, UserId
from repro.errors import GameConfigError, MechanismError
from repro.utils.rng import RngLike

__all__ = ["CloudService", "ServiceReport"]


@dataclass(frozen=True)
class ServiceReport:
    """End-of-period summary of one service run."""

    horizon: int
    mode: str
    ledger: BillingLedger
    events: EventLog
    implemented: Mapping[OptId, int]
    granted_at: Mapping[tuple, int]
    payments: Mapping[UserId, float]

    @property
    def cloud_balance(self) -> float:
        """Revenue minus build outlays; the mechanisms keep this >= 0."""
        return self.ledger.balance

    def grant_slot(self, user: UserId, optimization: OptId) -> int | None:
        """Slot ``user`` gained access to ``optimization`` (None if never)."""
        return self.granted_at.get((user, optimization))

    def realized_value(
        self, user: UserId, optimization: OptId, truth: AdditiveBid
    ) -> float:
        """True value realized from one grant, given the true schedule."""
        granted = self.granted_at.get((user, optimization))
        if granted is None:
            return 0.0
        return sum(truth.value_at(t) for t in range(granted, truth.end + 1))


class CloudService:
    """See the module docstring.

    Parameters
    ----------
    catalog:
        The purchasable optimizations.
    horizon:
        Number of slots in the period ``T``.
    mode:
        ``"additive"`` (independent AddOn per optimization) or
        ``"substitutable"`` (one SubstOn game).
    """

    def __init__(
        self,
        catalog: OptimizationCatalog,
        horizon: int,
        mode: str = "additive",
        rng: RngLike = None,
        randomize_ties: bool = False,
    ) -> None:
        if horizon < 1:
            raise GameConfigError(f"horizon must be >= 1, got {horizon}")
        if mode not in ("additive", "substitutable"):
            raise GameConfigError(f"unknown mode {mode!r}")
        if len(catalog) == 0:
            raise GameConfigError("catalog must offer at least one optimization")
        self.catalog = catalog
        self.horizon = horizon
        self.mode = mode
        self.slot = 0  # last processed slot; slot 1 is processed first
        self.ledger = BillingLedger()
        self.events = EventLog()
        self._payments: dict[UserId, float] = {}
        self._granted_at: dict[tuple, int] = {}
        self._implemented: dict[OptId, int] = {}
        # Entry/departure indexes: which bid keys become active at slot t,
        # and which must be invoiced (and then zeroed) at slot t.
        self._starts_at: dict[int, list] = {}
        self._ends_at: dict[int, list] = {}
        self._active: set = set()

        if mode == "additive":
            self._addon: dict[OptId, AddOnState] = {
                j: AddOnState(catalog.get(j).cost) for j in catalog
            }
            self._additive_bids: dict[tuple, RevisableBid] = {}
        else:
            self._subston = SubstOnState(
                catalog.costs, rng=rng, randomize_ties=randomize_ties
            )
            self._subst_bids: dict[UserId, SubstitutableBid] = {}

    # -------------------------------------------------------------- bids --

    def place_additive_bid(
        self, user: UserId, optimization: OptId, bid: AdditiveBid
    ) -> RevisableBid:
        """Declare a bid for one optimization; returns the revisable handle."""
        self._require_mode("additive")
        if optimization not in self.catalog:
            raise GameConfigError(f"no optimization {optimization!r} in catalog")
        if (user, optimization) in self._additive_bids:
            raise GameConfigError(
                f"user {user!r} already bid on {optimization!r}; revise instead"
            )
        if bid.start <= self.slot:
            raise GameConfigError(
                f"bid for slots from {bid.start} is retroactive at slot {self.slot}"
            )
        if bid.end > self.horizon:
            raise GameConfigError(
                f"bid ends at {bid.end}, beyond the horizon {self.horizon}"
            )
        handle = RevisableBid(bid, declared_at=self.slot + 1)
        key = (user, optimization)
        self._additive_bids[key] = handle
        self._starts_at.setdefault(bid.start, []).append(key)
        self._ends_at.setdefault(bid.end, []).append(key)
        self.events.record(
            BidPlaced(self.slot + 1, user, detail=f"opt={optimization!r}")
        )
        return handle

    def revise_additive_bid(
        self, user: UserId, optimization: OptId, new_values: Mapping[int, float]
    ) -> None:
        """Upward revision of a previously placed bid."""
        self._require_mode("additive")
        key = (user, optimization)
        handle = self._additive_bids.get(key)
        if handle is None:
            raise GameConfigError(
                f"user {user!r} has no bid on {optimization!r} to revise"
            )
        if any(slot > self.horizon for slot in new_values):
            raise GameConfigError("revision extends beyond the horizon")
        old_end = handle.current.end
        handle.revise(self.slot + 1, new_values)
        new_end = handle.current.end
        if new_end != old_end:
            # The departure moved: re-index the invoice slot and, if the bid
            # had already expired, revive it for the extension.
            departures = self._ends_at.get(old_end, [])
            if key in departures:
                departures.remove(key)
            self._ends_at.setdefault(new_end, []).append(key)
            if old_end <= self.slot:
                self._active.add(key)
        self.events.record(
            BidRevised(self.slot + 1, user, detail=f"opt={optimization!r}")
        )

    def place_substitutable_bid(self, user: UserId, bid: SubstitutableBid) -> None:
        """Declare a substitutable bid ``(s_i, e_i, b_i, J_i)``."""
        self._require_mode("substitutable")
        missing = bid.substitutes - set(self.catalog.costs)
        if missing:
            raise GameConfigError(
                f"unknown optimizations in substitute set: {sorted(map(str, missing))}"
            )
        if user in self._subst_bids:
            raise GameConfigError(f"user {user!r} already bid")
        if bid.start <= self.slot:
            raise GameConfigError(
                f"bid for slots from {bid.start} is retroactive at slot {self.slot}"
            )
        if bid.end > self.horizon:
            raise GameConfigError(
                f"bid ends at {bid.end}, beyond the horizon {self.horizon}"
            )
        self._subst_bids[user] = bid
        self._starts_at.setdefault(bid.start, []).append(user)
        self._ends_at.setdefault(bid.end, []).append(user)
        self.events.record(BidPlaced(self.slot + 1, user))

    # -------------------------------------------------------------- loop --

    def advance_slot(self) -> int:
        """Process the next slot; returns its number."""
        if self.slot >= self.horizon:
            raise MechanismError(f"period is over after slot {self.horizon}")
        t = self.slot + 1
        if self.mode == "additive":
            self._advance_additive(t)
        else:
            self._advance_substitutable(t)
        self.slot = t
        return t

    def run_to_end(self) -> ServiceReport:
        """Process every remaining slot and return the report."""
        while self.slot < self.horizon:
            self.advance_slot()
        return self.report()

    def report(self) -> ServiceReport:
        """The current summary (complete once the period is over)."""
        return ServiceReport(
            horizon=self.horizon,
            mode=self.mode,
            ledger=self.ledger,
            events=self.events,
            implemented=dict(self._implemented),
            granted_at=dict(self._granted_at),
            payments=dict(self._payments),
        )

    # ---------------------------------------------------------- internals --

    def _require_mode(self, mode: str) -> None:
        if self.mode != mode:
            raise GameConfigError(
                f"service is in {self.mode!r} mode; operation needs {mode!r}"
            )

    def _advance_additive(self, t: int) -> None:
        # Residuals change only for bids whose interval covers this slot
        # (plus one trailing zero for bids that just expired); gather those
        # and step every contested game incrementally.
        self._active.update(self._starts_at.pop(t, ()))
        changed: dict[OptId, dict[UserId, float]] = {}
        expired = []
        for key in self._active:
            user, optimization = key
            if self._addon[optimization].is_cumulative(user):
                expired.append(key)  # forced: her residual no longer matters
                continue
            bid = self._additive_bids[key].current
            if t > bid.end:
                changed.setdefault(optimization, {})[user] = 0.0
                expired.append(key)
            else:
                changed.setdefault(optimization, {})[user] = bid.residual(t)
        self._active.difference_update(expired)

        # Only games with a changed residual can change outcome: untouched
        # profiles solve to the same serviced set and price, and the state
        # machines accept slot gaps, so settled games cost nothing.
        for optimization, residuals in changed.items():
            state = self._addon[optimization]
            delta = state.step_changed(t, residuals)
            for newcomer in delta.newly_serviced:
                self._granted_at[(newcomer, optimization)] = t
                self.events.record(UserGranted(t, newcomer, optimization))
            if state.implemented_at == t:
                cost = self.catalog.get(optimization).cost
                self._implemented[optimization] = t
                self.ledger.build_outlay(t, optimization, cost)
                self.events.record(OptimizationImplemented(t, optimization, cost))

        # Invoice departures: a user pays each game's share as its bid ends.
        departed: set[UserId] = set()
        for key in self._ends_at.pop(t, ()):
            user, optimization = key
            if self._additive_bids[key].current.end != t:
                continue
            amount = self._addon[optimization].exit_price(user)
            self._payments[user] = self._payments.get(user, 0.0) + amount
            if amount > 0:
                self.ledger.invoice(t, user, amount, memo=f"opt={optimization!r}")
                self.events.record(UserCharged(t, user, amount))
            departed.add(user)
        for user in departed:
            self.events.record(UserDeparted(t, user))

    def _advance_substitutable(self, t: int) -> None:
        self._active.update(self._starts_at.pop(t, ()))
        changed: dict[UserId, dict[OptId, float]] = {}
        settled = []
        for user in self._active:
            if user in self._subston.grants:
                settled.append(user)  # locked: the engine forces her bid
                continue
            bid = self._subst_bids[user]
            residual = bid.residual(t)
            changed[user] = {
                j: (residual if j in bid.substitutes else 0.0)
                for j in self.catalog
            }
        self._active.difference_update(settled)

        delta = self._subston.step_changed(t, changed)
        for user, optimization in delta.new_grants.items():
            self._granted_at[(user, optimization)] = t
            self.events.record(UserGranted(t, user, optimization))
        for optimization in delta.new_implementations:
            cost = self.catalog.get(optimization).cost
            self._implemented[optimization] = t
            self.ledger.build_outlay(t, optimization, cost)
            self.events.record(OptimizationImplemented(t, optimization, cost))

        for user in self._ends_at.pop(t, ()):
            amount = self._subston.exit_price(user)
            self._payments[user] = amount
            if amount > 0:
                self.ledger.invoice(t, user, amount)
                self.events.record(UserCharged(t, user, amount))
            self.events.record(UserDeparted(t, user))
            # An unserviced departure stops contributing residuals; a
            # granted one keeps her forced bid in the denominator forever.
            self._subston.retire(user)
            self._active.discard(user)
