"""Typed event records emitted by the cloud-service simulation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "Event",
    "BidPlaced",
    "BidRevised",
    "UserGranted",
    "OptimizationImplemented",
    "UserDeparted",
    "UserCharged",
    "EventLog",
]


@dataclass(frozen=True)
class Event:
    """Base event: everything carries the slot it happened in."""

    slot: int


@dataclass(frozen=True)
class BidPlaced(Event):
    """A user declared her (initial) bid."""

    user: object
    detail: str = ""


@dataclass(frozen=True)
class BidRevised(Event):
    """A user revised future values upward."""

    user: object
    detail: str = ""


@dataclass(frozen=True)
class UserGranted(Event):
    """A user entered an optimization's serviced set."""

    user: object
    optimization: object


@dataclass(frozen=True)
class OptimizationImplemented(Event):
    """The cloud built an optimization."""

    optimization: object
    cost: float


@dataclass(frozen=True)
class UserDeparted(Event):
    """A user reached her departure slot."""

    user: object


@dataclass(frozen=True)
class UserCharged(Event):
    """A departing user was invoiced her cost-share."""

    user: object
    amount: float


class EventLog:
    """Append-only event history with typed filtering."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def __eq__(self, other: object) -> bool:
        """Logs are equal when their event sequences are (wire contract:
        a gateway round-trip must reproduce the history event for event)."""
        if not isinstance(other, EventLog):
            return NotImplemented
        return self._events == other._events

    __hash__ = None  # append-only log: identity hashing would lie across edits

    def record(self, event: Event) -> None:
        """Append one event."""
        self._events.append(event)

    def record_many(self, events) -> None:
        """Append an iterable of events in order (bulk intake paths)."""
        self._events.extend(events)

    def all(self) -> list[Event]:
        """Every event in order."""
        return list(self._events)

    def of_type(self, event_type: type) -> Iterator[Event]:
        """Events of one type, in order."""
        return (e for e in self._events if isinstance(e, event_type))

    def in_slot(self, slot: int) -> Iterator[Event]:
        """Events of one slot, in order."""
        return (e for e in self._events if e.slot == slot)

    def __len__(self) -> int:
        return len(self._events)
