"""Billing ledger: who paid what, and whether the cloud broke even."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GameConfigError

__all__ = ["LedgerEntry", "BillingLedger"]


@dataclass(frozen=True)
class LedgerEntry:
    """One ledger line; ``amount`` > 0 is user revenue, < 0 a cloud outlay."""

    slot: int
    kind: str
    party: object
    amount: float
    memo: str = ""


class BillingLedger:
    """Double-purpose book: user invoices and cloud build outlays."""

    def __init__(self) -> None:
        self._entries: list[LedgerEntry] = []

    def __eq__(self, other: object) -> bool:
        """Ledgers are equal when their entry sequences are (wire contract:
        a gateway round-trip must reproduce the book line for line)."""
        if not isinstance(other, BillingLedger):
            return NotImplemented
        return self._entries == other._entries

    __hash__ = None  # mutable book: identity hashing would lie across edits

    def invoice(self, slot: int, user, amount: float, memo: str = "") -> LedgerEntry:
        """Record a user payment (at her departure slot)."""
        if amount < 0:
            raise GameConfigError(f"invoice amounts must be >= 0, got {amount}")
        entry = LedgerEntry(slot, "invoice", user, amount, memo)
        self._entries.append(entry)
        return entry

    def build_outlay(
        self, slot: int, optimization, cost: float, memo: str = ""
    ) -> LedgerEntry:
        """Record the cloud paying to implement an optimization."""
        if cost <= 0:
            raise GameConfigError(f"build costs must be positive, got {cost}")
        entry = LedgerEntry(slot, "build", optimization, -cost, memo)
        self._entries.append(entry)
        return entry

    @property
    def entries(self) -> list[LedgerEntry]:
        """All lines, in order."""
        return list(self._entries)

    @property
    def revenue(self) -> float:
        """Total user payments."""
        return sum(e.amount for e in self._entries if e.kind == "invoice")

    @property
    def outlays(self) -> float:
        """Total build costs (positive number)."""
        return -sum(e.amount for e in self._entries if e.kind == "build")

    @property
    def balance(self) -> float:
        """Revenue minus outlays; negative means the cloud lost money."""
        return self.revenue - self.outlays

    def paid_by(self, user) -> float:
        """Total invoiced to one user."""
        return sum(
            e.amount
            for e in self._entries
            if e.kind == "invoice" and e.party == user
        )

    def statement(self, user) -> list[LedgerEntry]:
        """All invoice lines of one user."""
        return [
            e for e in self._entries if e.kind == "invoice" and e.party == user
        ]
