"""Cloud-service simulation: the online mechanisms run as a live service.

The experiment drivers replay complete bid profiles through the batch
mechanism runners; this package instead simulates the *service* the paper
envisions: an optimization catalog, users arriving / revising / departing
over slots, the mechanism deciding per slot, and a billing ledger invoicing
users at departure. It powers the runnable examples and the end-to-end
integration tests.
"""

from repro.cloudsim.catalog import OptimizationCatalog, OptimizationSpec
from repro.cloudsim.events import (
    BidPlaced,
    BidRevised,
    EventLog,
    OptimizationImplemented,
    UserCharged,
    UserDeparted,
    UserGranted,
)
from repro.cloudsim.ledger import BillingLedger, LedgerEntry
from repro.cloudsim.service import CloudService, ServiceReport

__all__ = [
    "OptimizationCatalog",
    "OptimizationSpec",
    "EventLog",
    "BidPlaced",
    "BidRevised",
    "UserGranted",
    "UserDeparted",
    "UserCharged",
    "OptimizationImplemented",
    "BillingLedger",
    "LedgerEntry",
    "CloudService",
    "ServiceReport",
]
