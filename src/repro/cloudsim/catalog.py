"""The cloud's optimization catalog.

Each entry is one binary optimization the provider can implement — an
index, a materialized view, a replica — with its fixed period cost ``C_j``
(implementation plus maintenance for the period ``T``, Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.core.outcome import OptId
from repro.errors import GameConfigError

__all__ = ["OptimizationSpec", "OptimizationCatalog"]


@dataclass(frozen=True)
class OptimizationSpec:
    """One purchasable optimization."""

    opt_id: OptId
    cost: float
    kind: str = "generic"
    description: str = ""

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise GameConfigError(
                f"optimization {self.opt_id!r} needs a positive cost, got {self.cost}"
            )


class OptimizationCatalog:
    """A registry of :class:`OptimizationSpec` addressed by id."""

    def __init__(self, specs: Mapping[OptId, OptimizationSpec] | None = None) -> None:
        self._specs: dict[OptId, OptimizationSpec] = dict(specs or {})

    @classmethod
    def from_costs(cls, costs: Mapping[OptId, float], kind: str = "generic"):
        """Build a catalog from a plain ``{opt_id: cost}`` mapping."""
        catalog = cls()
        for opt_id, cost in costs.items():
            catalog.register(OptimizationSpec(opt_id, cost, kind=kind))
        return catalog

    def register(self, spec: OptimizationSpec) -> OptimizationSpec:
        """Add one optimization; ids must be unique."""
        if spec.opt_id in self._specs:
            raise GameConfigError(f"optimization {spec.opt_id!r} already registered")
        self._specs[spec.opt_id] = spec
        return spec

    def get(self, opt_id: OptId) -> OptimizationSpec:
        """Look one optimization up."""
        try:
            return self._specs[opt_id]
        except KeyError:
            raise GameConfigError(f"no optimization {opt_id!r} in catalog") from None

    def __contains__(self, opt_id: OptId) -> bool:
        return opt_id in self._specs

    def __iter__(self) -> Iterator[OptId]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    @property
    def costs(self) -> dict[OptId, float]:
        """``{opt_id: cost}`` — what the mechanisms consume."""
        return {opt_id: spec.cost for opt_id, spec in self._specs.items()}
