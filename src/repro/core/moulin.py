"""General Moulin mechanisms over cross-monotonic cost shares.

Section 8 situates the paper: the Shapley Value Mechanism "is an instance
of Moulin Mechanisms [27] that have been designed for various offline
combinatorial cost-sharing problems". A Moulin mechanism is parameterized
by a *cost-share function* ``xi(i, S)`` — what user ``i`` pays if exactly
the set ``S`` is serviced — that must be

* **budget balanced**: ``sum_{i in S} xi(i, S) = C`` for every ``S``, and
* **cross-monotonic**: ``xi(i, S) >= xi(i, T)`` whenever ``i in S subset T``
  (more company never raises your share).

The mechanism then iterates exactly like Mechanism 1: start from everyone,
drop users whose bid is below their current share, repeat to the largest
fixed point. Cross-monotonicity is what makes the iteration converge to a
group-strategyproof outcome (Moulin & Shenker 2001). Equal splitting
recovers :func:`repro.core.shapley.run_shapley`; weighted splitting prices
heavy users more — e.g. shares proportional to bytes scanned.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.outcome import ShapleyResult, UserId
from repro.errors import MechanismError
from repro.utils.numeric import is_positive_finite_or_inf, isclose_or_greater

__all__ = ["equal_shares", "weighted_shares", "run_moulin"]

#: A cost-share function: (user, serviced set) -> that user's share.
ShareFunction = Callable[[UserId, frozenset], float]


def equal_shares(cost: float) -> ShareFunction:
    """The Shapley split ``xi(i, S) = C / |S|``."""
    if not is_positive_finite_or_inf(cost):
        raise MechanismError(f"cost must be positive, got {cost}")

    def share(user: UserId, serviced: frozenset) -> float:
        return cost / len(serviced)

    return share


def weighted_shares(cost: float, weights: Mapping[UserId, float]) -> ShareFunction:
    """Shares proportional to positive per-user weights.

    ``xi(i, S) = C * w_i / sum_{k in S} w_k`` — budget balanced by
    construction and cross-monotonic because adding users only grows the
    denominator. Natural weights: expected scan bytes, query counts,
    storage footprints.
    """
    if not is_positive_finite_or_inf(cost):
        raise MechanismError(f"cost must be positive, got {cost}")
    for user, weight in weights.items():
        if not is_positive_finite_or_inf(weight):
            raise MechanismError(
                f"weight of user {user!r} must be positive, got {weight}"
            )

    def share(user: UserId, serviced: frozenset) -> float:
        total = sum(weights[k] for k in serviced)
        return cost * weights[user] / total

    return share


def run_moulin(
    share_fn: ShareFunction,
    bids: Mapping[UserId, float],
    max_rounds: int | None = None,
) -> ShapleyResult:
    """Run the Moulin mechanism for one optimization.

    Parameters
    ----------
    share_fn:
        A budget-balanced, cross-monotonic cost-share function. The
        mechanism trusts these properties; :mod:`tests` probe them for the
        built-in share families.
    bids:
        Declared value per user (``math.inf`` allowed, as in
        :func:`~repro.core.shapley.run_shapley`).
    max_rounds:
        Safety valve for misbehaved share functions; defaults to the user
        count (each round must evict someone or stop).

    Returns
    -------
    ShapleyResult
        Serviced set and per-user payments. ``price`` reports the *mean*
        share (all shares are equal under ``equal_shares``).
    """
    import math

    for user, bid in bids.items():
        if bid < 0 or math.isnan(bid):
            raise MechanismError(f"bid for user {user!r} must be >= 0, got {bid}")
    serviced = frozenset(user for user, bid in bids.items() if bid > 0)
    limit = len(serviced) + 1 if max_rounds is None else max_rounds
    rounds = 0
    shares: dict[UserId, float] = {}
    while serviced and rounds < limit:
        rounds += 1
        shares = {user: share_fn(user, serviced) for user in serviced}
        keep = frozenset(
            user
            for user in serviced
            if isclose_or_greater(bids[user], shares[user])
        )
        if keep == serviced:
            break
        serviced = keep
    if serviced and rounds >= limit:
        raise MechanismError(
            f"share function did not converge within {limit} rounds; "
            "is it cross-monotonic?"
        )
    if not serviced:
        return ShapleyResult(frozenset(), 0.0, {}, rounds)
    payments = {user: shares[user] for user in serviced}
    mean_share = sum(payments.values()) / len(payments)
    return ShapleyResult(serviced, mean_share, payments, rounds)
