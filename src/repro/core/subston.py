"""Mechanism 4 — SubstOn, online mechanism for substitutable optimizations.

Runs SubstOff at every slot over the residual values of all users seen so
far. The first time a user is granted access to an optimization ``j`` she
is *locked* to it: her bid for ``j`` becomes infinity (she is always in
``j``'s feasible set, including after she leaves — departed users keep
contributing to the denominator so later users' shares keep falling) and
her bids for every other optimization become 0 (she may never switch; the
paper's Example 8 shows switching would break truthfulness). Users pay at
their departure slot ``e_i``, and pay the share computed by that slot's
SubstOff run — the lowest share their optimization has reached so far.
"""

from __future__ import annotations

from typing import Mapping

from repro.bids.substitutive import SubstitutableBid
from repro.core.online import SubstOnState
from repro.core.outcome import OptId, SubstOnOutcome, UserId
from repro.errors import MechanismError
from repro.utils.rng import RngLike

__all__ = ["run_subston"]


def run_subston(
    costs: Mapping[OptId, float],
    bids: Mapping[UserId, SubstitutableBid],
    horizon: int | None = None,
    rng: RngLike = None,
    randomize_ties: bool = False,
) -> SubstOnOutcome:
    """Run the SubstOn Mechanism.

    Parameters
    ----------
    costs:
        Cost ``C_j`` per optimization.
    bids:
        One :class:`SubstitutableBid` ``(s_i, e_i, b_i, J_i)`` per user.
    horizon:
        Number of slots ``z``; defaults to the latest departure slot.
    rng, randomize_ties:
        Passed through to the per-slot SubstOff runs for tie-breaking.

    Returns
    -------
    SubstOnOutcome
        Final grants (one optimization per serviced user), the slot of each
        grant, the slot each optimization was first built, and the
        departure-time payments.
    """
    for user, bid in bids.items():
        missing = bid.substitutes - set(costs)
        if missing:
            raise MechanismError(
                f"user {user!r} wants unknown optimizations: {sorted(map(str, missing))}"
            )
    if horizon is None:
        horizon = max((bid.end for bid in bids.values()), default=0)

    optimizations = list(costs)
    state = SubstOnState(costs, rng=rng, randomize_ties=randomize_ties)
    payments: dict[UserId, float] = {}
    shares_by_slot: list[Mapping[OptId, float]] = [{}]

    for t in range(1, horizon + 1):
        # Only users inside their declared interval can have a nonzero
        # residual: the state machine never saw earlier users, retires
        # departed ones, and forces/locks granted ones internally.
        matrix: dict[UserId, dict[OptId, float]] = {}
        for user, bid in bids.items():
            if user in state.grants or not bid.start <= t <= bid.end:
                continue
            residual = bid.residual(t)
            matrix[user] = {
                j: (residual if j in bid.substitutes else 0.0)
                for j in optimizations
            }

        result = state.step(t, matrix)
        shares_by_slot.append(dict(result.shares))

        for user, bid in bids.items():
            if bid.end == t:
                payments[user] = result.payment(user)

    return SubstOnOutcome(
        costs=dict(costs),
        horizon=horizon,
        grants=state.grants,
        granted_at=state.granted_at,
        implemented_at=state.implemented_at,
        payments=payments,
        shares_by_slot=tuple(shares_by_slot),
    )
