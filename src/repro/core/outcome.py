"""Outcome types returned by the mechanisms.

The paper's *alternative* is a set of implemented optimizations plus grant
pairs ``(i, j)`` (Section 3). Each mechanism returns a frozen outcome
holding the alternative it chose, the payment vector, and enough trace
information (per-slot serviced sets, price trajectories) to reproduce the
worked examples and compute utilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.errors import MechanismError

__all__ = [
    "UserId",
    "OptId",
    "ShapleyResult",
    "AddOffOutcome",
    "AddOnOutcome",
    "SubstOffOutcome",
    "SubstOnOutcome",
]

UserId = Hashable
OptId = Hashable


@dataclass(frozen=True)
class ShapleyResult:
    """Output of one Shapley Value Mechanism run (Mechanism 1).

    ``price`` is the common cost-share ``C_j / |S_j|`` paid by each serviced
    user, or ``0.0`` when nobody could afford the optimization.
    """

    serviced: frozenset
    price: float
    payments: Mapping[UserId, float]
    rounds: int

    @property
    def implemented(self) -> bool:
        """True when at least one user is serviced (the optimization is built)."""
        return bool(self.serviced)

    @property
    def revenue(self) -> float:
        """Total collected payment (= cost when implemented, else 0)."""
        return sum(self.payments.values())

    def payment(self, user: UserId) -> float:
        """``p_ij`` for ``user`` (0 for non-serviced users)."""
        return self.payments.get(user, 0.0)


@dataclass(frozen=True)
class AddOffOutcome:
    """Output of AddOff: one independent Shapley run per optimization."""

    results: Mapping[OptId, ShapleyResult]
    costs: Mapping[OptId, float]

    @property
    def implemented(self) -> frozenset:
        """Optimizations that were built."""
        return frozenset(j for j, r in self.results.items() if r.implemented)

    @property
    def grants(self) -> frozenset:
        """All grant pairs ``(user, optimization)`` of the chosen alternative."""
        return frozenset(
            (i, j) for j, r in self.results.items() for i in r.serviced
        )

    def _result_of(self, optimization: OptId) -> "ShapleyResult":
        result = self.results.get(optimization)
        if result is None:
            raise MechanismError(
                f"no game was played for optimization {optimization!r}"
            )
        return result

    def serviced(self, optimization: OptId) -> frozenset:
        """``S_j`` for one optimization."""
        return self._result_of(optimization).serviced

    def payment(self, user: UserId) -> float:
        """Total payment ``P_i`` across all optimizations."""
        return sum(r.payment(user) for r in self.results.values())

    def payment_for(self, user: UserId, optimization: OptId) -> float:
        """``p_ij`` for one grant pair."""
        return self._result_of(optimization).payment(user)

    @property
    def total_cost(self) -> float:
        """Combined cost of the implemented optimizations."""
        return sum(self.costs[j] for j in self.implemented)

    @property
    def total_payment(self) -> float:
        """Combined payments over all users."""
        return sum(r.revenue for r in self.results.values())


@dataclass(frozen=True)
class AddOnOutcome:
    """Output of the AddOn Mechanism (Mechanism 2) for one optimization.

    Slots are 1-indexed: ``serviced_by_slot[t]`` is ``S_j(t)`` and
    ``cumulative_by_slot[t]`` is ``CS_j(t)``; index 0 is the empty pre-game
    state. ``price_by_slot[t]`` is the cost-share computed by the embedded
    Shapley run at slot ``t`` (0 while the optimization is unaffordable).
    """

    cost: float
    horizon: int
    serviced_by_slot: tuple
    cumulative_by_slot: tuple
    price_by_slot: tuple
    payments: Mapping[UserId, float]
    implemented_at: int | None

    @property
    def implemented(self) -> bool:
        """True when the optimization was built at some slot."""
        return self.implemented_at is not None

    def serviced(self, t: int) -> frozenset:
        """``S_j(t)`` — users actively serviced during slot ``t``."""
        return self.serviced_by_slot[t]

    def cumulative(self, t: int) -> frozenset:
        """``CS_j(t)`` — every user serviced up to and including slot ``t``."""
        return self.cumulative_by_slot[t]

    def payment(self, user: UserId) -> float:
        """Final payment charged when ``user`` left the system."""
        return self.payments.get(user, 0.0)

    @property
    def total_payment(self) -> float:
        """Sum of all user payments."""
        return sum(self.payments.values())

    @property
    def total_cost(self) -> float:
        """Cost incurred by the cloud (0 when never implemented)."""
        return self.cost if self.implemented else 0.0


@dataclass(frozen=True)
class SubstOffOutcome:
    """Output of SubstOff (Mechanism 3).

    ``implemented`` lists optimizations in the order the phase loop selected
    them. ``grants`` maps each serviced user to the single optimization she
    was granted (substitutable users never hold two grants).
    """

    costs: Mapping[OptId, float]
    implemented: tuple
    grants: Mapping[UserId, OptId]
    payments: Mapping[UserId, float]
    shares: Mapping[OptId, float]

    def serviced(self, optimization: OptId) -> frozenset:
        """``S_j`` — the users granted ``optimization``."""
        return frozenset(i for i, j in self.grants.items() if j == optimization)

    def payment(self, user: UserId) -> float:
        """Payment for ``user`` (0 when not serviced)."""
        return self.payments.get(user, 0.0)

    @property
    def total_cost(self) -> float:
        """Combined cost of implemented optimizations."""
        return sum(self.costs[j] for j in self.implemented)

    @property
    def total_payment(self) -> float:
        """Combined payments over all users."""
        return sum(self.payments.values())


@dataclass(frozen=True)
class SubstOnOutcome:
    """Output of SubstOn (Mechanism 4).

    ``granted_at[i]`` is the slot user ``i`` first obtained access to
    ``grants[i]``; she is locked to that optimization afterwards.
    ``implemented_at[j]`` is the slot optimization ``j`` was first built.
    """

    costs: Mapping[OptId, float]
    horizon: int
    grants: Mapping[UserId, OptId]
    granted_at: Mapping[UserId, int]
    implemented_at: Mapping[OptId, int]
    payments: Mapping[UserId, float]
    shares_by_slot: tuple = field(default=())

    def serviced(self, optimization: OptId, t: int) -> frozenset:
        """Users holding a grant for ``optimization`` as of slot ``t``."""
        return frozenset(
            i
            for i, j in self.grants.items()
            if j == optimization and self.granted_at[i] <= t
        )

    def payment(self, user: UserId) -> float:
        """Final payment charged when ``user`` left the system."""
        return self.payments.get(user, 0.0)

    @property
    def total_cost(self) -> float:
        """Combined cost of every optimization that was built."""
        return sum(self.costs[j] for j in self.implemented_at)

    @property
    def total_payment(self) -> float:
        """Combined payments over all users."""
        return sum(self.payments.values())
