"""Sort-once Shapley solving and the incremental mechanism engine.

The seed implementation of Mechanism 1 recomputed the eviction fixed point
by rebuilding the candidate set round after round — O(n * rounds) set
churn per call, repeated from scratch at every slot by the online
mechanisms. This module replaces that loop with two cooperating pieces:

* :func:`largest_affordable_prefix` — the closed-form of the fixed point.
  With bids sorted, the serviced set of the Shapley Value Mechanism is the
  top-``k`` bidders for the largest ``k`` whose ``k``-th highest bid covers
  the even share ``C / k``: sort once, then a single descending scan finds
  ``k``. (Why this equals the iterative fixed point: every feasible set is
  a subset of each intermediate set of the eviction loop, so the loop
  converges to the unique maximal feasible set; for any size ``k`` the best
  candidate set is the top-``k`` bidders, hence the maximal feasible set is
  the top-``k*`` prefix for the largest feasible ``k*``.)
* :class:`IncrementalShapley` — a persistent sorted-bid structure for the
  online mechanisms. Between slots only ``m`` bids change, so a slot step
  re-sorts nothing: each changed bid is spliced in or out of the sorted
  array with a bisect (O(log n) comparisons plus a C-speed ``memmove``),
  and the scan resumes from the top. Users forced by the online rules
  (once serviced, always serviced) are promoted out of the array exactly
  once, so maintaining the cumulative set is amortized O(1) per user.

Ties and tolerances follow :mod:`repro.utils.numeric` exactly, which is
what makes the engine bit-for-bit equivalent to the seed loop: the keep
rule is ``isclose_or_greater(bid, share)`` and the final price is the same
``C / k`` division.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from typing import Iterator, Mapping, Tuple

from repro.core.outcome import UserId
from repro.errors import MechanismError
from repro.utils.numeric import close, is_positive_finite, isclose_or_greater

__all__ = [
    "IncrementalShapley",
    "largest_affordable_prefix",
    "eviction_fixed_point",
    "eviction_rounds",
    "solve_shapley",
]


def largest_affordable_prefix(
    cost: float, vals: list, forced: int
) -> Tuple[int, float]:
    """Largest ``k`` such that the ``k``-th highest bid covers ``cost / k``.

    ``vals`` holds the finite positive bids in ascending order; ``forced``
    counts users with infinite bids (always in the serviced set). Returns
    ``(k, cost / k)``, or ``(0, 0.0)`` when no prefix is affordable.
    """
    n_finite = len(vals)
    for k in range(n_finite + forced, 0, -1):
        if k <= forced:
            return k, cost / k
        if isclose_or_greater(vals[n_finite - (k - forced)], cost / k):
            return k, cost / k
    return 0, 0.0


def eviction_fixed_point(
    cost: float, vals: list, forced: int
) -> Tuple[int, float, int]:
    """The eviction loop's fixed point, by trajectory replay.

    Every intermediate set of the seed loop is a value-threshold set, so
    the whole trajectory is determined by its sizes: one bisect per round
    replaces one set rebuild, giving O(rounds * log n) instead of
    O(rounds * n). Returns ``(size, price, rounds)`` — the same fixed point
    :func:`largest_affordable_prefix` characterizes in closed form, plus
    the round count the :class:`~repro.core.outcome.ShapleyResult` trace
    reports.
    """
    size = len(vals) + forced
    rounds = 0
    while size:
        rounds += 1
        price = cost / size
        idx = bisect_left(vals, price)
        while idx > 0 and close(vals[idx - 1], price):
            idx -= 1
        survivors = forced + len(vals) - idx
        if survivors == size:
            return size, price, rounds
        size = survivors
    return 0, 0.0, rounds


def eviction_rounds(cost: float, vals: list, forced: int) -> int:
    """Rounds the seed eviction loop would take on the same profile."""
    return eviction_fixed_point(cost, vals, forced)[2]


def solve_shapley(
    cost: float, bids: Mapping[UserId, float]
) -> Tuple[frozenset, float, int]:
    """One-shot solve: validate, sort once, scan once.

    Returns ``(serviced, price, rounds)``; the caller wraps them in a
    :class:`~repro.core.outcome.ShapleyResult`. The serviced set and price
    come from the descending scan; the round count needs the trajectory
    replay (:func:`eviction_fixed_point`) — both are O(n - k) or better
    after the sort, which dominates.
    """
    vals: list = []
    forced = 0
    for user, bid in bids.items():
        if bid < 0 or math.isnan(bid):
            raise MechanismError(f"bid for user {user!r} must be >= 0, got {bid}")
        if math.isinf(bid):
            forced += 1
        elif bid > 0:
            vals.append(bid)
    vals.sort()
    k, price = largest_affordable_prefix(cost, vals, forced)
    rounds = eviction_rounds(cost, vals, forced)
    if k == 0:
        return frozenset(), 0.0, rounds
    serviced = frozenset(
        user for user, bid in bids.items() if isclose_or_greater(bid, price)
    )
    return serviced, price, rounds


class IncrementalShapley:
    """Persistent Shapley engine for one optimization.

    Holds the current bid of every tracked user in a sorted array so that a
    slot with ``m`` changed bids costs ``m`` splices instead of a full
    re-sort, plus the forced set of users the online mechanisms pin into
    the outcome (infinite residual bids).

    The bulk entry point :meth:`set_bids` falls back to a wholesale rebuild
    when most of the profile changed, so batch replays never degrade below
    the one-shot sort.
    """

    __slots__ = ("cost", "_bids", "_forced", "_vals", "_users_at")

    def __init__(self, cost: float) -> None:
        if not is_positive_finite(cost):
            raise MechanismError(f"optimization cost must be positive, got {cost}")
        self.cost = cost
        self._bids: dict = {}  # user -> current finite bid (>= 0)
        self._forced: set = set()  # users pinned into every outcome
        self._vals: list = []  # ascending sorted positive finite bids
        self._users_at: dict = {}  # bid value -> set of users at that value

    # ------------------------------------------------------------- updates --

    def set_bid(self, user: UserId, bid: float) -> None:
        """Declare/replace one user's bid; no-op when unchanged or forced.

        An infinite bid forces the user. Forced users ignore later finite
        updates — the online rules never release a serviced user.
        """
        bid = float(bid)
        if bid < 0 or math.isnan(bid):
            raise MechanismError(f"bid for user {user!r} must be >= 0, got {bid}")
        if user in self._forced:
            return
        if math.isinf(bid):
            self.force(user)
            return
        old = self._bids.get(user)
        if old == bid:
            return
        if old is not None and old > 0:
            self._splice_out(old, user)
        self._bids[user] = bid
        if bid > 0:
            insort(self._vals, bid)
            self._users_at.setdefault(bid, set()).add(user)

    def set_bids(self, updates: Mapping[UserId, float]) -> None:
        """Apply many bid updates, rebuilding wholesale when cheaper.

        Splicing the sorted array per update wins while the delta is small
        against the tracked population; past that, one C-speed re-sort
        beats per-item memmoves, so a bulk delta never degrades below the
        one-shot solve.
        """
        if len(updates) > max(16, len(self._bids) // 4):
            # Validate the whole batch before touching any state, so a bad
            # entry cannot leave _bids out of sync with the sorted array.
            for user, bid in updates.items():
                bid = float(bid)
                if bid < 0 or math.isnan(bid):
                    raise MechanismError(
                        f"bid for user {user!r} must be >= 0, got {bid}"
                    )
            changed = False
            for user, bid in updates.items():
                bid = float(bid)
                if user in self._forced:
                    continue
                if math.isinf(bid):
                    self._bids.pop(user, None)
                    self._forced.add(user)
                    changed = True
                elif self._bids.get(user) != bid:
                    self._bids[user] = bid
                    changed = True
            if changed:
                self._rebuild()
            return
        for user, bid in updates.items():
            self.set_bid(user, bid)

    def remove(self, user: UserId) -> None:
        """Forget a user entirely (including a forced one)."""
        old = self._bids.pop(user, None)
        if old is not None and old > 0:
            self._splice_out(old, user)
        self._forced.discard(user)

    def force(self, user: UserId) -> None:
        """Pin ``user`` into every future serviced set (infinite bid)."""
        if user in self._forced:
            return
        old = self._bids.pop(user, None)
        if old is not None and old > 0:
            self._splice_out(old, user)
        self._forced.add(user)

    def _splice_out(self, value: float, user: UserId) -> None:
        self._vals.pop(bisect_left(self._vals, value))
        users = self._users_at[value]
        users.discard(user)
        if not users:
            del self._users_at[value]

    def _rebuild(self) -> None:
        self._vals = sorted(v for v in self._bids.values() if v > 0)
        self._users_at = {}
        for user, bid in self._bids.items():
            if bid > 0:
                self._users_at.setdefault(bid, set()).add(user)

    # ------------------------------------------------------------- queries --

    @property
    def forced(self) -> frozenset:
        """The users pinned into every outcome (read-only view)."""
        return frozenset(self._forced)

    def forced_count(self) -> int:
        """Number of forced users (no set materialization)."""
        return len(self._forced)

    def is_forced(self, user: UserId) -> bool:
        """O(1) membership test against the forced set."""
        return user in self._forced

    def tracked(self) -> Iterator[UserId]:
        """The non-forced users currently holding a declared bid."""
        return iter(self._bids)

    def __len__(self) -> int:
        return len(self._bids) + len(self._forced)

    def solve(self) -> Tuple[int, float]:
        """``(serviced size, common share)`` for the current profile.

        Uses the trajectory replay (O(rounds * log n)) rather than the
        descending scan: between slots the profile barely moves, so paying
        O(n - k) scan steps per slot would dwarf the O(m log n) updates.
        """
        size, price, _ = eviction_fixed_point(
            self.cost, self._vals, len(self._forced)
        )
        return size, price

    def rounds(self) -> int:
        """Seed-equivalent eviction round count for the current profile."""
        return eviction_rounds(self.cost, self._vals, len(self._forced))

    def solve_with_rounds(self) -> Tuple[int, float, int]:
        """``(size, price, rounds)`` from a single fixed-point replay."""
        return eviction_fixed_point(self.cost, self._vals, len(self._forced))

    def serviced(self, price: float) -> frozenset:
        """Materialize the serviced set at the given share."""
        out = set(self._forced)
        vals = self._vals
        idx = len(vals)
        last = None
        while idx > 0:
            value = vals[idx - 1]
            if not isclose_or_greater(value, price):
                break
            if value != last:
                out |= self._users_at[value]
                last = value
            idx -= 1
        return frozenset(out)

    def promote_serviced(self, price: float) -> frozenset:
        """Force every non-forced user whose bid covers ``price``.

        Returns the newly forced users. Each user crosses into the forced
        set at most once over an engine's lifetime, so the total promotion
        work is O(n) amortized across all slots.
        """
        newly: set = set()
        vals = self._vals
        while vals and isclose_or_greater(vals[-1], price):
            value = vals[-1]
            users = self._users_at.pop(value)
            while vals and vals[-1] == value:
                vals.pop()
            for user in users:
                del self._bids[user]
            self._forced |= users
            newly |= users
        return frozenset(newly)
