"""Sort-once Shapley solving and the incremental mechanism engine.

The seed implementation of Mechanism 1 recomputed the eviction fixed point
by rebuilding the candidate set round after round — O(n * rounds) set
churn per call, repeated from scratch at every slot by the online
mechanisms. This module replaces that loop with two cooperating pieces:

* :func:`largest_affordable_prefix` — the closed-form of the fixed point.
  With bids sorted, the serviced set of the Shapley Value Mechanism is the
  top-``k`` bidders for the largest ``k`` whose ``k``-th highest bid covers
  the even share ``C / k``: sort once, then a single descending scan finds
  ``k``. (Why this equals the iterative fixed point: every feasible set is
  a subset of each intermediate set of the eviction loop, so the loop
  converges to the unique maximal feasible set; for any size ``k`` the best
  candidate set is the top-``k`` bidders, hence the maximal feasible set is
  the top-``k*`` prefix for the largest feasible ``k*``.)
* :class:`IncrementalShapley` — a persistent sorted-bid structure for the
  online mechanisms. Between slots only ``m`` bids change, so a slot step
  re-sorts nothing: each changed bid is spliced in or out of the sorted
  array with a bisect (O(log n) comparisons plus a C-speed ``memmove``),
  and the scan resumes from the top. Users forced by the online rules
  (once serviced, always serviced) are promoted out of the array exactly
  once, so maintaining the cumulative set is amortized O(1) per user.

Ties and tolerances follow :mod:`repro.utils.numeric` exactly, which is
what makes the engine bit-for-bit equivalent to the seed loop: the keep
rule is ``isclose_or_greater(bid, share)`` and the final price is the same
``C / k`` division.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from typing import Iterator, Mapping, Tuple

from repro.core.outcome import UserId
from repro.errors import MechanismError
from repro.utils.numeric import close, is_positive_finite, isclose_or_greater

__all__ = [
    "GATE_SLACK",
    "IncrementalShapley",
    "largest_affordable_prefix",
    "eviction_fixed_point",
    "eviction_rounds",
    "solve_shapley",
]

#: Slack factor of the feasibility gate: a profile is provably infeasible
#: when its bid total is below ``cost - GATE_SLACK * (n + 1) * (cost + 1)``.
#: The margin absorbs the keep rule's per-user tolerances (n times
#: ``ABS_TOL + REL_TOL * price``) plus the float drift of incrementally
#: maintained totals, with a 4x safety factor. Every copy of the gate —
#: :meth:`IncrementalShapley.settled`, the fused
#: :meth:`IncrementalShapley.apply_and_solve`, and the fleet scheduler's
#: precomputed flush slots (:mod:`repro.fleet.engine`) — must use this one
#: constant: fleet laziness is sound only while the gates agree.
GATE_SLACK = 4e-9


def largest_affordable_prefix(
    cost: float, vals: list, forced: int
) -> Tuple[int, float]:
    """Largest ``k`` such that the ``k``-th highest bid covers ``cost / k``.

    ``vals`` holds the finite positive bids in ascending order; ``forced``
    counts users with infinite bids (always in the serviced set). Returns
    ``(k, cost / k)``, or ``(0, 0.0)`` when no prefix is affordable.
    """
    n_finite = len(vals)
    for k in range(n_finite + forced, 0, -1):
        if k <= forced:
            return k, cost / k
        if isclose_or_greater(vals[n_finite - (k - forced)], cost / k):
            return k, cost / k
    return 0, 0.0


def eviction_fixed_point(
    cost: float, vals: list, forced: int
) -> Tuple[int, float, int]:
    """The eviction loop's fixed point, by trajectory replay.

    Every intermediate set of the seed loop is a value-threshold set, so
    the whole trajectory is determined by its sizes: one bisect per round
    replaces one set rebuild, giving O(rounds * log n) instead of
    O(rounds * n). Returns ``(size, price, rounds)`` — the same fixed point
    :func:`largest_affordable_prefix` characterizes in closed form, plus
    the round count the :class:`~repro.core.outcome.ShapleyResult` trace
    reports.
    """
    size = len(vals) + forced
    rounds = 0
    while size:
        rounds += 1
        price = cost / size
        idx = bisect_left(vals, price)
        while idx > 0 and close(vals[idx - 1], price):
            idx -= 1
        survivors = forced + len(vals) - idx
        if survivors == size:
            return size, price, rounds
        size = survivors
    return 0, 0.0, rounds


def eviction_rounds(cost: float, vals: list, forced: int) -> int:
    """Rounds the seed eviction loop would take on the same profile."""
    return eviction_fixed_point(cost, vals, forced)[2]


def solve_shapley(
    cost: float, bids: Mapping[UserId, float]
) -> Tuple[frozenset, float, int]:
    """One-shot solve: validate, sort once, scan once.

    Returns ``(serviced, price, rounds)``; the caller wraps them in a
    :class:`~repro.core.outcome.ShapleyResult`. The serviced set and price
    come from the descending scan; the round count needs the trajectory
    replay (:func:`eviction_fixed_point`) — both are O(n - k) or better
    after the sort, which dominates.
    """
    vals: list = []
    forced = 0
    for user, bid in bids.items():
        if bid < 0 or math.isnan(bid):
            raise MechanismError(f"bid for user {user!r} must be >= 0, got {bid}")
        if math.isinf(bid):
            forced += 1
        elif bid > 0:
            vals.append(bid)
    vals.sort()
    k, price = largest_affordable_prefix(cost, vals, forced)
    rounds = eviction_rounds(cost, vals, forced)
    if k == 0:
        return frozenset(), 0.0, rounds
    serviced = frozenset(
        user for user, bid in bids.items() if isclose_or_greater(bid, price)
    )
    return serviced, price, rounds


class IncrementalShapley:
    """Persistent Shapley engine for one optimization.

    Holds the current bid of every tracked user in a sorted array so that a
    slot with ``m`` changed bids costs ``m`` splices instead of a full
    re-sort, plus the forced set of users the online mechanisms pin into
    the outcome (infinite residual bids).

    The bulk entry point :meth:`set_bids` falls back to a wholesale rebuild
    when most of the profile changed, so batch replays never degrade below
    the one-shot sort.
    """

    __slots__ = ("cost", "_bids", "_forced", "_vals", "_users_at", "_total")

    def __init__(self, cost: float) -> None:
        if not is_positive_finite(cost):
            raise MechanismError(f"optimization cost must be positive, got {cost}")
        self.cost = cost
        self._bids: dict = {}  # user -> current finite bid (>= 0)
        self._forced: set = set()  # users pinned into every outcome
        self._vals: list = []  # ascending sorted positive finite bids
        self._users_at: dict = {}  # bid value -> set of users at that value
        self._total = 0.0  # running sum of _vals (for the settled gate)

    # ------------------------------------------------------------- updates --

    def set_bid(self, user: UserId, bid: float) -> None:
        """Declare/replace one user's bid; no-op when unchanged or forced.

        An infinite bid forces the user. Forced users ignore later finite
        updates — the online rules never release a serviced user.
        """
        bid = float(bid)
        if bid < 0 or math.isnan(bid):
            raise MechanismError(f"bid for user {user!r} must be >= 0, got {bid}")
        if user in self._forced:
            return
        if math.isinf(bid):
            self.force(user)
            return
        old = self._bids.get(user)
        if old == bid:
            return
        if old is not None and old > 0:
            self._splice_out(old, user)
        self._bids[user] = bid
        if bid > 0:
            insort(self._vals, bid)
            self._users_at.setdefault(bid, set()).add(user)
            self._total += bid

    def set_bids(self, updates: Mapping[UserId, float]) -> None:
        """Apply many bid updates, rebuilding wholesale when cheaper.

        Splicing the sorted array per update wins while the delta is small
        against the tracked population; past that, one C-speed re-sort
        beats per-item memmoves, so a bulk delta never degrades below the
        one-shot solve.
        """
        self.update_bids(updates)

    def update_bids(self, updates: Mapping[UserId, float]) -> tuple:
        """Apply many bid updates; returns the users newly forced by ``inf``.

        Same state transition as :meth:`set_bids` (it is the implementation
        behind it), but reports which users crossed into the forced set
        because this batch carried an infinite bid — the online mechanisms
        must surface those alongside promotions.
        """
        newly_forced: list = []
        if len(updates) > max(16, len(self._bids) // 4):
            # Validate the whole batch before touching any state, so a bad
            # entry cannot leave _bids out of sync with the sorted array.
            for user, bid in updates.items():
                bid = float(bid)
                if bid < 0 or math.isnan(bid):
                    raise MechanismError(
                        f"bid for user {user!r} must be >= 0, got {bid}"
                    )
            changed = False
            for user, bid in updates.items():
                bid = float(bid)
                if user in self._forced:
                    continue
                if math.isinf(bid):
                    self._bids.pop(user, None)
                    self._forced.add(user)
                    newly_forced.append(user)
                    changed = True
                elif self._bids.get(user) != bid:
                    self._bids[user] = bid
                    changed = True
            if changed:
                self._rebuild()
            return tuple(newly_forced)
        forced = self._forced
        for user, bid in updates.items():
            bid = float(bid)
            if bid < 0 or math.isnan(bid):
                raise MechanismError(
                    f"bid for user {user!r} must be >= 0, got {bid}"
                )
            if user in forced:
                continue
            self.set_bid(user, bid)
            if bid == math.inf:
                newly_forced.append(user)
        return tuple(newly_forced)

    def apply_and_solve(self, updates: Mapping[UserId, float]) -> tuple | None:
        """Fused update + gate + solve + promote — the fleet hot path.

        Applies ``updates`` like :meth:`update_bids`, then decides the slot
        in one go. Returns ``None`` when the outcome provably did not move
        (the serviced set is still exactly the forced set and the cached
        price stands), else ``(k, price, newly)`` with ``newly`` the
        non-empty frozenset of users newly pinned into the serviced set
        (promotions plus explicit ``inf`` bids). The splice loop is inlined
        because the fleet dispatcher crosses it hundreds of thousands of
        times per run; the state transition is identical to
        :meth:`set_bid` applied per entry.
        """
        newly_forced: list | None = None
        bids = self._bids
        if len(updates) > max(16, len(bids) // 4):
            forced_batch = self.update_bids(updates)
            if forced_batch:
                newly_forced = list(forced_batch)
        else:
            forced = self._forced
            vals = self._vals
            users_at = self._users_at
            total = self._total
            inf = math.inf
            for user, bid in updates.items():
                bid = float(bid)
                if bid < 0.0 or bid != bid:
                    self._total = total
                    raise MechanismError(
                        f"bid for user {user!r} must be >= 0, got {bid}"
                    )
                if user in forced:
                    continue
                if bid == inf:
                    old = bids.pop(user, None)
                    if old is not None and old > 0.0:
                        vals.pop(bisect_left(vals, old))
                        at_old = users_at[old]
                        at_old.discard(user)
                        if not at_old:
                            del users_at[old]
                        total = total - old if vals else 0.0
                    forced.add(user)
                    if newly_forced is None:
                        newly_forced = [user]
                    else:
                        newly_forced.append(user)
                    continue
                old = bids.get(user)
                if old == bid:
                    continue
                if old is not None and old > 0.0:
                    vals.pop(bisect_left(vals, old))
                    at_old = users_at[old]
                    at_old.discard(user)
                    if not at_old:
                        del users_at[old]
                    total = total - old if vals else 0.0
                bids[user] = bid
                if bid > 0.0:
                    insort(vals, bid)
                    at_bid = users_at.get(bid)
                    if at_bid is None:
                        users_at[bid] = {user}
                    else:
                        at_bid.add(user)
                    total += bid
            self._total = total

        cost = self.cost
        vals = self._vals
        n_forced = len(self._forced)
        n = len(vals)
        if not n:
            settled = True
        elif n_forced:
            settled = not isclose_or_greater(vals[-1], cost / (n_forced + n))
        else:
            settled = self._total < cost - GATE_SLACK * (n + 1.0) * (cost + 1.0)
        if settled:
            if not newly_forced:
                return None
            return n_forced, cost / n_forced, frozenset(newly_forced)
        k, price, _ = eviction_fixed_point(cost, vals, n_forced)
        if not k:
            return None  # k == 0 implies no forced users: nothing changed
        newly = self.promote_serviced(price)
        if newly_forced:
            newly |= frozenset(newly_forced)
        if not newly:
            return None  # k == forced count: price is the cached cost / k
        return k, price, newly

    def remove(self, user: UserId) -> None:
        """Forget a user entirely (including a forced one)."""
        old = self._bids.pop(user, None)
        if old is not None and old > 0:
            self._splice_out(old, user)
        self._forced.discard(user)

    def force(self, user: UserId) -> None:
        """Pin ``user`` into every future serviced set (infinite bid)."""
        if user in self._forced:
            return
        old = self._bids.pop(user, None)
        if old is not None and old > 0:
            self._splice_out(old, user)
        self._forced.add(user)

    def _splice_out(self, value: float, user: UserId) -> None:
        self._vals.pop(bisect_left(self._vals, value))
        users = self._users_at[value]
        users.discard(user)
        if not users:
            del self._users_at[value]
        # An empty array re-anchors the running sum exactly, so drift from
        # incremental +=/-= churn cannot accumulate across games.
        self._total = self._total - value if self._vals else 0.0

    def _rebuild(self) -> None:
        self._vals = sorted(v for v in self._bids.values() if v > 0)
        self._users_at = {}
        for user, bid in self._bids.items():
            if bid > 0:
                self._users_at.setdefault(bid, set()).add(user)
        self._total = float(sum(self._vals))

    # ------------------------------------------------------------- queries --

    @property
    def forced(self) -> frozenset:
        """The users pinned into every outcome (read-only view)."""
        return frozenset(self._forced)

    def forced_count(self) -> int:
        """Number of forced users (no set materialization)."""
        return len(self._forced)

    def is_forced(self, user: UserId) -> bool:
        """O(1) membership test against the forced set."""
        return user in self._forced

    def tracked(self) -> Iterator[UserId]:
        """The non-forced users currently holding a declared bid."""
        return iter(self._bids)

    def __len__(self) -> int:
        return len(self._bids) + len(self._forced)

    def solve(self) -> Tuple[int, float]:
        """``(serviced size, common share)`` for the current profile.

        Uses the trajectory replay (O(rounds * log n)) rather than the
        descending scan: between slots the profile barely moves, so paying
        O(n - k) scan steps per slot would dwarf the O(m log n) updates.
        """
        size, price, _ = eviction_fixed_point(
            self.cost, self._vals, len(self._forced)
        )
        return size, price

    def rounds(self) -> int:
        """Seed-equivalent eviction round count for the current profile."""
        return eviction_rounds(self.cost, self._vals, len(self._forced))

    def solve_with_rounds(self) -> Tuple[int, float, int]:
        """``(size, price, rounds)`` from a single fixed-point replay."""
        return eviction_fixed_point(self.cost, self._vals, len(self._forced))

    def settled(self) -> bool:
        """O(1) proof that no tracked (non-forced) user can be serviced.

        When true, :meth:`solve` is guaranteed to return ``(forced,
        cost / forced)`` for a non-empty forced set and ``(0, 0.0)``
        otherwise, so callers may skip the solve and the promotion scan
        entirely. Two sound rejections back the claim:

        * forced set non-empty — every feasible size ``k = f + m`` with
          ``m >= 1`` needs the top tracked bid to pass the keep rule at
          ``cost / k >= cost / (f + n)``; ``isclose_or_greater`` is
          monotone in its threshold, so failing at the *smallest* possible
          share rules out every larger one exactly.
        * forced set empty — a serviced set of size ``k`` pays ``k`` shares
          of ``cost / k``, so the bids must sum to at least the cost (minus
          ``k`` keep-rule tolerances); a running total short of that, with a
          slack wide enough to absorb both the tolerances and the float
          drift of incremental updates, proves infeasibility.

        False never lies the other way — it only means the fast proof does
        not apply and the caller must solve.
        """
        vals = self._vals
        if not vals:
            return True
        forced = len(self._forced)
        if forced:
            return not isclose_or_greater(vals[-1], self.cost / (forced + len(vals)))
        slack = GATE_SLACK * (len(vals) + 1.0) * (self.cost + 1.0)
        return self._total < self.cost - slack

    def serviced(self, price: float) -> frozenset:
        """Materialize the serviced set at the given share."""
        out = set(self._forced)
        vals = self._vals
        idx = len(vals)
        last = None
        while idx > 0:
            value = vals[idx - 1]
            if not isclose_or_greater(value, price):
                break
            if value != last:
                out |= self._users_at[value]
                last = value
            idx -= 1
        return frozenset(out)

    def promote_serviced(self, price: float) -> frozenset:
        """Force every non-forced user whose bid covers ``price``.

        Returns the newly forced users. Each user crosses into the forced
        set at most once over an engine's lifetime, so the total promotion
        work is O(n) amortized across all slots.
        """
        newly: set = set()
        vals = self._vals
        while vals and isclose_or_greater(vals[-1], price):
            value = vals[-1]
            users = self._users_at.pop(value)
            while vals and vals[-1] == value:
                vals.pop()
                self._total -= value
            for user in users:
                del self._bids[user]
            self._forced |= users
            newly |= users
        if not vals:
            self._total = 0.0
        return frozenset(newly)
