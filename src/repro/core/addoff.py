"""AddOff — offline mechanism for additive optimizations (Section 4.2).

With additive valuations each optimization is an independent cost-sharing
game, so AddOff simply runs the Shapley Value Mechanism once per
optimization and sums the per-optimization payments. Truthfulness and
cost-recovery are inherited directly from Mechanism 1.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.outcome import AddOffOutcome, OptId, ShapleyResult, UserId
from repro.core.shapley import run_shapley
from repro.errors import MechanismError

__all__ = ["run_addoff"]


def run_addoff(
    costs: Mapping[OptId, float],
    bids: Mapping[OptId, Mapping[UserId, float]],
) -> AddOffOutcome:
    """Run AddOff over a set of additive optimizations.

    Parameters
    ----------
    costs:
        Cost ``C_j`` per optimization id.
    bids:
        For each optimization id, the users' scalar bids for it. An
        optimization missing from ``bids`` is treated as having no bidders
        (it is never implemented).

    Returns
    -------
    AddOffOutcome
        Per-optimization Shapley results plus aggregate payment helpers.
    """
    unknown = set(bids) - set(costs)
    if unknown:
        raise MechanismError(f"bids reference unknown optimizations: {sorted(map(str, unknown))}")
    results: dict[OptId, ShapleyResult] = {}
    for optimization, cost in costs.items():
        results[optimization] = run_shapley(cost, bids.get(optimization, {}))
    return AddOffOutcome(results=results, costs=dict(costs))
