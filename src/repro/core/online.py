"""Incremental per-slot state machines for the online mechanisms.

The batch runners (:func:`repro.core.addon.run_addon`,
:func:`repro.core.subston.run_subston`) replay a complete bid profile; the
cloud-service simulator (:mod:`repro.cloudsim`) instead advances slot by
slot as agents arrive, revise and depart. Both share these state machines,
which encode the two rules that make the mechanisms work online:

* previously serviced users are *forced* (infinite residual bid) so the
  cumulative set only grows and shares only shrink;
* in the substitutable case a granted user is additionally *locked* to her
  optimization (zero bids elsewhere) so she can never switch.

Both states are backed by :class:`repro.core.fastshapley.IncrementalShapley`
engines that keep the bid profile sorted between slots. Two entry points
per state:

* ``step(t, full_profile)`` — the compatibility path used by the batch
  runners: the caller hands over every bid it wants considered and the
  state diffs it against the stored profile (users present last slot but
  omitted now are dropped, exactly as the seed recomputation treated them).
* ``step_changed(t, changes)`` — the incremental path: only the bids that
  actually changed are handed over, everything else persists, and the
  returned delta carries just what changed, so a slot with ``m`` changed
  bids costs O(m log n) instead of a full recomputation over all ``n``
  users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.fastshapley import IncrementalShapley
from repro.core.outcome import OptId, ShapleyResult, SubstOffOutcome, UserId
from repro.errors import MechanismError
from repro.utils.numeric import close, is_positive_finite
from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "AddOnState",
    "AddOnSlotDelta",
    "SubstOnState",
    "SubstOnSlotDelta",
    "step_changed_many",
]


@dataclass(frozen=True)
class AddOnSlotDelta:
    """What one incremental AddOn slot changed.

    ``newly_serviced`` holds only the users that entered the cumulative set
    this slot, so consuming a delta is O(changes), never O(n).
    """

    slot: int
    price: float
    serviced_count: int
    newly_serviced: frozenset


@dataclass(frozen=True)
class SubstOnSlotDelta:
    """What one incremental SubstOn slot changed."""

    slot: int
    shares: Mapping[OptId, float]
    new_grants: Mapping[UserId, OptId]
    new_implementations: tuple


class AddOnState:
    """Slot-by-slot evolution of AddOn for a single optimization."""

    def __init__(self, cost: float) -> None:
        if not is_positive_finite(cost):
            raise MechanismError(f"optimization cost must be positive, got {cost}")
        self.cost = cost
        self.price: float = 0.0
        self.implemented_at: int | None = None
        self._engine = IncrementalShapley(cost)
        self._slot = 0

    @property
    def implemented(self) -> bool:
        """True once some slot's residuals covered the cost."""
        return self.implemented_at is not None

    @property
    def cumulative(self) -> frozenset:
        """``CS_j`` — every user serviced so far (they are the forced set)."""
        return self._engine.forced

    def is_cumulative(self, user: UserId) -> bool:
        """O(1) membership test against ``CS_j`` (no set materialization)."""
        return self._engine.is_forced(user)

    def _advance_to(self, t: int) -> None:
        if t <= self._slot:
            raise MechanismError(f"slots must advance; got {t} after {self._slot}")
        self._slot = t

    def step(self, t: int, residual_bids: Mapping[UserId, float]) -> ShapleyResult:
        """Advance to slot ``t`` with the complete residual-bid profile.

        ``residual_bids`` must cover every user the caller wants considered
        (users in the cumulative set are forced regardless of their entry,
        and may be omitted; tracked users omitted here stop being
        considered). Slots must be visited in increasing order.
        """
        self._advance_to(t)
        engine = self._engine
        dropped = [u for u in engine.tracked() if u not in residual_bids]
        engine.set_bids(residual_bids)
        for user in dropped:
            engine.set_bid(user, 0.0)

        k, price, rounds = engine.solve_with_rounds()
        if k:
            engine.promote_serviced(price)
            self.price = price
        else:
            self.price = 0.0
        if self.implemented_at is None and k:
            self.implemented_at = t
        serviced = engine.forced
        payments = {user: price for user in serviced} if k else {}
        return ShapleyResult(serviced, self.price, payments, rounds)

    def step_changed(
        self, t: int, changed_bids: Mapping[UserId, float]
    ) -> AddOnSlotDelta:
        """Advance to slot ``t`` applying only the bids that changed.

        Bids not mentioned persist from the previous slot. Cost is
        O(m log n) for ``m`` entries in ``changed_bids`` (promotion into
        the cumulative set is amortized O(1) per user over the whole game).
        """
        result = self.apply_changes(t, changed_bids)
        if result is None:
            # Provably unchanged slot: the serviced set is exactly the
            # forced set and the price is the cached one.
            return AddOnSlotDelta(
                slot=t,
                price=self.price,
                serviced_count=self._engine.forced_count(),
                newly_serviced=frozenset(),
            )
        price, serviced_count, newly = result
        return AddOnSlotDelta(
            slot=t, price=price, serviced_count=serviced_count, newly_serviced=newly
        )

    def apply_changes(
        self, t: int, changed_bids: Mapping[UserId, float]
    ) -> tuple | None:
        """The lean batch entry point behind :meth:`step_changed`.

        Same state transition, but returns ``None`` when the slot provably
        changed nothing (no new grants, price already cached) and a bare
        ``(price, serviced_count, newly_serviced)`` tuple otherwise — no
        delta object is allocated on the no-change path, which is what the
        fleet dispatcher hammers hundreds of thousands of times per run.

        The no-change proof is :meth:`IncrementalShapley.settled`: when it
        holds, the fixed point is exactly the forced set, so the solve and
        the promotion scan are skipped outright and a slot costs only its
        O(m log n) bid splices. Both the gate and the solve live in the
        engine's fused :meth:`IncrementalShapley.apply_and_solve`.
        """
        if t <= self._slot:
            raise MechanismError(f"slots must advance; got {t} after {self._slot}")
        self._slot = t
        result = self._engine.apply_and_solve(changed_bids)
        if result is None:
            return None
        k, price, newly = result  # non-None implies k >= 1 and newly != {}
        self.price = price
        if self.implemented_at is None:
            self.implemented_at = t
        return price, k, newly

    def exit_price(self, user: UserId) -> float:
        """What ``user`` owes if she departs now (her current cost-share)."""
        # Direct membership test against the engine's forced set: the fleet
        # invoices every departure through here, so no method hops.
        return self.price if user in self._engine._forced else 0.0


def step_changed_many(
    states: Mapping[OptId, AddOnState],
    t: int,
    changed: Mapping[OptId, Mapping[UserId, float]],
) -> dict[OptId, AddOnSlotDelta]:
    """Advance many independent AddOn games one slot in a single call.

    The additive mechanisms are independent per optimization, so a fleet
    slot is just each changed game stepped once; games absent from
    ``changed`` are untouched (their states accept slot gaps). Returns one
    :class:`AddOnSlotDelta` per stepped game, keyed like ``changed``.

    This is the semantic batch API; the fleet dispatcher in
    :mod:`repro.fleet.engine` uses the allocation-free
    :meth:`AddOnState.apply_changes` underneath for its hot loop.
    """
    return {
        j: states[j].step_changed(t, residuals) for j, residuals in changed.items()
    }


class SubstOnState:
    """Slot-by-slot evolution of SubstOn across an optimization pool.

    One :class:`IncrementalShapley` engine per optimization holds the
    current residual-bid column; the per-slot SubstOff phase loop solves
    each engine (a scan over already-sorted bids) instead of rebuilding the
    full bid matrix. Granting a user locks her permanently: she is forced
    on her optimization's engine and removed from every other, which is
    exactly the paper's inf-on-own / zero-elsewhere locking rule.
    """

    def __init__(
        self,
        costs: Mapping[OptId, float],
        rng: RngLike = None,
        randomize_ties: bool = False,
    ) -> None:
        for optimization, cost in costs.items():
            if not is_positive_finite(cost):
                raise MechanismError(
                    f"cost of {optimization!r} must be positive, got {cost}"
                )
        self.costs = dict(costs)
        self.grants: dict[UserId, OptId] = {}
        self.granted_at: dict[UserId, int] = {}
        self.implemented_at: dict[OptId, int] = {}
        self.shares: dict[OptId, float] = {}
        self._engines = {j: IncrementalShapley(c) for j, c in self.costs.items()}
        self._known: set = set()  # unserviced users with a stored row
        self._rng = rng
        self._randomize_ties = randomize_ties
        self._slot = 0

    def _advance_to(self, t: int) -> None:
        if t <= self._slot:
            raise MechanismError(f"slots must advance; got {t} after {self._slot}")
        self._slot = t

    def _store_row(self, user: UserId, row: Mapping[OptId, float]) -> None:
        unknown = set(row) - set(self.costs)
        if unknown:
            raise MechanismError(
                f"user {user!r} bids on unknown optimizations: "
                f"{sorted(map(str, unknown))}"
            )
        for j, engine in self._engines.items():
            engine.set_bid(user, float(row.get(j, 0.0)))
        self._known.add(user)

    def step(
        self, t: int, residual_bids: Mapping[UserId, Mapping[OptId, float]]
    ) -> SubstOffOutcome:
        """Advance to slot ``t``; returns the slot's SubstOff outcome.

        ``residual_bids`` holds each unserviced user's residual value per
        optimization (zero rows for unseen users are fine and equivalent to
        omission); granted users are forced/locked internally. Known
        unserviced users omitted from the mapping stop being considered.
        """
        self._advance_to(t)
        for user in [u for u in self._known if u not in residual_bids]:
            self.retire(user)
        for user, row in residual_bids.items():
            if user in self.grants:
                continue
            self._store_row(user, row)
        new_grants, new_impls, slot_shares, phase_order = self._run_phases(t)
        payments = {
            user: slot_shares[optimization]
            for user, optimization in self.grants.items()
        }
        return SubstOffOutcome(
            costs=dict(self.costs),
            implemented=tuple(phase_order),
            grants=dict(self.grants),
            payments=payments,
            shares=dict(slot_shares),
        )

    def step_changed(
        self, t: int, changed_rows: Mapping[UserId, Mapping[OptId, float]]
    ) -> SubstOnSlotDelta:
        """Advance to slot ``t`` applying only the rows that changed.

        Rows not mentioned persist from the previous slot; rows for granted
        users are ignored (they are locked). The returned delta carries the
        new grants and implementations only, so consuming it is O(changes).
        """
        self._advance_to(t)
        for user, row in changed_rows.items():
            if user in self.grants:
                continue
            self._store_row(user, row)
        new_grants, new_impls, slot_shares, _ = self._run_phases(t)
        return SubstOnSlotDelta(
            slot=t,
            shares=slot_shares,
            new_grants=new_grants,
            new_implementations=tuple(new_impls),
        )

    def retire(self, user: UserId) -> None:
        """Stop considering an unserviced user (her residuals reached 0).

        Granted users cannot be retired — the paper keeps departed users'
        forced bids in the denominator so later users' shares keep falling.
        """
        if user in self.grants:
            return
        for engine in self._engines.values():
            engine.remove(user)
        self._known.discard(user)

    def _run_phases(self, t: int):
        """The SubstOff phase loop over the persistent engines.

        Each phase solves every not-yet-chosen optimization, implements the
        feasible one with the smallest cost-share (ties broken by ``costs``
        order, or uniformly at random when ``randomize_ties``), locks its
        serviced users, and repeats until nothing is feasible. Matches
        :func:`repro.core.substoff.run_substoff` decision-for-decision.
        """
        generator = ensure_rng(self._rng) if self._randomize_ties else None
        chosen_this_slot: set = set()
        phase_order: list = []
        slot_shares: dict[OptId, float] = {}
        new_grants: dict[UserId, OptId] = {}
        new_impls: list = []

        while True:
            feasible: list[tuple[OptId, float]] = []
            for j in self.costs:
                if j in chosen_this_slot:
                    continue
                engine = self._engines[j]
                if engine.settled():
                    # Fixed point is exactly the forced set: infeasible when
                    # it is empty, and ``cost / forced`` (the same division
                    # the solve would perform) otherwise — no scan needed.
                    forced = engine.forced_count()
                    if forced:
                        feasible.append((j, engine.cost / forced))
                    continue
                k, price = engine.solve()
                if k:
                    feasible.append((j, price))
            if not feasible:
                break

            min_share = min(price for _, price in feasible)
            tied = [j for j, price in feasible if close(price, min_share)]
            if generator is not None and len(tied) > 1:
                chosen = tied[int(generator.integers(len(tied)))]
            else:
                chosen = tied[0]
            share = next(price for j, price in feasible if j == chosen)

            engine = self._engines[chosen]
            for user in engine.serviced(share):
                if user in self.grants:
                    continue
                self.grants[user] = chosen
                self.granted_at[user] = t
                self._known.discard(user)
                new_grants[user] = chosen
                engine.force(user)
                for other, other_engine in self._engines.items():
                    if other != chosen:
                        other_engine.remove(user)
            if chosen not in self.implemented_at:
                self.implemented_at[chosen] = t
                new_impls.append(chosen)
            slot_shares[chosen] = share
            phase_order.append(chosen)
            chosen_this_slot.add(chosen)

        self.shares = dict(slot_shares)
        return new_grants, new_impls, slot_shares, phase_order

    def exit_price(self, user: UserId) -> float:
        """What ``user`` owes if she departs now."""
        optimization = self.grants.get(user)
        if optimization is None:
            return 0.0
        return self.shares.get(optimization, 0.0)
