"""Incremental per-slot state machines for the online mechanisms.

The batch runners (:func:`repro.core.addon.run_addon`,
:func:`repro.core.subston.run_subston`) replay a complete bid profile; the
cloud-service simulator (:mod:`repro.cloudsim`) instead advances slot by
slot as agents arrive, revise and depart. Both share these state machines,
which encode the two rules that make the mechanisms work online:

* previously serviced users are *forced* (infinite residual bid) so the
  cumulative set only grows and shares only shrink;
* in the substitutable case a granted user is additionally *locked* to her
  optimization (zero bids elsewhere) so she can never switch.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.outcome import OptId, ShapleyResult, UserId
from repro.core.shapley import run_shapley
from repro.core.substoff import run_substoff
from repro.errors import MechanismError
from repro.utils.numeric import is_positive_finite_or_inf as _plain_positive
from repro.utils.rng import RngLike

__all__ = ["AddOnState", "SubstOnState"]

def _valid_cost(cost: float) -> bool:
    """Strictly positive, finite, non-NaN."""
    import math as _math

    return _plain_positive(cost) and not _math.isinf(cost)



class AddOnState:
    """Slot-by-slot evolution of AddOn for a single optimization."""

    def __init__(self, cost: float) -> None:
        if not _valid_cost(cost):
            raise MechanismError(f"optimization cost must be positive, got {cost}")
        self.cost = cost
        self.cumulative: frozenset = frozenset()
        self.price: float = 0.0
        self.implemented_at: int | None = None
        self._slot = 0

    @property
    def implemented(self) -> bool:
        """True once some slot's residuals covered the cost."""
        return self.implemented_at is not None

    def step(self, t: int, residual_bids: Mapping[UserId, float]) -> ShapleyResult:
        """Advance to slot ``t`` with the given residual bids.

        ``residual_bids`` must cover every user the caller wants considered
        (users in the cumulative set are forced regardless of their entry,
        and may be omitted). Slots must be visited in increasing order.
        """
        if t <= self._slot:
            raise MechanismError(
                f"slots must advance; got {t} after {self._slot}"
            )
        self._slot = t
        bids = {user: float(bid) for user, bid in residual_bids.items()}
        for user in self.cumulative:
            bids[user] = math.inf
        result = run_shapley(self.cost, bids)
        self.cumulative = result.serviced
        self.price = result.price
        if self.implemented_at is None and result.serviced:
            self.implemented_at = t
        return result

    def exit_price(self, user: UserId) -> float:
        """What ``user`` owes if she departs now (her current cost-share)."""
        return self.price if user in self.cumulative else 0.0


class SubstOnState:
    """Slot-by-slot evolution of SubstOn across an optimization pool."""

    def __init__(
        self,
        costs: Mapping[OptId, float],
        rng: RngLike = None,
        randomize_ties: bool = False,
    ) -> None:
        for optimization, cost in costs.items():
            if not _valid_cost(cost):
                raise MechanismError(
                    f"cost of {optimization!r} must be positive, got {cost}"
                )
        self.costs = dict(costs)
        self.grants: dict[UserId, OptId] = {}
        self.granted_at: dict[UserId, int] = {}
        self.implemented_at: dict[OptId, int] = {}
        self.shares: dict[OptId, float] = {}
        self._rng = rng
        self._randomize_ties = randomize_ties
        self._slot = 0

    def step(
        self, t: int, residual_bids: Mapping[UserId, Mapping[OptId, float]]
    ):
        """Advance to slot ``t``; returns the slot's SubstOff outcome.

        ``residual_bids`` holds each unserviced user's residual value per
        optimization (zero rows for unseen users are fine and equivalent to
        omission); granted users are forced/locked internally.
        """
        if t <= self._slot:
            raise MechanismError(f"slots must advance; got {t} after {self._slot}")
        self._slot = t
        matrix: dict[UserId, dict[OptId, float]] = {}
        for user, row in residual_bids.items():
            if user in self.grants:
                continue
            unknown = set(row) - set(self.costs)
            if unknown:
                raise MechanismError(
                    f"user {user!r} bids on unknown optimizations: "
                    f"{sorted(map(str, unknown))}"
                )
            matrix[user] = dict(row)
        for user, locked in self.grants.items():
            row = {j: 0.0 for j in self.costs}
            row[locked] = math.inf
            matrix[user] = row

        outcome = run_substoff(
            self.costs, matrix, rng=self._rng, randomize_ties=self._randomize_ties
        )
        for user, optimization in outcome.grants.items():
            if user not in self.grants:
                self.grants[user] = optimization
                self.granted_at[user] = t
            if optimization not in self.implemented_at:
                self.implemented_at[optimization] = t
        self.shares = dict(outcome.shares)
        return outcome

    def exit_price(self, user: UserId) -> float:
        """What ``user`` owes if she departs now."""
        optimization = self.grants.get(user)
        if optimization is None:
            return 0.0
        return self.shares.get(optimization, 0.0)
