"""Mechanism 2 — AddOn, the online mechanism for additive optimizations.

Users join and leave across slots ``1..z``. At every slot the mechanism
runs the Shapley Value Mechanism over *residual bids*
``b'_ij = sum_{tau >= t} b_ij(tau)`` for users already seen, ``infinity``
for users in the cumulative serviced set ``CS_j`` (once serviced, always
serviced), and ``0`` for users not yet seen. A user is actively serviced at
slot ``t`` when she belongs to ``CS_j(t)`` and has not left
(``t <= e_i``); she pays only at her departure slot ``e_i``, and she pays
the cost-share computed at that slot — the lowest share so far, since the
cumulative set only grows.

The mechanism is truthful in the model-free sense (Proposition 1) and
cost-recovering; later joiners shrink everyone's share while early leavers
pay their higher historical share, so the cloud may strictly over-recover
(paper Example 3: payments 175 against a cost of 100).
"""

from __future__ import annotations

from typing import Mapping, Union

from repro.bids.additive import AdditiveBid
from repro.bids.revision import RevisableBid
from repro.core.online import AddOnState
from repro.core.outcome import AddOnOutcome, UserId
from repro.errors import MechanismError
from repro.utils.numeric import is_positive_finite

__all__ = ["run_addon"]

BidLike = Union[AdditiveBid, RevisableBid]


def _view(bid: BidLike, t: int) -> AdditiveBid:
    """The bid as the cloud sees it at slot ``t`` (supports revisions)."""
    if isinstance(bid, RevisableBid):
        if t < bid.declared_at:
            # Not yet declared: behave as unseen (the caller prunes via s_i).
            return bid.current
        return bid.as_of(t)
    return bid


def _start(bid: BidLike) -> int:
    """The entry slot ``s_i``; Mechanism 2 prunes users with ``t < s_i``.

    A revisable bid may be declared before its interval begins, but the
    paper includes a user's residual only from ``s_i`` onwards (line 6 of
    Mechanism 2), so pruning keys on the interval start. Revisions cannot
    move the start, so the current view's start is authoritative.
    """
    if isinstance(bid, RevisableBid):
        return bid.current.start
    return bid.start


def run_addon(
    cost: float,
    bids: Mapping[UserId, BidLike],
    horizon: int | None = None,
) -> AddOnOutcome:
    """Run the AddOn Mechanism for a single additive optimization.

    Parameters
    ----------
    cost:
        The fixed optimization cost ``C_j`` covering implementation plus
        maintenance for the whole period ``T``.
    bids:
        One :class:`AdditiveBid` (or :class:`RevisableBid`) per user.
    horizon:
        Number of slots ``z``. Defaults to the latest departure slot among
        the bids; must be at least that to guarantee every user pays.

    Returns
    -------
    AddOnOutcome
        Per-slot serviced/cumulative sets, price trace, and final payments.
    """
    if not is_positive_finite(cost):
        raise MechanismError(f"optimization cost must be positive, got {cost}")
    if not bids:
        horizon = horizon or 0
        return AddOnOutcome(
            cost=cost,
            horizon=horizon,
            serviced_by_slot=tuple([frozenset()] * (horizon + 1)),
            cumulative_by_slot=tuple([frozenset()] * (horizon + 1)),
            price_by_slot=tuple([0.0] * (horizon + 1)),
            payments={},
            implemented_at=None,
        )

    if horizon is None:
        horizon = max(
            b.current.end if isinstance(b, RevisableBid) else b.end
            for b in bids.values()
        )
    if horizon < 1:
        raise MechanismError(f"horizon must be >= 1, got {horizon}")

    state = AddOnState(cost)
    serviced_by_slot: list[frozenset] = [frozenset()]
    cumulative_by_slot: list[frozenset] = [frozenset()]
    price_by_slot: list[float] = [0.0]
    payments: dict[UserId, float] = {}

    for t in range(1, horizon + 1):
        residual_bids: dict[UserId, float] = {}
        for user, bid in bids.items():
            if t >= _start(bid):
                residual_bids[user] = _view(bid, t).residual(t)
            else:
                residual_bids[user] = 0.0  # prune users not yet seen

        result = state.step(t, residual_bids)
        active = frozenset(
            user for user in state.cumulative if t <= _view(bids[user], t).end
        )
        serviced_by_slot.append(active)
        cumulative_by_slot.append(state.cumulative)
        price_by_slot.append(result.price)

        for user, bid in bids.items():
            if _view(bid, t).end == t:
                payments[user] = result.payment(user)

    return AddOnOutcome(
        cost=cost,
        horizon=horizon,
        serviced_by_slot=tuple(serviced_by_slot),
        cumulative_by_slot=tuple(cumulative_by_slot),
        price_by_slot=tuple(price_by_slot),
        payments=payments,
        implemented_at=state.implemented_at,
    )
