"""The paper's mechanisms (Sections 4-6) and their outcome types.

* :func:`~repro.core.shapley.run_shapley` — Mechanism 1, the Shapley Value
  Mechanism for a single optimization in a single slot.
* :func:`~repro.core.addoff.run_addoff` — AddOff, offline additive games.
* :func:`~repro.core.addon.run_addon` — Mechanism 2, online additive games.
* :func:`~repro.core.substoff.run_substoff` — Mechanism 3, offline
  substitutable games.
* :func:`~repro.core.subston.run_subston` — Mechanism 4, online
  substitutable games.
* :mod:`~repro.core.accounting` — utility / payment / balance bookkeeping
  shared by the mechanisms and the experiment drivers.
* :mod:`~repro.core.fastshapley` — the sort-once/single-scan solver and the
  :class:`~repro.core.fastshapley.IncrementalShapley` engine that keeps the
  online mechanisms' per-slot work proportional to what changed. Its fused
  :meth:`~repro.core.fastshapley.IncrementalShapley.apply_and_solve` (with
  the O(1) :meth:`~repro.core.fastshapley.IncrementalShapley.settled`
  feasibility gate) backs the batch entry points
  :meth:`~repro.core.online.AddOnState.apply_changes` and
  :func:`~repro.core.online.step_changed_many` that the fleet dispatcher
  (:mod:`repro.fleet`) drives.
"""

from repro.core.outcome import (
    AddOffOutcome,
    AddOnOutcome,
    ShapleyResult,
    SubstOffOutcome,
    SubstOnOutcome,
)
from repro.core.fastshapley import IncrementalShapley
from repro.core.moulin import equal_shares, run_moulin, weighted_shares
from repro.core.online import AddOnState, SubstOnState, step_changed_many
from repro.core.shapley import run_shapley
from repro.core.addoff import run_addoff
from repro.core.addon import run_addon
from repro.core.substoff import run_substoff
from repro.core.subston import run_subston
from repro.core import accounting

__all__ = [
    "ShapleyResult",
    "AddOffOutcome",
    "AddOnOutcome",
    "SubstOffOutcome",
    "SubstOnOutcome",
    "run_shapley",
    "run_addoff",
    "run_addon",
    "run_substoff",
    "run_subston",
    "AddOnState",
    "SubstOnState",
    "step_changed_many",
    "IncrementalShapley",
    "run_moulin",
    "equal_shares",
    "weighted_shares",
    "accounting",
]
