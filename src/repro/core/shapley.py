"""Mechanism 1 — the Shapley Value Mechanism (paper Section 4.1).

Given one optimization with cost ``C_j`` and one bid per user, find the
largest set ``S_j`` of users such that every member's bid covers the even
split ``C_j / |S_j|``. Start from all users, repeatedly divide the cost
evenly and evict users whose bid falls below the share, until the set is
stable (or empty). Serviced users all pay the same share; everyone else
pays nothing; an empty set means the optimization is not implemented.

The mechanism is cost-recovering by construction (serviced payments sum to
exactly ``C_j``) and truthful (Moulin & Shenker 2001): underbidding can only
evict you, overbidding can only leave you paying more than your value.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.outcome import ShapleyResult, UserId
from repro.errors import MechanismError
from repro.utils.numeric import is_positive_finite_or_inf, isclose_or_greater

__all__ = ["run_shapley"]


def run_shapley(cost: float, bids: Mapping[UserId, float]) -> ShapleyResult:
    """Run the Shapley Value Mechanism for one optimization.

    Parameters
    ----------
    cost:
        The optimization cost ``C_j``; must be strictly positive (the paper
        assumes ``C_j > 0`` — a free optimization needs no mechanism).
    bids:
        Declared value per user. ``math.inf`` is a legal bid: the online
        mechanisms force previously-serviced users into the set this way.

    Returns
    -------
    ShapleyResult
        Serviced set, the common per-user price, and per-user payments.
    """
    if not is_positive_finite_or_inf(cost) or math.isinf(cost):
        raise MechanismError(f"optimization cost must be positive, got {cost}")
    for user, bid in bids.items():
        if bid < 0 or math.isnan(bid):
            raise MechanismError(f"bid for user {user!r} must be >= 0, got {bid}")

    # Users bidding 0 can never afford a positive share; dropping them first
    # does not change the fixed point (the iteration removes them in round
    # one regardless) but avoids a wasted pass.
    serviced = {user for user, bid in bids.items() if bid > 0}
    price = 0.0
    rounds = 0
    while serviced:
        rounds += 1
        price = cost / len(serviced)
        keep = {user for user in serviced if isclose_or_greater(bids[user], price)}
        if keep == serviced:
            break
        serviced = keep

    if not serviced:
        return ShapleyResult(frozenset(), 0.0, {}, rounds)
    payments = {user: price for user in serviced}
    return ShapleyResult(frozenset(serviced), price, payments, rounds)
