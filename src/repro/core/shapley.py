"""Mechanism 1 — the Shapley Value Mechanism (paper Section 4.1).

Given one optimization with cost ``C_j`` and one bid per user, find the
largest set ``S_j`` of users such that every member's bid covers the even
split ``C_j / |S_j|``. Serviced users all pay the same share; everyone else
pays nothing; an empty set means the optimization is not implemented.

The paper states the mechanism as an iterative eviction loop (start from
all users, divide the cost evenly, evict users whose bid falls below the
share, repeat until stable). The loop's fixed point has a closed form: with
bids sorted descending, it is the top-``k`` prefix for the largest ``k``
with ``bid[k-1] >= C_j / k``. :mod:`repro.core.fastshapley` implements that
sort-once, single-scan algorithm; this module is the thin public facade
keeping the original signature.

The mechanism is cost-recovering by construction (serviced payments sum to
exactly ``C_j``) and truthful (Moulin & Shenker 2001): underbidding can only
evict you, overbidding can only leave you paying more than your value.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.fastshapley import solve_shapley
from repro.core.outcome import ShapleyResult, UserId
from repro.errors import MechanismError
from repro.utils.numeric import is_positive_finite

__all__ = ["run_shapley"]


def run_shapley(cost: float, bids: Mapping[UserId, float]) -> ShapleyResult:
    """Run the Shapley Value Mechanism for one optimization.

    Parameters
    ----------
    cost:
        The optimization cost ``C_j``; must be strictly positive (the paper
        assumes ``C_j > 0`` — a free optimization needs no mechanism).
    bids:
        Declared value per user. ``math.inf`` is a legal bid: the online
        mechanisms force previously-serviced users into the set this way.

    Returns
    -------
    ShapleyResult
        Serviced set, the common per-user price, and per-user payments.
        ``rounds`` is the number of rounds the paper's eviction loop would
        take on the same profile (part of the mechanism trace).
    """
    if not is_positive_finite(cost):
        raise MechanismError(f"optimization cost must be positive, got {cost}")
    serviced, price, rounds = solve_shapley(cost, bids)
    if not serviced:
        return ShapleyResult(frozenset(), 0.0, {}, rounds)
    payments = {user: price for user in serviced}
    return ShapleyResult(serviced, price, payments, rounds)
