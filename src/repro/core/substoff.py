"""Mechanism 3 — SubstOff, offline mechanism for substitutable optimizations.

Works in phases. Each phase runs the Shapley Value Mechanism independently
for every still-available optimization over the still-unserviced users,
then implements the *feasible* optimization with the smallest cost-share.
Users serviced by it are granted access, pay the share, and drop out of all
later phases (their bids are zeroed — a substitutable user gains nothing
from a second grant). The implemented optimization's cost is set to
infinity so it is never reconsidered. The loop ends when no optimization is
feasible.

Ties on the minimum cost-share are broken uniformly at random when an
``rng`` is supplied (the paper's Example 7 assumes a random choice), and by
first appearance in the ``costs`` mapping otherwise, which keeps unit tests
deterministic.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.outcome import OptId, SubstOffOutcome, UserId
from repro.core.shapley import run_shapley
from repro.errors import MechanismError
from repro.utils.numeric import close
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["run_substoff"]


def run_substoff(
    costs: Mapping[OptId, float],
    bids: Mapping[UserId, Mapping[OptId, float]],
    rng: RngLike = None,
    randomize_ties: bool = False,
) -> SubstOffOutcome:
    """Run SubstOff over substitutable optimizations.

    Parameters
    ----------
    costs:
        Cost ``C_j`` per optimization.
    bids:
        Bid matrix ``b_ij``: for each user, her declared value per
        optimization. A substitutable bid ``(J_i, v_i)`` corresponds to the
        row holding ``v_i`` on every ``j in J_i`` and 0 elsewhere
        (:meth:`repro.bids.SubstitutableBid.matrix_row` builds exactly
        that); the mechanism itself accepts any non-negative matrix, which
        is what Mechanism 4 feeds it. ``math.inf`` entries are legal (forced
        grants from the online wrapper).
    rng, randomize_ties:
        When ``randomize_ties`` is true, ties on the minimum cost-share are
        broken uniformly at random using ``rng``.

    Returns
    -------
    SubstOffOutcome
        Implemented optimizations in phase order, one grant per serviced
        user, and the payments (each serviced user pays the cost-share of
        the phase that granted her).
    """
    order = {j: k for k, j in enumerate(costs)}
    for user, row in bids.items():
        unknown = set(row) - set(costs)
        if unknown:
            raise MechanismError(
                f"user {user!r} bids on unknown optimizations: {sorted(map(str, unknown))}"
            )
    generator = ensure_rng(rng) if randomize_ties else None

    remaining_costs = dict(costs)
    active = {user: dict(row) for user, row in bids.items()}
    implemented: list[OptId] = []
    grants: dict[UserId, OptId] = {}
    payments: dict[UserId, float] = {}
    shares: dict[OptId, float] = {}

    while True:
        # Phase: run Shapley for every available optimization, discard payments.
        feasible: dict[OptId, tuple[float, frozenset]] = {}
        for optimization, cost in remaining_costs.items():
            if math.isinf(cost):
                continue  # already implemented in an earlier phase
            column = {
                user: row.get(optimization, 0.0) for user, row in active.items()
            }
            result = run_shapley(cost, column)
            if result.implemented:
                feasible[optimization] = (result.price, result.serviced)

        if not feasible:
            return SubstOffOutcome(
                costs=dict(costs),
                implemented=tuple(implemented),
                grants=grants,
                payments=payments,
                shares=shares,
            )

        min_share = min(price for price, _ in feasible.values())
        tied = [j for j, (price, _) in feasible.items() if close(price, min_share)]
        if generator is not None and len(tied) > 1:
            chosen = tied[int(generator.integers(len(tied)))]
        else:
            chosen = min(tied, key=order.__getitem__)

        share, serviced = feasible[chosen]
        implemented.append(chosen)
        shares[chosen] = share
        for user in serviced:
            grants[user] = chosen
            payments[user] = share
            active[user] = {}  # remove the user from all future phases
        remaining_costs[chosen] = math.inf  # never reconsider
