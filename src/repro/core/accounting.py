"""Utility / payment / balance accounting (paper Sections 3 and 7.1).

The mechanisms decide outcomes from *declared* bids; welfare is measured
against *true* values. This module computes, for every outcome type:

* **realized value** — the value users actually obtain from the slots (or
  grants) they are serviced;
* **user utility** — realized value minus payment (``U_i = V_i(a) - P_i``);
* **total (social) utility** — total realized value minus the cost of the
  implemented optimizations;
* **cloud balance** — total payments minus total costs. Following the
  paper's figures (not its self-contradicting prose), *negative* balance
  means the cloud lost money; all Shapley-based mechanisms keep it >= 0.

Passing declared bids as the truth yields the truthful-play welfare used by
the experiments; passing a different truth evaluates a deviation, which is
how the truthfulness property tests are written.
"""

from __future__ import annotations

from typing import Mapping

from repro.bids.additive import AdditiveBid
from repro.bids.substitutive import SubstitutableBid
from repro.core.outcome import (
    AddOffOutcome,
    AddOnOutcome,
    OptId,
    SubstOffOutcome,
    SubstOnOutcome,
    UserId,
)

__all__ = [
    "addoff_total_utility",
    "addoff_user_utility",
    "addon_realized_value",
    "addon_user_utility",
    "addon_total_utility",
    "substoff_realized_value",
    "substoff_user_utility",
    "substoff_total_utility",
    "subston_realized_value",
    "subston_user_utility",
    "subston_total_utility",
    "cloud_balance",
]


# ---------------------------------------------------------------- offline --


def addoff_user_utility(
    outcome: AddOffOutcome,
    user: UserId,
    true_values: Mapping[OptId, Mapping[UserId, float]],
) -> float:
    """``U_i`` for an AddOff outcome: sum of granted true values minus payment."""
    value = sum(
        true_values.get(j, {}).get(user, 0.0)
        for j, result in outcome.results.items()
        if user in result.serviced
    )
    return value - outcome.payment(user)


def addoff_total_utility(
    outcome: AddOffOutcome,
    true_values: Mapping[OptId, Mapping[UserId, float]],
) -> float:
    """Total social utility of an AddOff outcome."""
    realized = sum(
        true_values.get(j, {}).get(user, 0.0)
        for j, result in outcome.results.items()
        for user in result.serviced
    )
    return realized - outcome.total_cost


def substoff_realized_value(
    outcome: SubstOffOutcome,
    true_values: Mapping[UserId, Mapping[OptId, float]],
) -> float:
    """Realized value of a SubstOff outcome against a true bid matrix.

    A user realizes value only if her grant is an optimization she truly
    values (a user who lied about her substitute set may hold a worthless
    grant — that is exactly the failed manipulation of Example 7).
    """
    return sum(
        true_values.get(user, {}).get(optimization, 0.0)
        for user, optimization in outcome.grants.items()
    )


def substoff_user_utility(
    outcome: SubstOffOutcome,
    user: UserId,
    true_values: Mapping[UserId, Mapping[OptId, float]],
) -> float:
    """``U_i`` for a SubstOff outcome."""
    optimization = outcome.grants.get(user)
    value = (
        true_values.get(user, {}).get(optimization, 0.0)
        if optimization is not None
        else 0.0
    )
    return value - outcome.payment(user)


def substoff_total_utility(
    outcome: SubstOffOutcome,
    true_values: Mapping[UserId, Mapping[OptId, float]],
) -> float:
    """Total social utility of a SubstOff outcome."""
    return substoff_realized_value(outcome, true_values) - outcome.total_cost


# ----------------------------------------------------------------- online --


def addon_realized_value(
    outcome: AddOnOutcome,
    user: UserId,
    true_bid: AdditiveBid,
) -> float:
    """Value ``user`` truly obtains: her true value over her serviced slots.

    Service windows come from the outcome (hence from declared bids); values
    come from ``true_bid``, so time or value misreports are priced in.
    """
    return sum(
        true_bid.value_at(t)
        for t in range(1, outcome.horizon + 1)
        if user in outcome.serviced_by_slot[t]
    )


def addon_user_utility(
    outcome: AddOnOutcome,
    user: UserId,
    true_bid: AdditiveBid,
) -> float:
    """``U_i`` for an AddOn outcome."""
    return addon_realized_value(outcome, user, true_bid) - outcome.payment(user)


def addon_total_utility(
    outcome: AddOnOutcome,
    true_bids: Mapping[UserId, AdditiveBid],
) -> float:
    """Total social utility of an AddOn outcome."""
    realized = sum(
        addon_realized_value(outcome, user, bid) for user, bid in true_bids.items()
    )
    return realized - outcome.total_cost


def subston_realized_value(
    outcome: SubstOnOutcome,
    user: UserId,
    true_bid: SubstitutableBid,
    declared_end: int | None = None,
) -> float:
    """Value ``user`` truly obtains from a SubstOn outcome.

    She must hold a grant for an optimization in her *true* substitute set;
    value accrues from the grant slot to her declared departure
    (``declared_end`` defaults to the true bid's end, i.e. truthful timing).
    """
    optimization = outcome.grants.get(user)
    if optimization is None or optimization not in true_bid.substitutes:
        return 0.0
    end = true_bid.end if declared_end is None else declared_end
    start = outcome.granted_at[user]
    return sum(true_bid.value_at(t) for t in range(start, end + 1))


def subston_user_utility(
    outcome: SubstOnOutcome,
    user: UserId,
    true_bid: SubstitutableBid,
    declared_end: int | None = None,
) -> float:
    """``U_i`` for a SubstOn outcome."""
    value = subston_realized_value(outcome, user, true_bid, declared_end)
    return value - outcome.payment(user)


def subston_total_utility(
    outcome: SubstOnOutcome,
    true_bids: Mapping[UserId, SubstitutableBid],
) -> float:
    """Total social utility of a SubstOn outcome (truthful timing)."""
    realized = sum(
        subston_realized_value(outcome, user, bid)
        for user, bid in true_bids.items()
    )
    return realized - outcome.total_cost


# ---------------------------------------------------------------- balance --


def cloud_balance(outcome) -> float:
    """Payments minus costs; negative means the cloud lost money.

    Works for every outcome type in :mod:`repro.core.outcome` (they all
    expose ``total_payment`` and ``total_cost``) and for the Regret
    baseline's outcomes.
    """
    return outcome.total_payment - outcome.total_cost
