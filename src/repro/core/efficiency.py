"""Efficient (welfare-maximizing) outcomes and efficiency-loss accounting.

Section 3 recalls the impossibility at the heart of the paper: no
mechanism is simultaneously truthful, cost-recovering and *efficient*
(welfare-maximizing). The paper's mechanisms keep the first two and pay
with some welfare. This module computes the welfare-optimal alternative —
the unreachable ideal — so that loss can be measured:

* additive games decompose per optimization: implement ``j`` exactly when
  the values sum past the cost, and grant every positive-value user;
* substitutable games need a search over optimization subsets (users
  realize their value when *any* wanted optimization is built), done
  exactly for small pools.

``efficiency_loss`` then relates any outcome's realized welfare to the
optimum; the ablation benchmark uses it to place Shapley/AddOff between
"free" (no optimization) and the efficient frontier, next to VCG which
sits *on* the frontier but runs budget deficits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping

from repro.core.outcome import OptId, UserId
from repro.errors import MechanismError

__all__ = [
    "EfficientAdditiveOutcome",
    "EfficientSubstitutableOutcome",
    "efficient_additive",
    "efficient_substitutable",
    "efficiency_loss",
]

#: Exact subset search is exponential; refuse beyond this pool size.
MAX_EXACT_OPTS = 20


@dataclass(frozen=True)
class EfficientAdditiveOutcome:
    """The welfare-optimal alternative of an offline additive game."""

    implemented: frozenset
    grants: frozenset
    welfare: float
    total_cost: float

    def serviced(self, optimization: OptId) -> frozenset:
        """Users granted one optimization."""
        return frozenset(i for i, j in self.grants if j == optimization)


@dataclass(frozen=True)
class EfficientSubstitutableOutcome:
    """The welfare-optimal alternative of an offline substitutable game."""

    implemented: frozenset
    assignment: Mapping[UserId, OptId]
    welfare: float
    total_cost: float


def efficient_additive(
    costs: Mapping[OptId, float],
    values: Mapping[OptId, Mapping[UserId, float]],
) -> EfficientAdditiveOutcome:
    """The efficient outcome: build ``j`` iff its values cover its cost.

    With additive valuations the welfare objective separates per
    optimization, so the optimum is exact and linear-time.
    """
    implemented = set()
    grants = set()
    welfare = 0.0
    total_cost = 0.0
    for optimization, cost in costs.items():
        if cost <= 0:
            raise MechanismError(
                f"cost of {optimization!r} must be positive, got {cost}"
            )
        opt_values = values.get(optimization, {})
        total_value = sum(v for v in opt_values.values() if v > 0)
        if total_value >= cost:
            implemented.add(optimization)
            total_cost += cost
            welfare += total_value - cost
            for user, value in opt_values.items():
                if value > 0:
                    grants.add((user, optimization))
    return EfficientAdditiveOutcome(
        implemented=frozenset(implemented),
        grants=frozenset(grants),
        welfare=welfare,
        total_cost=total_cost,
    )


def efficient_substitutable(
    costs: Mapping[OptId, float],
    values: Mapping[UserId, Mapping[OptId, float]],
) -> EfficientSubstitutableOutcome:
    """Exact welfare-optimal subset of optimizations to build.

    ``values[i]`` holds user ``i``'s value per acceptable optimization
    (her substitutable bid as a matrix row). Given a built subset ``S``,
    she realizes ``max over j in S`` of her row (0 if none) — for the
    paper's pure substitutable valuations all her entries are equal, but
    the search handles general rows too. Exponential in the pool size;
    capped at ``MAX_EXACT_OPTS``.
    """
    pool = list(costs)
    for optimization, cost in costs.items():
        if cost <= 0:
            raise MechanismError(
                f"cost of {optimization!r} must be positive, got {cost}"
            )
    if len(pool) > MAX_EXACT_OPTS:
        raise MechanismError(
            f"exact search supports at most {MAX_EXACT_OPTS} optimizations, "
            f"got {len(pool)}"
        )

    best_welfare = 0.0
    best_subset: tuple = ()
    for size in range(len(pool) + 1):
        for subset in itertools.combinations(pool, size):
            built = set(subset)
            cost = sum(costs[j] for j in built)
            value = 0.0
            for row in values.values():
                candidates = [v for j, v in row.items() if j in built and v > 0]
                if candidates:
                    value += max(candidates)
            welfare = value - cost
            if welfare > best_welfare:
                best_welfare = welfare
                best_subset = subset

    built = set(best_subset)
    assignment: dict[UserId, OptId] = {}
    for user, row in values.items():
        candidates = [(v, j) for j, v in row.items() if j in built and v > 0]
        if candidates:
            assignment[user] = max(candidates)[1]
    return EfficientSubstitutableOutcome(
        implemented=frozenset(built),
        assignment=assignment,
        welfare=best_welfare,
        total_cost=sum(costs[j] for j in built),
    )


def efficiency_loss(achieved_welfare: float, optimal_welfare: float) -> float:
    """Relative welfare loss in [0, 1]; 0 when the optimum is hit.

    An optimum of 0 (nothing worth building) counts as lossless when the
    achieved welfare is also 0.
    """
    if optimal_welfare < -1e-9:
        raise MechanismError(
            f"optimal welfare cannot be negative, got {optimal_welfare}"
        )
    if optimal_welfare <= 0:
        return 0.0
    return max(0.0, (optimal_welfare - achieved_welfare) / optimal_welfare)
