"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "BidError",
    "RevisionError",
    "MechanismError",
    "GameConfigError",
    "SchemaError",
    "QueryError",
    "ProtocolError",
    "RecoveryError",
    "OverloadedError",
    "DeadlineError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class BidError(ReproError):
    """A bid is malformed: bad interval, negative values, empty substitutes."""


class RevisionError(BidError):
    """An illegal bid revision: retroactive, downward, or shrinking the end."""


class MechanismError(ReproError):
    """A mechanism was invoked with inconsistent inputs."""


class GameConfigError(ReproError):
    """An experiment or simulation was configured with invalid parameters."""


class SchemaError(ReproError):
    """A relational schema violation in the mini database engine."""


class QueryError(ReproError):
    """A malformed or unanswerable query against the mini database engine."""


class RecoveryError(ReproError):
    """Durable state cannot be trusted: a corrupt, torn, or inconsistent
    write-ahead log or checkpoint was detected during recovery (or a
    checkpoint was requested of state that cannot be captured). Recovery
    never silently repairs past this — wrong pricing state is worse than
    no state."""


class OverloadedError(ReproError):
    """The serving layer shed this request under load (or while draining)
    instead of queueing it unboundedly. Carries a ``retry_after`` hint in
    seconds; the matching wire code is ``"overloaded"``, which clients may
    safely retry — the request never reached the pricing core."""

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class DeadlineError(ReproError):
    """The request's deadline expired before its work reached the pricing
    core, so it was cancelled without effect. The matching wire code is
    ``"deadline_exceeded"``; safe to retry."""


class ProtocolError(ReproError):
    """A malformed, unknown, or version-incompatible gateway envelope.

    ``code`` is the structured error code an :class:`~repro.gateway.ErrorReply`
    carries over the wire — ``"protocol"`` for malformed payloads,
    ``"version"`` for API-version mismatches.
    """

    code = "protocol"  # class-level default; instances may carry "version"

    def __init__(self, message: str, code: str = "protocol") -> None:
        super().__init__(message)
        self.code = code
