"""Closed-loop physical-design advisor.

The paper prices shared optimizations by the query cost they save each
tenant — but somebody has to *propose* the optimizations. This package
closes that loop over the relational substrate:

1. :class:`WorkloadLog` records normalized query templates and pass
   counts from :class:`~repro.db.engine.QueryEngine` executions (attach
   it via the engine's ``log`` parameter);
2. :func:`enumerate_candidates` mines the log into priceable candidates —
   narrow materialized views *and* hash/sorted indexes
   (:class:`~repro.db.savings.CandidateIndex`), sized and selectivity-
   estimated through ANALYZE statistics;
3. :class:`OptimizationAdvisor` prices every candidate with
   :meth:`~repro.db.savings.SavingsEstimator.price_many`, runs the fleet
   pricing games over workload-derived bids
   (:mod:`repro.fleet.pipeline`), and *adopts* the funded designs into
   the :class:`~repro.db.catalog.Catalog` — at which point the
   stats-driven planner immediately serves the cheaper plans, on both
   the iterator and the columnar vector engine.

Adopted plans return bit-identical rows to the base-table plans and never
increase a workload's metered cost (property-tested in
``tests/test_advisor_properties.py``).
"""

from repro.advisor.log import QueryTemplate, TemplateUsage, WorkloadLog
from repro.advisor.candidates import (
    CandidateSet,
    ViewSpec,
    enumerate_candidates,
)
from repro.advisor.advisor import (
    AdvisorConfig,
    AdvisorOutcome,
    OptimizationAdvisor,
)

__all__ = [
    "QueryTemplate",
    "TemplateUsage",
    "WorkloadLog",
    "ViewSpec",
    "CandidateSet",
    "enumerate_candidates",
    "AdvisorConfig",
    "AdvisorOutcome",
    "OptimizationAdvisor",
]
