"""Candidate enumeration: from mined templates to priceable designs.

Given a :class:`~repro.advisor.log.WorkloadLog` and the live catalog,
:func:`enumerate_candidates` proposes every shared optimization the
logged workload could plausibly fund:

* one **narrow materialized view** per touched table, projecting exactly
  the columns the table's templates touch and absorbing any row filter
  all of them share (``excluded`` pairs) — its retained fraction is
  estimated from ANALYZE selectivities;
* one **hash index** per equality-probed ``(table, column)`` pair, its
  workload-normalized probes-per-run averaged across tenants;
* one **sorted index** per range-probed pair (``kind="range"``
  templates).

Enumeration registers ANALYZE statistics for every touched table as a
side effect (:meth:`~repro.db.catalog.Catalog.analyze_table`) — the same
statistics the cost-based planner consults — so advising a catalog also
flips its planner into stats-driven mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.advisor.log import WorkloadLog
from repro.db.catalog import Catalog
from repro.db.expr import And, Col, Const, Ne
from repro.db.operators import Filter, Project, SeqScan
from repro.db.planner import HALO, PID, view_name_for
from repro.db.savings import Candidate, CandidateIndex, CandidateView
from repro.db.view import MaterializedView
from repro.errors import GameConfigError

__all__ = ["ViewSpec", "CandidateSet", "enumerate_candidates"]

#: Floor for the estimated retained fraction of a filtered view (the
#: estimator requires keep_fraction > 0; a view that statistics claim
#: retains nothing still materializes *something* until proven empty).
MIN_KEEP_FRACTION = 1e-9


@dataclass(frozen=True)
class ViewSpec:
    """How to actually materialize one enumerated view candidate."""

    table_name: str
    columns: tuple
    excluded: tuple

    def build(self, catalog: Catalog, name: str) -> MaterializedView:
        """The :class:`MaterializedView` realizing this spec."""
        base = catalog.table(self.table_name)
        columns, excluded = self.columns, self.excluded

        def definition():
            plan = SeqScan(base)
            predicate = None
            for column, value in excluded:
                clause = Ne(Col(column), Const(value))
                predicate = clause if predicate is None else And(predicate, clause)
            if predicate is not None:
                plan = Filter(plan, predicate)
            return Project(plan, list(columns))

        view = MaterializedView(name, definition, depends_on=(self.table_name,))
        view.spec = self
        return view


@dataclass(frozen=True)
class CandidateSet:
    """Everything enumeration produced, ready for pricing and adoption."""

    candidates: tuple
    view_specs: Mapping[str, ViewSpec]

    def __len__(self) -> int:
        return len(self.candidates)

    def by_name(self, name: str) -> Candidate:
        """Look one candidate up by its (unique) name."""
        for candidate in self.candidates:
            if candidate.name == name:
                return candidate
        raise GameConfigError(f"no enumerated candidate named {name!r}")


def _planner_view_name(table_name: str, columns, excluded) -> str:
    """The candidate view's name — the planner's canonical name when the
    shape matches the narrow (pid, halo) clustered pass it plans for,
    a generic derived name otherwise."""
    if set(columns) == {PID, HALO} and tuple(excluded) == ((HALO, -1),):
        return view_name_for(table_name)
    return f"v_{table_name}__" + "_".join(columns)


def _keep_fraction(catalog: Catalog, table_name: str, excluded) -> float:
    """Estimated fraction of base rows the filtered view retains."""
    keep = 1.0
    stats = catalog.stats(table_name)
    if stats is not None:
        for column, _value in excluded:
            if column in stats.columns:
                keep *= 1.0 - stats.column(column).eq_selectivity()
    return min(max(keep, MIN_KEEP_FRACTION), 1.0)


def enumerate_candidates(catalog: Catalog, log: WorkloadLog) -> CandidateSet:
    """Mine the log into priceable candidates (see the module docstring)."""
    candidates: list = []
    view_specs: dict[str, ViewSpec] = {}
    for table_name in log.tables:
        templates = log.templates_of(table_name)

        # ANALYZE exactly the columns the workload touches; the planner
        # and estimator read the same registered statistics.
        touched: dict[str, None] = {}
        for template in templates:
            for column in template.columns:
                touched.setdefault(column, None)
        catalog.analyze_table(table_name, list(touched))

        # One covering narrow view per table: the union of touched
        # columns, absorbing only the filters *every* template shares.
        shared_excluded = None
        for template in templates:
            pairs = set(template.excluded)
            shared_excluded = (
                pairs if shared_excluded is None else shared_excluded & pairs
            )
        excluded = tuple(sorted(shared_excluded or ()))
        columns = tuple(touched)
        name = _planner_view_name(table_name, columns, excluded)
        base = catalog.table(table_name)
        if set(columns) != set(base.schema.names) or excluded:
            candidates.append(
                CandidateView(
                    name=name,
                    table_name=table_name,
                    columns=columns,
                    keep_fraction=_keep_fraction(catalog, table_name, excluded),
                )
            )
            view_specs[name] = ViewSpec(
                table_name=table_name, columns=columns, excluded=excluded
            )

        # One index candidate per probed (table, column, kind): hash for
        # equality templates, sorted for range templates. Probe rates are
        # fleet-averaged across every tenant using the template.
        probed: dict[tuple, list] = {}
        for tenant, template, usage in log.entries():
            if template.table_name != table_name:
                continue
            if template.key_column is None or usage.probes <= 0:
                continue
            index_kind = "sorted" if template.kind == "range" else "hash"
            totals = probed.setdefault((template.key_column, index_kind), [0.0, 0.0])
            totals[0] += usage.probes
            totals[1] += usage.passes
        for (column, index_kind), (probes, passes) in probed.items():
            suffix = "_sorted" if index_kind == "sorted" else ""
            candidates.append(
                CandidateIndex(
                    name=f"ix_{table_name}_{column}{suffix}",
                    table_name=table_name,
                    column=column,
                    kind=index_kind,
                    probes_per_run=probes / passes,
                )
            )
    return CandidateSet(candidates=tuple(candidates), view_specs=view_specs)
