"""The closed loop: mine, enumerate, price, play the games, adopt.

:class:`OptimizationAdvisor` drives one advising round end to end.
Candidate *values* are the metered savings tenants' logged workloads
would realize; candidate *costs* are storage footprints at the
configured rate; the pricing games decide which designs the tenants
collectively fund (:mod:`repro.fleet`); funded designs are then adopted
into the live catalog, where the stats-driven planner picks them up on
the very next query — no replanning step, no cache to invalidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.advisor.candidates import CandidateSet, enumerate_candidates
from repro.advisor.log import WorkloadLog
from repro.db.catalog import Catalog
from repro.db.costmodel import CostMeter, CostModel
from repro.db.savings import CandidateIndex, SavingsEstimator
from repro.errors import GameConfigError
from repro.fleet.pipeline import TenantWorkload, build_fleet

__all__ = ["AdvisorConfig", "AdvisorOutcome", "OptimizationAdvisor"]


@dataclass(frozen=True)
class AdvisorConfig:
    """Knobs of one advising round.

    ``horizon`` is the amortization period (slots) the pricing games run
    over; ``dollars_per_byte`` the period storage rate that prices each
    candidate's footprint into its game cost ``C_j``; ``runs_per_slot``
    scales the logged pass counts into per-slot execution rates (the log
    records one workload execution; tenants are assumed to repeat it this
    many times per slot).
    """

    horizon: int = 12
    dollars_per_byte: float = 1e-6
    runs_per_slot: float = 1.0
    shards: int = 1

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise GameConfigError(f"horizon must be >= 1, got {self.horizon}")
        if self.runs_per_slot <= 0:
            raise GameConfigError(
                f"runs per slot must be > 0, got {self.runs_per_slot}"
            )


@dataclass(frozen=True)
class AdvisorOutcome:
    """Everything one advising round produced.

    ``epoch`` is the catalog epoch after adoption — the first epoch at
    which queries can see the funded designs. Queries pinned at earlier
    epochs keep running their old plans untouched.
    """

    candidates: CandidateSet
    quotes: Mapping
    report: object  # FleetReport, or None when nothing was priceable
    adopted: tuple
    build_meter: CostMeter = field(default_factory=CostMeter)
    epoch: int | None = None

    @property
    def funded(self) -> tuple:
        """Names of the optimizations the games funded, adoption order."""
        if self.report is None:
            return ()
        return tuple(sorted(self.report.implemented))


class OptimizationAdvisor:
    """See the module docstring for the loop this class drives."""

    def __init__(
        self,
        catalog: Catalog,
        model: CostModel | None = None,
        config: AdvisorConfig = AdvisorConfig(),
    ) -> None:
        self.catalog = catalog
        self.config = config
        self.estimator = SavingsEstimator(catalog, model)

    # ------------------------------------------------------------- mining --

    def mine_workloads(self, log: WorkloadLog) -> list[TenantWorkload]:
        """One :class:`TenantWorkload` per (tenant, table) in the log.

        ``runs_per_slot`` is the tenant's logged pass count over that
        table scaled by the config rate (every pass benefits from a
        covering view); ``columns`` the union a covering view must
        project; ``key_columns``/``key_runs`` the equality/range-probed
        columns with the pass counts of the templates that actually
        probe them — an index only earns bids for its probing passes,
        never for the table's unrelated query shapes.
        """
        grouped: dict[tuple, dict] = {}
        for tenant, template, usage in log.entries():
            key = (tenant, template.table_name)
            group = grouped.setdefault(
                key, {"passes": 0.0, "columns": {}, "keys": {}}
            )
            group["passes"] += usage.passes
            for column in template.columns:
                group["columns"].setdefault(column, None)
            if template.key_column is not None and usage.probes > 0:
                keys = group["keys"]
                keys[template.key_column] = (
                    keys.get(template.key_column, 0.0) + usage.passes
                )
        workloads = []
        for (tenant, table_name), group in grouped.items():
            workloads.append(
                TenantWorkload(
                    tenant=tenant,
                    table_name=table_name,
                    columns=tuple(group["columns"]),
                    start=1,
                    end=self.config.horizon,
                    runs_per_slot=group["passes"] * self.config.runs_per_slot,
                    key_columns=tuple(group["keys"]),
                    key_runs=tuple(
                        (column, passes * self.config.runs_per_slot)
                        for column, passes in group["keys"].items()
                    ),
                )
            )
        return workloads

    # -------------------------------------------------------------- games --

    def build_games(self, log: WorkloadLog, candidates: CandidateSet):
        """The fleet engine pricing every candidate against the log.

        Returns None when the log yields nothing priceable (no candidates
        or no workloads) — there is no game to play.
        """
        if len(candidates) == 0:
            return None
        workloads = self.mine_workloads(log)
        if not workloads:
            return None
        return build_fleet(
            self.estimator,
            workloads,
            list(candidates.candidates),
            horizon=self.config.horizon,
            dollars_per_byte=self.config.dollars_per_byte,
            shards=self.config.shards,
        )

    # ----------------------------------------------------------- adoption --

    def adopt(
        self,
        candidates: CandidateSet,
        funded,
        meter: CostMeter | None = None,
    ) -> tuple:
        """Create every funded design in the catalog; returns their names.

        Views materialize through their enumerated
        :class:`~repro.advisor.candidates.ViewSpec`; indexes build through
        the catalog's constructors. Build work is charged to ``meter`` —
        adoption is not free, it is simply *funded*. Names are adopted in
        sorted order for determinism; designs already present in the
        catalog (either kind) are skipped and not reported as adopted.

        The whole batch installs inside one
        :meth:`~repro.db.catalog.Catalog.epoch_batch`, so the catalog
        epoch moves exactly once: in-flight queries pinned before the
        boundary never see a half-installed design set, and the first
        query pinned after it sees all of them.
        """
        build_meter = meter if meter is not None else CostMeter()
        with self.catalog.epoch_batch():
            adopted = self._adopt_locked(candidates, funded, build_meter)
        return adopted

    def _adopt_locked(
        self, candidates: CandidateSet, funded, build_meter: CostMeter
    ) -> tuple:
        adopted = []
        for name in sorted(funded):
            candidate = candidates.by_name(name)
            if isinstance(candidate, CandidateIndex):
                if candidate.kind == "sorted":
                    if self.catalog.sorted_index(
                        candidate.table_name, candidate.column
                    ) is not None:
                        continue
                    self.catalog.create_sorted_index(
                        candidate.table_name, candidate.column, build_meter
                    )
                else:
                    if self.catalog.hash_index(
                        candidate.table_name, candidate.column
                    ) is not None:
                        continue
                    self.catalog.create_hash_index(
                        candidate.table_name, candidate.column, build_meter
                    )
            else:
                if self.catalog.has_view(name):
                    continue
                spec = candidates.view_specs[name]
                self.catalog.create_view(
                    spec.build(self.catalog, name), build_meter
                )
            adopted.append(name)
        return tuple(adopted)

    # ---------------------------------------------------------- the loop --

    def advise(self, log: WorkloadLog) -> AdvisorOutcome:
        """Run one full round: enumerate, price, play, adopt."""
        candidates = enumerate_candidates(self.catalog, log)
        quotes = self.estimator.price_many(candidates.candidates)
        engine = self.build_games(log, candidates)
        if engine is None:
            return AdvisorOutcome(
                candidates=candidates,
                quotes=quotes,
                report=None,
                adopted=(),
                epoch=self.catalog.epoch,
            )
        report = engine.run_to_end()
        build_meter = CostMeter()
        adopted = self.adopt(candidates, report.implemented, build_meter)
        return AdvisorOutcome(
            candidates=candidates,
            quotes=quotes,
            report=report,
            adopted=adopted,
            build_meter=build_meter,
            epoch=self.catalog.epoch,
        )
