"""Workload mining: normalized query templates with pass counts.

A :class:`WorkloadLog` is the advisor's input. The query engine reports
every execution's *template* — query shape, table, touched columns,
probed key column, rows the query never needs — through
:meth:`WorkloadLog.record_query`; constants (halo ids, probe sets) are
never recorded, so identical query shapes aggregate into one template
regardless of their parameters. Counts are kept per ``(tenant,
template)`` because tenants' pass counts become their bids in the
pricing games downstream.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.errors import GameConfigError

__all__ = ["QueryTemplate", "TemplateUsage", "WorkloadLog"]

#: Tenant tag used when queries are recorded outside a ``tenant`` block.
DEFAULT_TENANT = "tenant-0"


@dataclass(frozen=True)
class QueryTemplate:
    """One normalized query shape.

    ``columns`` are the columns the query touches (what a covering view
    must project); ``key_column`` the column it probes by equality (or by
    range, for ``kind="range"`` templates); ``excluded`` lists ``(column,
    value)`` pairs whose rows the query never needs — the filter a
    materialized view may absorb (the astronomy queries exclude
    ``("halo", -1)``, the unclustered particles).
    """

    kind: str
    table_name: str
    columns: tuple
    key_column: str | None = None
    excluded: tuple = ()

    def __post_init__(self) -> None:
        if not self.columns:
            raise GameConfigError(
                f"template over {self.table_name!r} touches no columns"
            )
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(
            self, "excluded", tuple((c, v) for c, v in self.excluded)
        )


@dataclass
class TemplateUsage:
    """Aggregated counts of one (tenant, template) pair.

    ``passes`` counts full executions of the template; ``probes`` the
    total key probes those passes issued (a semi-join probing ``k`` keys
    adds ``k`` per pass). ``last_epoch`` is the catalog epoch of the most
    recent recorded execution (None until a recording supplies one), so
    mined templates — and the savings quotes priced from them — are
    attributable to the catalog state they were observed under.
    """

    passes: float = 0.0
    probes: float = 0.0
    last_epoch: int | None = None

    @property
    def probes_per_pass(self) -> float:
        """Mean probes one pass issues (0.0 before any pass)."""
        if self.passes <= 0:
            return 0.0
        return self.probes / self.passes


class WorkloadLog:
    """Accumulates per-tenant template usage from engine executions.

    Attach to a :class:`~repro.db.engine.QueryEngine` via its ``log``
    parameter; wrap each tenant's workload in :meth:`tenant` so the
    counts are attributed::

        log = WorkloadLog()
        engine = QueryEngine(catalog, log=log)
        with log.tenant("astro-1"):
            engine.halo_members("snap_02", 4)
    """

    def __init__(self) -> None:
        self._usage: dict[tuple, TemplateUsage] = {}
        self._tenant = DEFAULT_TENANT

    @contextmanager
    def tenant(self, tag):
        """Attribute queries recorded inside the block to ``tag``."""
        previous = self._tenant
        self._tenant = tag
        try:
            yield self
        finally:
            self._tenant = previous

    def record_query(
        self,
        *,
        kind: str,
        table_name: str,
        columns,
        key_column: str | None = None,
        excluded=(),
        probes: float = 1.0,
        passes: float = 1.0,
        epoch: int | None = None,
    ) -> QueryTemplate:
        """Record one executed query under the current tenant.

        This is the engine-facing entry point (see
        :meth:`repro.db.engine.QueryEngine.halo_members`); it normalizes
        the arguments into a :class:`QueryTemplate` and delegates to
        :meth:`record`.
        """
        template = QueryTemplate(
            kind=kind,
            table_name=table_name,
            columns=tuple(columns),
            key_column=key_column,
            excluded=tuple(excluded),
        )
        self.record(template, probes=probes, passes=passes, epoch=epoch)
        return template

    def record(
        self,
        template: QueryTemplate,
        probes: float = 1.0,
        passes: float = 1.0,
        epoch: int | None = None,
    ) -> None:
        """Aggregate ``passes`` executions of ``template`` (with their
        total ``probes``) under the current tenant. ``epoch``, when given,
        stamps the usage's ``last_epoch``."""
        if passes <= 0:
            raise GameConfigError(f"passes must be > 0, got {passes}")
        if probes < 0:
            raise GameConfigError(f"probes must be >= 0, got {probes}")
        key = (self._tenant, template)
        usage = self._usage.get(key)
        if usage is None:
            usage = self._usage[key] = TemplateUsage()
        usage.passes += passes
        usage.probes += probes
        if epoch is not None:
            usage.last_epoch = epoch

    # ------------------------------------------------------------ queries --

    def __len__(self) -> int:
        return len(self._usage)

    @property
    def tenants(self) -> list:
        """Distinct tenant tags, in first-recorded order."""
        seen: dict = {}
        for tenant, _ in self._usage:
            seen.setdefault(tenant, None)
        return list(seen)

    @property
    def tables(self) -> list[str]:
        """Distinct table names, in first-recorded order."""
        seen: dict = {}
        for _, template in self._usage:
            seen.setdefault(template.table_name, None)
        return list(seen)

    def entries(self) -> Iterator[tuple]:
        """Iterate ``(tenant, template, usage)`` in recorded order."""
        for (tenant, template), usage in self._usage.items():
            yield tenant, template, usage

    def templates_of(self, table_name: str) -> list[QueryTemplate]:
        """Distinct templates over one table, in first-recorded order."""
        seen: dict = {}
        for _, template in self._usage:
            if template.table_name == table_name:
                seen.setdefault(template, None)
        return list(seen)

    def usage_of(self, tenant, template: QueryTemplate) -> TemplateUsage:
        """Counts of one (tenant, template) pair (zeros when never seen)."""
        return self._usage.get((tenant, template), TemplateUsage())
