"""Substitutable bids (paper Section 6).

A user declares a set of substitutable optimizations ``J_i`` and a single
value schedule: she obtains the value if she is granted access to *at least
one* optimization in ``J_i``, and no extra value from additional grants.
Offline bids are the pair ``(J_i, v_i)``; online bids add the service
interval, ``omega_i = (s_i, e_i, b_i, J_i)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Hashable, Mapping, Sequence

from repro.bids.slots import SlotValues
from repro.errors import BidError

__all__ = ["SubstitutableBid"]


@dataclass(frozen=True)
class SubstitutableBid:
    """Online substitutable bid ``(s_i, e_i, b_i, J_i)``.

    ``substitutes`` is the set ``J_i`` of optimization ids the user considers
    interchangeable; ``schedule`` is the per-slot value she gets from having
    access to any one of them.
    """

    schedule: SlotValues
    substitutes: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        subs = frozenset(self.substitutes)
        if not subs:
            raise BidError("a substitutable bid needs a non-empty substitute set")
        object.__setattr__(self, "substitutes", subs)

    @classmethod
    def over(
        cls,
        start: int,
        values: Sequence[float],
        substitutes: AbstractSet[Hashable],
    ) -> "SubstitutableBid":
        """Build a bid over ``[start, start+len(values)-1]`` for ``substitutes``."""
        return cls(SlotValues(start, tuple(values)), frozenset(substitutes))

    @classmethod
    def single_slot(
        cls, slot: int, value: float, substitutes: AbstractSet[Hashable]
    ) -> "SubstitutableBid":
        """A bid concentrated in one slot."""
        return cls(SlotValues(slot, (value,)), frozenset(substitutes))

    @property
    def start(self) -> int:
        """Entry slot ``s_i``."""
        return self.schedule.start

    @property
    def end(self) -> int:
        """Departure slot ``e_i``."""
        return self.schedule.end

    def value_at(self, t: int) -> float:
        """Value realized at slot ``t`` if serviced by any substitute."""
        return self.schedule.value_at(t)

    def residual(self, t: int) -> float:
        """Residual value ``sum_{tau >= t} b(tau)``."""
        return self.schedule.residual(t)

    def total(self) -> float:
        """Total declared value."""
        return self.schedule.total()

    def wants(self, optimization: Hashable) -> bool:
        """True when ``optimization`` is in the substitute set ``J_i``."""
        return optimization in self.substitutes

    def matrix_row(self, optimizations: Sequence[Hashable], t: int) -> Mapping[Hashable, float]:
        """Residual-bid row ``b'_ij`` used by SubstOff within SubstOn.

        The substitutable valuation corresponds to a bid matrix holding the
        residual value on every optimization in ``J_i`` and zero elsewhere.
        """
        residual = self.residual(t)
        return {j: (residual if j in self.substitutes else 0.0) for j in optimizations}
