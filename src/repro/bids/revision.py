"""Upward-only bid revision (paper Section 5.1).

At slot ``t`` a user may revise her future values ``b_ij(t'), t' >= t``
upwards and may extend (never shrink) her departure slot ``e_i``. A bid can
never be retroactive. :class:`RevisableBid` records the revision history and
can answer "what did the bid look like as of slot ``t``", which is what the
online mechanisms consume.
"""

from __future__ import annotations

from typing import Mapping

from repro.bids.additive import AdditiveBid
from repro.bids.slots import SlotValues
from repro.errors import RevisionError

__all__ = ["RevisableBid"]


class RevisableBid:
    """An additive bid plus its legal revision history.

    The initial bid is declared at slot ``declared_at`` (defaults to the
    bid's start slot — a bid cannot be placed after the interval it covers
    begins, since that would make its earliest slots retroactive).
    """

    def __init__(self, initial: AdditiveBid, declared_at: int | None = None) -> None:
        declared_at = initial.start if declared_at is None else declared_at
        if declared_at > initial.start:
            raise RevisionError(
                f"bid declared at slot {declared_at} retroactively covers "
                f"slot {initial.start}"
            )
        if declared_at < 1:
            raise RevisionError(f"declaration slot must be >= 1, got {declared_at}")
        self._history: list[tuple[int, AdditiveBid]] = [(declared_at, initial)]

    @property
    def current(self) -> AdditiveBid:
        """The latest effective bid."""
        return self._history[-1][1]

    @property
    def declared_at(self) -> int:
        """Slot at which the initial bid was placed."""
        return self._history[0][0]

    def revise(self, at_slot: int, new_values: Mapping[int, float]) -> AdditiveBid:
        """Apply a revision at slot ``at_slot``; returns the new effective bid.

        ``new_values`` maps slots to their revised values. Every revised slot
        must be ``>= at_slot`` (no retroactive changes) and every revised
        value must be ``>=`` the current value (upward-only). Slots beyond
        the current ``end`` extend the interval, so ``e_i`` can only grow.
        """
        last_slot, current = self._history[-1]
        if at_slot < last_slot:
            raise RevisionError(
                f"revision at slot {at_slot} precedes last revision at {last_slot}"
            )
        if not new_values:
            raise RevisionError("a revision must change at least one slot")
        for slot, value in new_values.items():
            if slot < at_slot:
                raise RevisionError(
                    f"revision at slot {at_slot} retroactively touches slot {slot}"
                )
            if value < current.value_at(slot):
                raise RevisionError(
                    f"revision lowers slot {slot} from {current.value_at(slot)} "
                    f"to {value}; revisions are upward-only"
                )
        new_end = max(current.end, max(new_values))
        merged = {
            t: new_values.get(t, current.value_at(t))
            for t in range(current.start, new_end + 1)
        }
        revised = AdditiveBid(SlotValues.from_mapping({current.start: merged[current.start], **merged}))
        self._history.append((at_slot, revised))
        return revised

    def as_of(self, t: int) -> AdditiveBid:
        """The bid as the cloud saw it at slot ``t``.

        Revisions placed after ``t`` are invisible; before the declaration
        slot the user has not been seen at all and ``RevisionError`` is
        raised (the mechanisms prune unseen users themselves via
        ``t >= s_i``).
        """
        if t < self.declared_at:
            raise RevisionError(
                f"bid was not declared until slot {self.declared_at}"
            )
        effective = self._history[0][1]
        for slot, bid in self._history[1:]:
            if slot <= t:
                effective = bid
        return effective
