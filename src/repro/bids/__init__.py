"""Bid and valuation models (paper Sections 3, 5.1 and 6).

Offline games use plain scalar bids per (user, optimization). Online games
use :class:`~repro.bids.additive.AdditiveBid` — a value schedule over the
slot interval ``[start, end]`` — or
:class:`~repro.bids.substitutive.SubstitutableBid`, which adds the set of
substitutable optimizations ``J_i``. :class:`~repro.bids.revision.RevisableBid`
implements the paper's online bidding rule: revisions may never be
retroactive, never lower a future value, and never shrink the interval.
"""

from repro.bids.slots import SlotValues
from repro.bids.additive import AdditiveBid
from repro.bids.substitutive import SubstitutableBid
from repro.bids.revision import RevisableBid

__all__ = ["SlotValues", "AdditiveBid", "SubstitutableBid", "RevisableBid"]
