"""Value schedules over contiguous 1-indexed time slots.

The paper divides the optimization's amortization period ``T`` into slots
``1..z`` and describes a user's value as a function ``v_ij(t)`` that is zero
outside her service interval ``[s_i, e_i]``. :class:`SlotValues` is that
function restricted to its support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.errors import BidError

__all__ = ["SlotValues"]


@dataclass(frozen=True)
class SlotValues:
    """A non-negative value schedule over slots ``start .. start+len-1``.

    Parameters
    ----------
    start:
        First slot of the support (1-indexed, per the paper's ``s_i``).
    values:
        Value obtained at each slot of ``[start, end]`` if the user has
        access to the optimization during that slot.
    """

    start: int
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.start < 1:
            raise BidError(f"start slot must be >= 1, got {self.start}")
        if not self.values:
            raise BidError("a slot schedule needs at least one slot")
        coerced = tuple(float(v) for v in self.values)
        if any(v < 0 for v in coerced):
            raise BidError(f"slot values must be non-negative, got {coerced}")
        object.__setattr__(self, "values", coerced)

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, float]) -> "SlotValues":
        """Build a schedule from a ``{slot: value}`` mapping.

        Slots missing inside the spanned interval are filled with zero.
        """
        if not mapping:
            raise BidError("cannot build a schedule from an empty mapping")
        start = min(mapping)
        end = max(mapping)
        return cls(start, tuple(mapping.get(t, 0.0) for t in range(start, end + 1)))

    @property
    def end(self) -> int:
        """Last slot of the support (the paper's ``e_i``)."""
        return self.start + len(self.values) - 1

    def value_at(self, t: int) -> float:
        """``v(t)`` — zero outside ``[start, end]``."""
        if t < self.start or t > self.end:
            return 0.0
        return self.values[t - self.start]

    def residual(self, t: int) -> float:
        """``sum_{tau >= t} v(tau)`` — the residual value used by AddOn."""
        if t > self.end:
            return 0.0
        lo = max(t, self.start)
        return sum(self.values[lo - self.start :])

    def total(self) -> float:
        """Total value over the whole support."""
        return sum(self.values)

    def slots(self) -> Iterator[int]:
        """Iterate the support slots in order."""
        return iter(range(self.start, self.end + 1))

    def with_values(self, values: Sequence[float]) -> "SlotValues":
        """Copy with the same start and a new value vector."""
        return SlotValues(self.start, tuple(values))

    def scaled(self, factor: float) -> "SlotValues":
        """Copy with every value multiplied by ``factor`` (must keep values >= 0)."""
        return SlotValues(self.start, tuple(v * factor for v in self.values))
