"""Additive bids for online games (paper Section 5.1).

A user's declaration for one optimization is the tuple
``theta_ij = (s_i, e_i, b_ij)`` where ``b_ij`` is a value schedule over
``[s_i, e_i]``. Additivity means a user's value for an outcome is the sum of
her values over all optimizations she is granted, so a multi-optimization
game is simply one :class:`AdditiveBid` per (user, optimization) pair and
the AddOn mechanism runs per optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.bids.slots import SlotValues

__all__ = ["AdditiveBid"]


@dataclass(frozen=True)
class AdditiveBid:
    """Declared (or true) value schedule for a single optimization.

    This is a thin semantic wrapper over :class:`SlotValues`: ``start`` is
    the slot the user enters the system (``s_i``), ``end`` the slot she pays
    and leaves (``e_i``).
    """

    schedule: SlotValues

    @classmethod
    def over(cls, start: int, values: Sequence[float]) -> "AdditiveBid":
        """Build a bid starting at ``start`` with the given per-slot values."""
        return cls(SlotValues(start, tuple(values)))

    @classmethod
    def single_slot(cls, slot: int, value: float) -> "AdditiveBid":
        """A bid concentrated in one slot — the common experiment workload."""
        return cls(SlotValues(slot, (value,)))

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, float]) -> "AdditiveBid":
        """Build from a ``{slot: value}`` mapping (gaps filled with zero)."""
        return cls(SlotValues.from_mapping(mapping))

    @property
    def start(self) -> int:
        """Entry slot ``s_i``."""
        return self.schedule.start

    @property
    def end(self) -> int:
        """Departure slot ``e_i`` (user pays when this slot is reached)."""
        return self.schedule.end

    def value_at(self, t: int) -> float:
        """Value realized at slot ``t`` when serviced during ``t``."""
        return self.schedule.value_at(t)

    def residual(self, t: int) -> float:
        """Residual value ``sum_{tau >= t} b(tau)`` — AddOn's per-slot bid."""
        return self.schedule.residual(t)

    def total(self) -> float:
        """Total declared value over the service interval."""
        return self.schedule.total()
