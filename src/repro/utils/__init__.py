"""Small shared utilities: seeded RNG plumbing and numeric helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.numeric import close, isclose_or_greater, weighted_mean

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "close",
    "isclose_or_greater",
    "weighted_mean",
]
