"""Tiny numeric helpers shared across mechanisms and tests.

Mechanism fixed points compare bids against evenly-divided cost shares, so a
consistent absolute/relative tolerance matters: the same epsilon is used by
the mechanisms (boundary "bid equals share" cases) and by the property
tests that assert cost recovery.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import GameConfigError

#: Absolute tolerance used for price/bid boundary comparisons.
ABS_TOL = 1e-9
#: Relative tolerance used for price/bid boundary comparisons.
REL_TOL = 1e-9

__all__ = [
    "ABS_TOL",
    "REL_TOL",
    "close",
    "isclose_or_greater",
    "weighted_mean",
    "is_positive_finite_or_inf",
    "is_positive_finite",
]


def is_positive_finite_or_inf(value: float) -> bool:
    """True for a strictly positive non-NaN number.

    ``cost <= 0`` guards silently wave NaN through (every comparison with
    NaN is false), so cost validation goes through this predicate instead.
    Infinity is allowed — the mechanisms use it internally as a sentinel
    for already-implemented optimizations.
    """
    return value > 0 and not math.isnan(value)


def is_positive_finite(value: float) -> bool:
    """True for a strictly positive, finite, non-NaN number.

    The validation every mechanism applies to an optimization cost: unlike
    bids, a cost may not be infinite (infinity is reserved as the internal
    already-implemented sentinel).
    """
    return is_positive_finite_or_inf(value) and not math.isinf(value)


def close(a: float, b: float) -> bool:
    """True when ``a`` and ``b`` are equal up to the library tolerance."""
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def isclose_or_greater(a: float, b: float) -> bool:
    """True when ``a >= b`` up to tolerance.

    Mechanism 1 keeps a user serviced when ``p <= b_ij``; floating-point
    noise from repeated division must not evict a user whose bid equals the
    share exactly in real arithmetic.
    """
    return a > b or close(a, b)


def weighted_mean(values: Sequence[float], weights: Iterable[float]) -> float:
    """Weighted mean; raises ``GameConfigError`` on empty, mismatched, or
    zero-weight input."""
    total_w = 0.0
    total = 0.0
    try:
        for v, w in zip(values, weights, strict=True):
            total += v * w
            total_w += w
    except ValueError as exc:  # zip(strict=True) length mismatch
        raise GameConfigError(f"values/weights mismatch: {exc}") from None
    if total_w == 0.0:
        raise GameConfigError("weights sum to zero")
    return total / total_w
