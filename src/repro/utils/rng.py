"""Seeded random-number-generator helpers.

Every stochastic entry point in the library accepts an ``rng`` argument that
may be ``None`` (fresh default generator), an integer seed, or an existing
:class:`numpy.random.Generator`. Centralizing the coercion here keeps the
experiment drivers reproducible and the call sites tidy.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import GameConfigError

RngLike = Union[None, int, np.random.Generator]

__all__ = ["ensure_rng", "spawn_rngs", "RngLike"]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields an OS-seeded generator; an ``int`` is used as a seed; an
    existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int, or numpy Generator, got {type(rng)!r}")


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Used by trial runners so each trial gets its own stream and results do
    not depend on evaluation order.
    """
    if count < 0:
        raise GameConfigError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
