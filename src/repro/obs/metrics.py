"""Zero-dependency metrics: counters, gauges, histograms, Prometheus text.

:class:`MetricsRegistry` is a process-local registry of named metric
*families* — :class:`Counter`, :class:`Gauge`, and :class:`Histogram` —
each fanning out into labeled series (one child per label-value
combination). Everything is stdlib-only and deliberately small:

- **Injectable clock.** Every latency measurement goes through
  ``registry.clock`` (default ``time.perf_counter``). Tests swap in a
  deterministic ticker and two identical runs produce *bit-identical*
  snapshots — the clock seam is the whole determinism story, so no
  instrumentation may call ``time`` directly (DESIGN.md, "Metrics
  conventions").
- **Cheap disablement.** ``registry.enabled = False`` turns every
  mutation into an early-return no-op (timers skip the clock entirely);
  ``benchmarks/bench_obs.py`` measures the enabled-vs-disabled gap and
  gates it below 5%.
- **Bounded cardinality.** A family refuses to mint more than
  ``max_series`` children — unbounded label values are a memory leak
  wearing a telemetry costume, so the bound is an error, not a clamp.
- **Deterministic output.** :meth:`MetricsRegistry.snapshot` (nested
  plain dicts), :meth:`MetricsRegistry.wire` (the tuple form carried by
  the ``MetricsReply`` envelope), and :func:`render_prometheus` (text
  exposition format 0.0.4) all emit in sorted family/series order.

Histogram buckets are **fixed log-spaced** upper bounds (four per decade
from 10µs to 10s by default); :meth:`Histogram.percentile` answers the
nearest-rank percentile over those bounds with exactly the rank rule the
serving benchmark always used (``index = min(n - 1, int(n * q))`` into
the sorted sample), so ``benchmarks/bench_server.py`` could swap its
ad-hoc sorted-list math for the shared histogram without moving a
reported number (``tests/test_obs.py`` holds the two identical on a
fixed sample).
"""

from __future__ import annotations

import math
import re
import threading
import time
from bisect import bisect_left

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_SERIES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
]

#: Fixed log-spaced latency buckets: four per decade, 10µs .. 10s.
#: Fixed (not adaptive) so two runs of the same workload always land
#: observations in the same buckets — a precondition for bit-identical
#: snapshots under the injectable clock.
DEFAULT_BUCKETS = tuple(
    round(10.0 ** (exponent / 4.0), 12) for exponent in range(-20, 5)
)

#: Default per-family series bound (see the cardinality convention).
DEFAULT_MAX_SERIES = 64

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _format_number(value) -> str:
    """One sample value in exposition form (ints bare, floats via repr)."""
    if isinstance(value, bool):  # pragma: no cover - not a metric value
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(text: str) -> str:
    return (
        text.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


class _Family:
    """Shared machinery of one named metric family (all kinds)."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames=(),
        *,
        registry: "MetricsRegistry | None" = None,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if len(set(labelnames)) != len(labelnames):
            raise ValueError(f"duplicate label names {labelnames!r}")
        self.name = name
        self.help = str(help)
        self.labelnames = labelnames
        self.max_series = int(max_series)
        self._registry = registry
        self._lock = threading.Lock()
        self._children: dict = {}

    # ------------------------------------------------------------- series --

    def labels(self, **labelvalues):
        """The child series for one label-value combination (created on
        first use; bounded by ``max_series``)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {list(self.labelnames)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= self.max_series:
                    raise ValueError(
                        f"{self.name}: label cardinality bound "
                        f"({self.max_series} series) exceeded by {key!r} — "
                        "label values must come from a bounded set"
                    )
                child = self._make_child()
                self._children[key] = child
        return child

    def _default(self):
        """The single series of a label-less family (convenience ops)."""
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labeled by {list(self.labelnames)}; "
                "address a series via .labels(...)"
            )
        return self.labels()

    def _make_child(self):  # pragma: no cover - overridden per kind
        raise NotImplementedError

    # ------------------------------------------------------------ output --

    def _sorted_series(self):
        with self._lock:
            items = sorted(self._children.items())
        return items

    def _snapshot(self) -> dict:
        out = {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": [
                {"labels": dict(zip(self.labelnames, key)), **child._state()}
                for key, child in self._sorted_series()
            ],
        }
        return out

    def _wire(self):
        return [
            (self.name, self.kind, tuple(zip(self.labelnames, key)), child._value())
            for key, child in self._sorted_series()
        ]

    def _reset(self) -> None:
        with self._lock:
            self._children.clear()

    def _enabled(self) -> bool:
        registry = self._registry
        return registry is None or registry.enabled

    def _clock(self):
        registry = self._registry
        return time.perf_counter if registry is None else registry.clock


class _CounterChild:
    __slots__ = ("_family", "value")

    def __init__(self, family) -> None:
        self._family = family
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._family._enabled():
            return
        amount = float(amount)
        if amount < 0.0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._family._lock:
            self.value += amount

    def _state(self) -> dict:
        return {"value": self.value}

    def _value(self) -> float:
        return float(self.value)


class Counter(_Family):
    """A monotonically increasing sum (resets only via the registry)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value


class _GaugeChild:
    __slots__ = ("_family", "value")

    def __init__(self, family) -> None:
        self._family = family
        self.value = 0.0

    def set(self, value: float) -> None:
        if not self._family._enabled():
            return
        with self._family._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._family._enabled():
            return
        with self._family._lock:
            self.value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-float(amount))

    def _state(self) -> dict:
        return {"value": self.value}

    def _value(self) -> float:
        return float(self.value)


class Gauge(_Family):
    """A value that goes both ways (queue depths, ratios)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self)

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        return self._default().value


class _Timer:
    """Context manager observing elapsed registry-clock time.

    Captures the clock at ``__enter__`` so a test swapping
    ``registry.clock`` mid-span cannot mix timebases; skips the clock
    entirely while the registry is disabled (the no-op must cost no
    syscalls, or disabling would not prove the overhead bound)."""

    __slots__ = ("_child", "_clock", "_begin")

    def __init__(self, child) -> None:
        self._child = child
        self._clock = None
        self._begin = 0.0

    def __enter__(self) -> "_Timer":
        family = self._child._family
        if family._enabled():
            self._clock = family._clock()
            self._begin = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._clock is not None:
            self._child.observe(self._clock() - self._begin)
            self._clock = None


class _HistogramChild:
    __slots__ = ("_family", "counts", "sum", "count", "max")

    def __init__(self, family) -> None:
        self._family = family
        # One slot per finite upper bound plus the +Inf overflow slot.
        self.counts = [0] * (len(family.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.max = 0.0

    def observe(self, value: float) -> None:
        family = self._family
        if not family._enabled():
            return
        value = float(value)
        index = bisect_left(family.buckets, value)
        with family._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            if value > self.max:
                self.max = value

    def time(self) -> _Timer:
        return _Timer(self)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the bucket upper bounds.

        The rank rule is ``index = min(n - 1, int(n * q))`` into the
        sorted sample — byte-for-byte the rule bench_server.py applied
        to its sorted latency list, so a sample whose values sit on
        bucket bounds answers identically through either path."""
        q = float(q)
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile wants q in [0, 1], got {q}")
        with self._family._lock:
            total = self.count
            if total == 0:
                return 0.0
            rank = min(total - 1, int(total * q))
            cumulative = 0
            for upper, bucket_count in zip(self._family.buckets, self.counts):
                cumulative += bucket_count
                if cumulative > rank:
                    return upper
            return self.max  # the rank lives in the +Inf overflow slot

    def _state(self) -> dict:
        return {
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "max": self.max,
        }

    def _value(self):
        return (
            tuple(self._family.buckets),
            tuple(self.counts),
            float(self.sum),
            int(self.count),
        )


class Histogram(_Family):
    """Observations bucketed under fixed upper bounds, plus sum/count."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames=(),
        *,
        buckets=DEFAULT_BUCKETS,
        registry: "MetricsRegistry | None" = None,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        super().__init__(
            name, help, labelnames, registry=registry, max_series=max_series
        )
        buckets = tuple(float(b) for b in buckets)
        if not buckets:
            raise ValueError(f"{name}: a histogram needs at least one bucket")
        if list(buckets) != sorted(set(buckets)):
            raise ValueError(
                f"{name}: buckets must be strictly increasing, got {buckets}"
            )
        if any(math.isinf(b) for b in buckets):
            raise ValueError(
                f"{name}: the +Inf bucket is implicit; pass finite bounds"
            )
        self.buckets = buckets

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def time(self) -> _Timer:
        return self._default().time()

    def percentile(self, q: float) -> float:
        return self._default().percentile(q)

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def sum(self) -> float:
        return self._default().sum


class MetricsRegistry:
    """Named metric families plus the two seams tests lean on: the
    injectable ``clock`` and the ``enabled`` kill switch."""

    def __init__(self, *, clock=time.perf_counter) -> None:
        self.clock = clock
        self.enabled = True
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # -------------------------------------------------------- definition --

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames=(),
        *,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> Counter:
        return self._register(
            Counter(name, help, labelnames, registry=self, max_series=max_series)
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames=(),
        *,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> Gauge:
        return self._register(
            Gauge(name, help, labelnames, registry=self, max_series=max_series)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames=(),
        *,
        buckets=DEFAULT_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> Histogram:
        return self._register(
            Histogram(
                name,
                help,
                labelnames,
                buckets=buckets,
                registry=self,
                max_series=max_series,
            )
        )

    def _register(self, family: _Family) -> _Family:
        """Get-or-create: re-registration with an identical shape returns
        the existing family (module reloads, repeated fixtures); a
        conflicting shape is a programming error and raises."""
        with self._lock:
            existing = self._families.get(family.name)
            if existing is None:
                self._families[family.name] = family
                return family
        if (
            type(existing) is not type(family)
            or existing.labelnames != family.labelnames
            or getattr(existing, "buckets", None) != getattr(family, "buckets", None)
        ):
            raise ValueError(
                f"metric {family.name!r} is already registered with a "
                "different kind, labels, or buckets"
            )
        return existing

    # ------------------------------------------------------------ output --

    def families(self) -> dict:
        with self._lock:
            return dict(sorted(self._families.items()))

    def snapshot(self) -> dict:
        """Every family's full state as nested plain dicts, sorted — two
        identical instrumented runs under a fixed clock produce equal
        (``==``, bit-identical floats) snapshots."""
        return {
            name: family._snapshot()
            for name, family in self.families().items()
        }

    def wire(self) -> tuple:
        """The flat tuple form a ``MetricsReply`` envelope carries:
        ``(name, kind, ((label, value), ...), value)`` per series, where
        a histogram's value is ``(buckets, counts, sum, count)``. Tuples
        and scalars only, so the envelope round-trips exactly."""
        entries: list = []
        for family in self.families().values():
            entries.extend(family._wire())
        return tuple(entries)

    def reset(self) -> None:
        """Drop every series (families stay registered) — test isolation."""
        for family in self.families().values():
            family._reset()

    def render(self) -> str:
        return render_prometheus(self)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4.

    ``# HELP``/``# TYPE`` per family, one sample line per series;
    histograms expose cumulative ``_bucket{le=...}`` counts ending in
    ``+Inf``, plus ``_sum`` and ``_count`` (``tests/promparse.py`` is the
    strict validity check)."""
    lines: list[str] = []
    for name, family in registry.families().items():
        if family.help:
            lines.append(f"# HELP {name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {name} {family.kind}")
        for key, child in family._sorted_series():
            pairs = list(zip(family.labelnames, key))
            if family.kind == "histogram":
                cumulative = 0
                for upper, count in zip(family.buckets, child.counts):
                    cumulative += count
                    lines.append(
                        _sample(
                            f"{name}_bucket",
                            pairs + [("le", _format_number(upper))],
                            cumulative,
                        )
                    )
                lines.append(
                    _sample(
                        f"{name}_bucket", pairs + [("le", "+Inf")], child.count
                    )
                )
                lines.append(_sample(f"{name}_sum", pairs, child.sum))
                lines.append(_sample(f"{name}_count", pairs, child.count))
            else:
                lines.append(_sample(name, pairs, child.value))
    return "\n".join(lines) + "\n"


def _sample(name: str, pairs, value) -> str:
    if pairs:
        labels = ",".join(
            f'{label}="{_escape_label(str(text))}"' for label, text in pairs
        )
        return f"{name}{{{labels}}} {_format_number(value)}"
    return f"{name} {_format_number(value)}"
