"""Lightweight span tracing on the repo's JSONL conventions.

A *span* is one named, timed region with arbitrary scalar fields —
checkpoint writes, recoveries, WAL rotations. :class:`SpanRecorder`
keeps a bounded in-memory ring of finished spans and (optionally)
appends each one as a single JSON object per line, the same
one-object-per-line shape as the gateway's request traces and WAL, so
the existing JSONL tooling reads span files unchanged.

Timing goes through the recorder's injectable ``clock`` — the same
determinism seam as :class:`repro.obs.metrics.MetricsRegistry` — and a
disabled recorder records nothing and never touches the clock.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path

__all__ = ["SpanRecorder", "read_spans"]


class SpanRecorder:
    """A bounded recorder of finished spans (newest ``maxlen`` kept)."""

    def __init__(self, path=None, *, maxlen: int = 512, clock=time.perf_counter):
        self.clock = clock
        self.enabled = True
        self._path = None if path is None else Path(path)
        self._rows: deque = deque(maxlen=maxlen)

    @contextmanager
    def span(self, name: str, **fields):
        """Time one region; fields must be JSON scalars (they ride the
        wire row verbatim). Records even when the body raises — a failed
        checkpoint is exactly the span worth seeing."""
        if not self.enabled:
            yield
            return
        for reserved in ("span", "begin", "end", "elapsed"):
            if reserved in fields:
                raise ValueError(f"span field {reserved!r} is reserved")
        begin = self.clock()
        try:
            yield
        finally:
            end = self.clock()
            row = {
                "span": str(name),
                "begin": begin,
                "end": end,
                "elapsed": end - begin,
                **fields,
            }
            self._rows.append(row)
            if self._path is not None:
                with open(self._path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(row, sort_keys=True) + "\n")

    def rows(self) -> tuple:
        """Finished spans, oldest first (dicts; treat as read-only)."""
        return tuple(self._rows)

    def clear(self) -> None:
        self._rows.clear()


def read_spans(path):
    """Every span row of one JSONL span file, in file order."""
    rows = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows
