"""`repro.obs` — zero-dependency metrics and tracing for the whole stack.

One process-wide :data:`REGISTRY` (plus a :data:`SPANS` recorder)
instruments the serving stack end to end: the asyncio gateway server,
the write-ahead log, ``PricingService.dispatch``, both fleet executors,
and the blocking client. Three read paths expose the same state:

- ``GET /v1/metrics`` — Prometheus text exposition
  (:func:`render_prometheus`);
- the ``MetricsRequest``/``MetricsReply`` envelope pair (gateway API
  1.6) carrying :meth:`MetricsRegistry.wire`'s exact-round-trip tuples;
- ``python -m repro stats`` — the CLI scrape.

The conventions that keep this layer honest live in DESIGN.md ("Metrics
conventions"): all timing through the injectable clock seam, label
values only from bounded sets, and **no metrics on hot per-bid paths**
— fleet instrumentation is per-slot/per-chunk granularity only, which
is how ``benchmarks/bench_obs.py`` keeps the measured overhead of the
enabled registry under 5%.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_MAX_SERIES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.spans import SpanRecorder, read_spans

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_SERIES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecorder",
    "read_spans",
    "render_prometheus",
    "REGISTRY",
    "SPANS",
    "enable",
    "disable",
    "reset",
    "snapshot",
    "wire",
    "render",
]

#: The process-wide registry every instrumented module registers with.
REGISTRY = MetricsRegistry()

#: The process-wide span recorder (checkpoints, recoveries, rotations).
SPANS = SpanRecorder()


def enable() -> None:
    """Turn instrumentation on (metrics and spans; the default)."""
    REGISTRY.enabled = True
    SPANS.enabled = True


def disable() -> None:
    """Turn instrumentation off — mutations become early-return no-ops
    and timers never touch the clock (the bench_obs baseline mode)."""
    REGISTRY.enabled = False
    SPANS.enabled = False


def reset() -> None:
    """Drop every recorded series and span (registrations survive)."""
    REGISTRY.reset()
    SPANS.clear()


def snapshot() -> dict:
    """:meth:`MetricsRegistry.snapshot` of the process registry."""
    return REGISTRY.snapshot()


def wire() -> tuple:
    """:meth:`MetricsRegistry.wire` of the process registry."""
    return REGISTRY.wire()


def render() -> str:
    """Prometheus text exposition of the process registry."""
    return render_prometheus(REGISTRY)
