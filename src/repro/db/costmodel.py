"""Cost accounting: logical work -> simulated wall-clock time.

Operators report work to a :class:`CostMeter` in *byte-units* (rows
processed x logical row width, plus per-probe overheads). A
:class:`CostModel` converts accumulated units into simulated minutes via a
single calibration constant — the astronomy use-case calibrates it so the
first astronomer's unoptimized workload runs the paper's 81 minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GameConfigError

__all__ = ["CostMeter", "CostModel"]


@dataclass
class CostMeter:
    """Mutable accumulator of logical work, filled in by the operators."""

    scan_bytes: float = 0.0
    probe_count: int = 0
    rows_emitted: int = 0
    build_bytes: float = 0.0
    counters: dict = field(default_factory=dict)

    def charge_scan(self, rows: int, row_width: int) -> None:
        """Charge a sequential read of ``rows`` rows of ``row_width`` bytes."""
        self.scan_bytes += rows * row_width

    def charge_probe(self, probes: int) -> None:
        """Charge ``probes`` hash/index probes."""
        self.probe_count += probes

    def charge_build(self, rows: int, row_width: int) -> None:
        """Charge building a transient hash table (joins, group-bys)."""
        self.build_bytes += rows * row_width

    def emit(self, rows: int = 1) -> None:
        """Count rows emitted to the consumer."""
        self.rows_emitted += rows

    def bump(self, counter: str, amount: float = 1.0) -> None:
        """Free-form named counter (used by tests and diagnostics)."""
        self.counters[counter] = self.counters.get(counter, 0.0) + amount

    def merge(self, other: "CostMeter") -> None:
        """Fold another meter's charges into this one."""
        self.scan_bytes += other.scan_bytes
        self.probe_count += other.probe_count
        self.rows_emitted += other.rows_emitted
        self.build_bytes += other.build_bytes
        for key, amount in other.counters.items():
            self.bump(key, amount)

    def reset(self) -> None:
        """Zero all charges."""
        self.scan_bytes = 0.0
        self.probe_count = 0
        self.rows_emitted = 0
        self.build_bytes = 0.0
        self.counters = {}


@dataclass(frozen=True)
class CostModel:
    """Weights converting a meter's charges into abstract cost units.

    ``seconds_per_unit`` is the calibration constant mapping units to
    simulated time. Defaults make one byte of sequential scan one unit,
    probes ~32 units (random access penalty) and hash builds 2x scan.
    """

    scan_byte_weight: float = 1.0
    probe_weight: float = 32.0
    build_byte_weight: float = 2.0
    emit_weight: float = 4.0
    seconds_per_unit: float = 1e-3

    def units(self, meter: CostMeter) -> float:
        """Total abstract cost units charged on ``meter``."""
        return (
            meter.scan_bytes * self.scan_byte_weight
            + meter.probe_count * self.probe_weight
            + meter.build_bytes * self.build_byte_weight
            + meter.rows_emitted * self.emit_weight
        )

    def seconds(self, meter: CostMeter) -> float:
        """Simulated seconds for the metered work."""
        return self.units(meter) * self.seconds_per_unit

    def minutes(self, meter: CostMeter) -> float:
        """Simulated minutes for the metered work."""
        return self.seconds(meter) / 60.0

    def calibrated(self, target_seconds: float, meter: CostMeter) -> "CostModel":
        """A copy rescaled so ``meter``'s work takes ``target_seconds``."""
        units = self.units(meter)
        if units <= 0:
            raise GameConfigError("cannot calibrate against zero metered work")
        return CostModel(
            scan_byte_weight=self.scan_byte_weight,
            probe_weight=self.probe_weight,
            build_byte_weight=self.build_byte_weight,
            emit_weight=self.emit_weight,
            seconds_per_unit=target_seconds / units,
        )
