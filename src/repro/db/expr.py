"""A tiny predicate/expression AST for filters.

Expressions are evaluated against a row tuple plus its schema; ``compile_``
pre-resolves column positions into a closure so per-row evaluation does no
name lookups (the engine filters millions of rows across an experiment).

``compile_vec`` is the columnar twin: it compiles the same expression into
a closure over a :class:`~repro.db.columnar.ColumnBatch` that evaluates the
predicate for a whole batch at once with numpy, returning an array (or a
scalar for constant expressions — the vector operators broadcast it).
Both compilations implement identical semantics, which the equivalence
property tests assert row for row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Callable

import numpy as np

from repro.db.schema import Schema

__all__ = [
    "Expr",
    "Col",
    "Const",
    "Eq",
    "Ne",
    "Lt",
    "Le",
    "Gt",
    "Ge",
    "In",
    "And",
    "Or",
    "Not",
]


class Expr:
    """Base class: every expression compiles to ``row -> value``."""

    def compile_(self, schema: Schema) -> Callable[[tuple], object]:
        """Return a closure evaluating this expression on one row."""
        raise NotImplementedError

    def compile_vec(self, schema: Schema) -> Callable:
        """Return a closure evaluating this expression on a ColumnBatch."""
        raise NotImplementedError


@dataclass(frozen=True)
class Col(Expr):
    """A column reference."""

    name: str

    def compile_(self, schema: Schema) -> Callable[[tuple], object]:
        pos = schema.position(self.name)
        return lambda row: row[pos]

    def compile_vec(self, schema: Schema) -> Callable:
        pos = schema.position(self.name)
        return lambda batch: batch.columns[pos]


@dataclass(frozen=True)
class Const(Expr):
    """A literal value."""

    value: object

    def compile_(self, schema: Schema) -> Callable[[tuple], object]:
        value = self.value
        return lambda row: value

    def compile_vec(self, schema: Schema) -> Callable:
        value = self.value
        return lambda batch: value


@dataclass(frozen=True)
class _Binary(Expr):
    left: Expr
    right: Expr

    # Comparison operator; a plain class attribute (not a dataclass field)
    # overridden by each subclass.
    _op = None

    def compile_(self, schema: Schema) -> Callable[[tuple], object]:
        lf = self.left.compile_(schema)
        rf = self.right.compile_(schema)
        op = self._op
        return lambda row: op(lf(row), rf(row))

    def compile_vec(self, schema: Schema) -> Callable:
        lf = self.left.compile_vec(schema)
        rf = self.right.compile_vec(schema)
        op = self._op
        # Numpy comparison operators broadcast over (array, scalar) pairs
        # and evaluate elementwise on object arrays, matching the row
        # semantics value for value.
        return lambda batch: op(lf(batch), rf(batch))


class Eq(_Binary):
    """``left == right``"""

    _op = staticmethod(lambda a, b: a == b)


class Ne(_Binary):
    """``left != right``"""

    _op = staticmethod(lambda a, b: a != b)


class Lt(_Binary):
    """``left < right``"""

    _op = staticmethod(lambda a, b: a < b)


class Le(_Binary):
    """``left <= right``"""

    _op = staticmethod(lambda a, b: a <= b)


class Gt(_Binary):
    """``left > right``"""

    _op = staticmethod(lambda a, b: a > b)


class Ge(_Binary):
    """``left >= right``"""

    _op = staticmethod(lambda a, b: a >= b)


@dataclass(frozen=True)
class In(Expr):
    """``column value in a constant set`` — the semi-join predicate."""

    expr: Expr
    values: AbstractSet

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", frozenset(self.values))

    def compile_(self, schema: Schema) -> Callable[[tuple], object]:
        inner = self.expr.compile_(schema)
        values = self.values
        return lambda row: inner(row) in values

    def compile_vec(self, schema: Schema) -> Callable:
        inner = self.expr.compile_vec(schema)
        values = list(self.values)

        def test(batch):
            evaluated = np.asarray(inner(batch))
            if not values:
                return np.zeros(evaluated.shape, dtype=bool)
            return np.isin(evaluated, np.asarray(values))

        return test


@dataclass(frozen=True)
class And(Expr):
    """Logical conjunction."""

    left: Expr
    right: Expr

    def compile_(self, schema: Schema) -> Callable[[tuple], object]:
        lf = self.left.compile_(schema)
        rf = self.right.compile_(schema)
        return lambda row: bool(lf(row)) and bool(rf(row))

    def compile_vec(self, schema: Schema) -> Callable:
        lf = self.left.compile_vec(schema)
        rf = self.right.compile_vec(schema)
        return lambda batch: np.logical_and(lf(batch), rf(batch))


@dataclass(frozen=True)
class Or(Expr):
    """Logical disjunction."""

    left: Expr
    right: Expr

    def compile_(self, schema: Schema) -> Callable[[tuple], object]:
        lf = self.left.compile_(schema)
        rf = self.right.compile_(schema)
        return lambda row: bool(lf(row)) or bool(rf(row))

    def compile_vec(self, schema: Schema) -> Callable:
        lf = self.left.compile_vec(schema)
        rf = self.right.compile_vec(schema)
        return lambda batch: np.logical_or(lf(batch), rf(batch))


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    inner: Expr

    def compile_(self, schema: Schema) -> Callable[[tuple], object]:
        f = self.inner.compile_(schema)
        return lambda row: not bool(f(row))

    def compile_vec(self, schema: Schema) -> Callable:
        f = self.inner.compile_vec(schema)
        return lambda batch: np.logical_not(f(batch))
