"""Frozen catalog snapshots: the read side of copy-on-write storage.

A :class:`CatalogSnapshot` pins the whole catalog — tables, views,
indexes, statistics — at one epoch. It mirrors the read surface of
:class:`~repro.db.catalog.Catalog` exactly (``table``/``view``/
``has_view``/``hash_index``/``sorted_index``/``stats`` and the name
listings), so the planner and both execution engines run against a
snapshot unchanged. Construction is O(catalog entries), not O(data):
tables are wrapped in length-pinned
:class:`~repro.db.table.TableSnapshot` facades over the shared
append-only buffers, nothing is copied.

Mutating the live catalog after a snapshot is taken — drops included —
never disturbs the snapshot: registry dicts are copied at construction,
table reads are bounded by the pinned row counts, index objects cover
only the rows present at their build, and a view refresh installs a new
materialized table rather than touching the one the snapshot pinned.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.db.index import HashIndex, SortedIndex
from repro.db.stats import TableStats
from repro.db.table import TableSnapshot
from repro.errors import QueryError

if TYPE_CHECKING:
    from repro.db.catalog import Catalog
    from repro.db.view import MaterializedView

__all__ = ["CatalogSnapshot", "ViewSnapshot"]


class ViewSnapshot:
    """A materialized view pinned at snapshot time.

    Exposes the attributes plans and pricing read from a live
    :class:`~repro.db.view.MaterializedView`; the materialized ``table``
    is itself a :class:`~repro.db.table.TableSnapshot`, so a concurrent
    refresh or append cannot change what the snapshot serves.
    """

    __slots__ = ("name", "table", "depends_on", "build_cost_units")

    def __init__(self, view: "MaterializedView") -> None:
        self.name = view.name
        self.table = view.table.snapshot() if view.table is not None else None
        self.depends_on = view.depends_on
        self.build_cost_units = view.build_cost_units

    @property
    def is_materialized(self) -> bool:
        """True when the view had been materialized at snapshot time."""
        return self.table is not None

    @property
    def byte_size(self) -> int:
        """Logical storage footprint; raises if not materialized."""
        if self.table is None:
            raise QueryError(f"view {self.name!r} is not materialized")
        return self.table.byte_size

    def __repr__(self) -> str:
        return f"ViewSnapshot({self.name!r}, rows={len(self.table or ())})"


class CatalogSnapshot:
    """The catalog's read API, frozen at one epoch."""

    __slots__ = (
        "_epoch",
        "_tables",
        "_views",
        "_hash_indexes",
        "_sorted_indexes",
        "_stats",
    )

    def __init__(self, catalog: "Catalog") -> None:
        self._epoch = catalog.epoch
        self._tables: dict[str, TableSnapshot] = {
            name: table.snapshot() for name, table in catalog._tables.items()
        }
        self._views: dict[str, ViewSnapshot] = {
            name: ViewSnapshot(view) for name, view in catalog._views.items()
        }
        self._hash_indexes: dict[tuple[str, str], HashIndex] = dict(
            catalog._hash_indexes
        )
        self._sorted_indexes: dict[tuple[str, str], SortedIndex] = dict(
            catalog._sorted_indexes
        )
        self._stats: dict[str, TableStats] = dict(catalog._stats)

    @property
    def epoch(self) -> int:
        """The catalog epoch this snapshot was pinned at."""
        return self._epoch

    def snapshot(self) -> "CatalogSnapshot":
        """Snapshots are already pinned; snapshotting one is the identity."""
        return self

    # ------------------------------------------------------------- tables --

    def table(self, name: str) -> TableSnapshot:
        """Look a pinned table up by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"no table named {name!r}") from None

    @property
    def table_names(self) -> list[str]:
        """All table names registered at snapshot time, sorted."""
        return sorted(self._tables)

    # -------------------------------------------------------------- views --

    def view(self, name: str) -> ViewSnapshot:
        """Look a pinned view up by name."""
        try:
            return self._views[name]
        except KeyError:
            raise QueryError(f"no view named {name!r}") from None

    def has_view(self, name: str) -> bool:
        """True when a view of that name existed at snapshot time."""
        return name in self._views

    @property
    def view_names(self) -> list[str]:
        """All view names registered at snapshot time, sorted."""
        return sorted(self._views)

    # ------------------------------------------------------------ indexes --

    def hash_index(self, table_name: str, key: str) -> HashIndex | None:
        """The hash index on ``table.key`` pinned at snapshot time."""
        return self._hash_indexes.get((table_name, key))

    def sorted_index(self, table_name: str, key: str) -> SortedIndex | None:
        """The sorted index on ``table.key`` pinned at snapshot time."""
        return self._sorted_indexes.get((table_name, key))

    # --------------------------------------------------------- statistics --

    def stats(self, name: str) -> TableStats | None:
        """The statistics registered for one table at snapshot time."""
        return self._stats.get(name)

    def __repr__(self) -> str:
        return (
            f"CatalogSnapshot(epoch={self._epoch}, "
            f"tables={len(self._tables)}, views={len(self._views)})"
        )
