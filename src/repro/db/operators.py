"""Iterator-style physical operators with cost accounting.

Each operator is a generator over row tuples that charges its work to a
shared :class:`~repro.db.costmodel.CostMeter`. Plans are built by nesting
operators; schemas travel alongside via the ``schema`` attribute so parents
can compile predicates and projections once.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.db.costmodel import CostMeter
from repro.db.expr import Expr
from repro.db.index import HashIndex
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import QueryError

__all__ = ["SeqScan", "IndexLookup", "Filter", "Project", "HashJoin", "GroupCount"]


class Operator:
    """Base class: exposes ``schema`` and an ``execute(meter)`` iterator."""

    schema: Schema

    def execute(self, meter: CostMeter) -> Iterator[tuple]:
        """Yield result rows, charging work to ``meter``."""
        raise NotImplementedError

    def materialize(self, meter: CostMeter) -> list[tuple]:
        """Run to completion and collect the rows."""
        return list(self.execute(meter))


class SeqScan(Operator):
    """Full scan of a table; charges bytes proportional to row width."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.schema = table.schema

    def execute(self, meter: CostMeter) -> Iterator[tuple]:
        meter.charge_scan(len(self.table), self.schema.row_width)
        meter.bump(f"scan:{self.table.name}")
        for row in self.table.rows():
            yield row


class IndexLookup(Operator):
    """Equality probes of a hash index for a batch of key values."""

    def __init__(self, index: HashIndex, values: Sequence) -> None:
        self.index = index
        self.values = list(values)
        self.schema = index.table.schema

    def execute(self, meter: CostMeter) -> Iterator[tuple]:
        for value in self.values:
            yield from self.index.lookup(value, meter)


class Filter(Operator):
    """Row filter over a child operator."""

    def __init__(self, child: Operator, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def execute(self, meter: CostMeter) -> Iterator[tuple]:
        test = self.predicate.compile_(self.schema)
        for row in self.child.execute(meter):
            if test(row):
                meter.emit()
                yield row


class Project(Operator):
    """Column projection over a child operator."""

    def __init__(self, child: Operator, columns: Sequence[str]) -> None:
        if not columns:
            raise QueryError("projection needs at least one column")
        self.child = child
        self.columns = tuple(columns)
        self.schema = child.schema.project(columns)
        self._positions = [child.schema.position(c) for c in columns]

    def execute(self, meter: CostMeter) -> Iterator[tuple]:
        positions = self._positions
        for row in self.child.execute(meter):
            yield tuple(row[p] for p in positions)


class HashJoin(Operator):
    """Equi-join: build a hash table on the right, probe with the left.

    The result schema is the left schema followed by the right schema with
    the join key dropped (it would be a duplicate name).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key: str,
        right_key: str,
    ) -> None:
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        right_cols = [
            c for c in right.schema.columns if c.name != right_key
        ]
        self.schema = Schema(list(left.schema.columns) + right_cols)
        self._left_pos = left.schema.position(left_key)
        self._right_pos = right.schema.position(right_key)

    def execute(self, meter: CostMeter) -> Iterator[tuple]:
        build: dict = {}
        right_rows = 0
        for row in self.right.execute(meter):
            build.setdefault(row[self._right_pos], []).append(row)
            right_rows += 1
        meter.charge_build(right_rows, self.right.schema.row_width)

        rpos = self._right_pos
        for left_row in self.left.execute(meter):
            meter.charge_probe(1)
            for right_row in build.get(left_row[self._left_pos], ()):
                meter.emit()
                yield left_row + tuple(
                    v for i, v in enumerate(right_row) if i != rpos
                )


class GroupCount(Operator):
    """``SELECT key, COUNT(*) GROUP BY key`` — the merger-tree histogram."""

    def __init__(self, child: Operator, key: str) -> None:
        self.child = child
        self.key = key
        self.schema = Schema.of(**{key: child.schema.project([key]).columns[0].dtype,
                                   "count": "int"})
        self._pos = child.schema.position(key)

    def execute(self, meter: CostMeter) -> Iterator[tuple]:
        counts: dict = {}
        rows = 0
        for row in self.child.execute(meter):
            counts[row[self._pos]] = counts.get(row[self._pos], 0) + 1
            rows += 1
        meter.charge_build(rows, 8)
        for key_value, count in counts.items():
            meter.emit()
            yield (key_value, count)
