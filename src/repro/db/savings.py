"""What-if savings: pricing candidate physical designs against workloads.

The paper derives a tenant's *value* for a shared optimization from the
query cost it saves her. :mod:`repro.astro.usecase` does this for the
astronomy views with a hand-derived formula; this module is the generic
estimator behind the fleet's workload-to-bid pipeline
(:mod:`repro.fleet.pipeline`): given a candidate narrow view over a base
table, it prices the candidate's storage footprint and estimates the cost
units one query pass saves, using the same :class:`~repro.db.costmodel`
weights the execution engine charges.

The per-pass saving follows the planner's access-path arithmetic
(:func:`repro.db.planner.what_if_scan_bytes`): in a row store a projection
does not reduce scan bytes, so a narrow materialized view saves
``wide_bytes - view_bytes`` of sequential scan per pass, plus — when the
view also absorbs a row filter — one filter emit per surviving row that
the base-table fallback must still pay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.db.catalog import Catalog
from repro.db.costmodel import CostModel
from repro.errors import GameConfigError, QueryError

__all__ = ["CandidateView", "SavingsQuote", "SavingsEstimator"]


@dataclass(frozen=True)
class CandidateView:
    """A hypothetical narrow materialized view over one base table.

    ``columns`` is the projection; ``keep_fraction`` the fraction of base
    rows the view retains (1.0 for a pure projection, less when the view
    also absorbs a filter the queries would otherwise re-apply).
    """

    name: str
    table_name: str
    columns: tuple
    keep_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not self.columns:
            raise GameConfigError(f"candidate {self.name!r} projects no columns")
        if not 0.0 < self.keep_fraction <= 1.0:
            raise GameConfigError(
                f"keep_fraction must be in (0, 1], got {self.keep_fraction}"
            )
        object.__setattr__(self, "columns", tuple(self.columns))


@dataclass(frozen=True)
class SavingsQuote:
    """One candidate fully priced in a single estimator pass.

    Produced by :meth:`SavingsEstimator.price_many`; the fields equal the
    corresponding per-candidate methods exactly (same arithmetic, same
    operation order), so batch consumers like the fleet pipeline get
    bit-identical numbers at a fraction of the calls.
    """

    view_rows: int
    view_bytes: float
    build_units: float
    saving_units_per_run: float

    def saving_seconds(self, runs: float, seconds_per_unit: float) -> float:
        """Simulated seconds ``runs`` narrow passes save under this quote."""
        if runs < 0:
            raise GameConfigError(f"run count must be >= 0, got {runs}")
        return self.saving_units_per_run * runs * seconds_per_unit


class SavingsEstimator:
    """Estimate candidate costs and per-run savings from catalog metadata.

    Everything is closed-form over row counts and schema widths — nothing
    is executed — which is what lets the fleet pipeline price hundreds of
    candidates against thousands of tenant workloads cheaply.
    """

    def __init__(self, catalog: Catalog, model: CostModel | None = None) -> None:
        self.catalog = catalog
        self.model = model if model is not None else CostModel()

    # ------------------------------------------------------------- sizing --

    def view_rows(self, candidate: CandidateView) -> int:
        """Rows the candidate would materialize."""
        table = self.catalog.table(candidate.table_name)
        return int(round(len(table) * candidate.keep_fraction))

    def view_bytes(self, candidate: CandidateView) -> float:
        """Storage bytes of the materialized candidate."""
        table = self.catalog.table(candidate.table_name)
        width = table.schema.project(list(candidate.columns)).row_width
        return float(self.view_rows(candidate) * width)

    def build_units(self, candidate: CandidateView) -> float:
        """One-off materialization cost: scan the base, write the view."""
        table = self.catalog.table(candidate.table_name)
        model = self.model
        return (
            len(table) * table.schema.row_width * model.scan_byte_weight
            + self.view_bytes(candidate) * model.build_byte_weight
        )

    # ------------------------------------------------------------ savings --

    def saving_units_per_run(self, candidate: CandidateView) -> float:
        """Cost units one narrow pass saves versus scanning the base table.

        Zero when the candidate does not help (e.g. the projection is as
        wide as the base row); never negative.
        """
        table = self.catalog.table(candidate.table_name)
        model = self.model
        wide_bytes = len(table) * table.schema.row_width
        units = (wide_bytes - self.view_bytes(candidate)) * model.scan_byte_weight
        if candidate.keep_fraction < 1.0:
            # The base-table fallback re-applies the absorbed filter: one
            # emit per surviving row (see repro.db.planner._narrow_source).
            units += self.view_rows(candidate) * model.emit_weight
        return max(units, 0.0)

    def saving_seconds(self, candidate: CandidateView, runs: float = 1.0) -> float:
        """Simulated seconds saved by ``runs`` narrow passes."""
        if runs < 0:
            raise GameConfigError(f"run count must be >= 0, got {runs}")
        return self.saving_units_per_run(candidate) * runs * self.model.seconds_per_unit

    def price_many(
        self, candidates: Iterable[CandidateView]
    ) -> Mapping[str, SavingsQuote]:
        """Price every candidate once: ``{name: SavingsQuote}``.

        One estimator pass per candidate instead of one per (workload,
        candidate) pair — the fleet pipeline's bid generation goes from
        O(W x C) catalog walks to O(C). Numbers are bit-identical to the
        per-candidate methods.
        """
        quotes: dict[str, SavingsQuote] = {}
        for candidate in candidates:
            quotes[candidate.name] = SavingsQuote(
                view_rows=self.view_rows(candidate),
                view_bytes=self.view_bytes(candidate),
                build_units=self.build_units(candidate),
                saving_units_per_run=self.saving_units_per_run(candidate),
            )
        return quotes

    def index_saving_units(
        self, table_name: str, probes: int, expected_matches: float
    ) -> float:
        """Cost units a hash-index probe plan saves versus one wide scan.

        Mirrors :func:`repro.db.planner.what_if_index_units` on the probe
        side; clamped at zero when probing is not cheaper.
        """
        if probes < 0:
            raise QueryError(f"probe count must be >= 0, got {probes}")
        table = self.catalog.table(table_name)
        model = self.model
        scan_units = len(table) * table.schema.row_width * model.scan_byte_weight
        probe_units = probes * model.probe_weight + expected_matches * model.emit_weight
        return max(scan_units - probe_units, 0.0)
