"""What-if savings: pricing candidate physical designs against workloads.

The paper derives a tenant's *value* for a shared optimization from the
query cost it saves her. :mod:`repro.astro.usecase` does this for the
astronomy views with a hand-derived formula; this module is the generic
estimator behind the fleet's workload-to-bid pipeline
(:mod:`repro.fleet.pipeline`): given a candidate narrow view over a base
table, it prices the candidate's storage footprint and estimates the cost
units one query pass saves, using the same :class:`~repro.db.costmodel`
weights the execution engine charges.

The per-pass saving follows the planner's access-path arithmetic
(:func:`repro.db.planner.what_if_scan_bytes`): in a row store a projection
does not reduce scan bytes, so a narrow materialized view saves
``wide_bytes - view_bytes`` of sequential scan per pass, plus — when the
view also absorbs a row filter — one filter emit per surviving row that
the base-table fallback must still pay.

Indexes are priced through the same interface: a
:class:`CandidateIndex` replaces one wide sequential scan per run with
``probes_per_run`` probes plus the expected matching-row emits, where the
expected matches come from the table's registered ANALYZE statistics
(:meth:`~repro.db.catalog.Catalog.stats` — equality selectivity for hash
indexes, range selectivity for sorted ones). Both candidate kinds flow
through :meth:`SavingsEstimator.price_many` into the same fleet pricing
games, which is what makes indexes first-class purchasable optimizations
rather than a planner-only concern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Union

from repro.db.catalog import Catalog
from repro.db.costmodel import CostModel
from repro.errors import GameConfigError, QueryError

__all__ = [
    "CandidateView",
    "CandidateIndex",
    "Candidate",
    "SavingsQuote",
    "SavingsEstimator",
]

#: Logical bytes one index entry spends on its row-id pointer.
RID_WIDTH = 8

#: Index kinds a :class:`CandidateIndex` may take.
INDEX_KINDS = ("hash", "sorted")


@dataclass(frozen=True)
class CandidateView:
    """A hypothetical narrow materialized view over one base table.

    ``columns`` is the projection; ``keep_fraction`` the fraction of base
    rows the view retains (1.0 for a pure projection, less when the view
    also absorbs a filter the queries would otherwise re-apply).
    """

    name: str
    table_name: str
    columns: tuple
    keep_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not self.columns:
            raise GameConfigError(f"candidate {self.name!r} projects no columns")
        if not 0.0 < self.keep_fraction <= 1.0:
            raise GameConfigError(
                f"keep_fraction must be in (0, 1], got {self.keep_fraction}"
            )
        object.__setattr__(self, "columns", tuple(self.columns))


@dataclass(frozen=True)
class CandidateIndex:
    """A hypothetical secondary index over one base-table column.

    ``kind`` selects the access pattern being priced: a ``"hash"`` index
    answers equality probes, a ``"sorted"`` index answers one range probe
    per run (``low``/``high`` describe the typical range; None means
    unbounded on that side). ``probes_per_run`` is the workload-normalized
    probe count one query pass issues — e.g. a semi-join probing each of
    ``k`` keys prices as ``k`` probes.
    """

    name: str
    table_name: str
    column: str
    kind: str = "hash"
    probes_per_run: float = 1.0
    low: object = None
    high: object = None

    def __post_init__(self) -> None:
        if self.kind not in INDEX_KINDS:
            raise GameConfigError(
                f"index kind must be one of {INDEX_KINDS}, got {self.kind!r}"
            )
        if self.probes_per_run <= 0:
            raise GameConfigError(
                f"probes per run must be > 0, got {self.probes_per_run}"
            )


@dataclass(frozen=True)
class SavingsQuote:
    """One candidate fully priced in a single estimator pass.

    Produced by :meth:`SavingsEstimator.price_many`; the fields equal the
    corresponding per-candidate methods exactly (same arithmetic, same
    operation order), so batch consumers like the fleet pipeline get
    bit-identical numbers at a fraction of the calls. For index candidates
    the ``view_rows``/``view_bytes`` fields hold the index's covered rows
    and storage footprint (``kind`` tells the two apart). ``epoch`` is the
    catalog epoch the quote was priced at (None when the catalog predates
    epoch versioning): quotes are estimates over mutable state, and the
    epoch says exactly which state.
    """

    view_rows: int
    view_bytes: float
    build_units: float
    saving_units_per_run: float
    kind: str = "view"
    epoch: int | None = None

    def saving_seconds(self, runs: float, seconds_per_unit: float) -> float:
        """Simulated seconds ``runs`` optimized passes save under this quote."""
        if runs < 0:
            raise GameConfigError(f"run count must be >= 0, got {runs}")
        return self.saving_units_per_run * runs * seconds_per_unit


#: Anything :meth:`SavingsEstimator.price_many` can price.
Candidate = Union[CandidateView, CandidateIndex]


class SavingsEstimator:
    """Estimate candidate costs and per-run savings from catalog metadata.

    Everything is closed-form over row counts and schema widths — nothing
    is executed — which is what lets the fleet pipeline price hundreds of
    candidates against thousands of tenant workloads cheaply.
    """

    def __init__(self, catalog: Catalog, model: CostModel | None = None) -> None:
        self.catalog = catalog
        self.model = model if model is not None else CostModel()

    # ------------------------------------------------------------- sizing --

    def view_rows(self, candidate: CandidateView) -> int:
        """Rows the candidate would materialize."""
        table = self.catalog.table(candidate.table_name)
        return int(round(len(table) * candidate.keep_fraction))

    def view_bytes(self, candidate: CandidateView) -> float:
        """Storage bytes of the materialized candidate."""
        table = self.catalog.table(candidate.table_name)
        width = table.schema.project(list(candidate.columns)).row_width
        return float(self.view_rows(candidate) * width)

    def build_units(self, candidate: CandidateView) -> float:
        """One-off materialization cost: scan the base, write the view."""
        table = self.catalog.table(candidate.table_name)
        model = self.model
        return (
            len(table) * table.schema.row_width * model.scan_byte_weight
            + self.view_bytes(candidate) * model.build_byte_weight
        )

    # ------------------------------------------------------------ savings --

    def saving_units_per_run(self, candidate: CandidateView) -> float:
        """Cost units one narrow pass saves versus scanning the base table.

        Zero when the candidate does not help (e.g. the projection is as
        wide as the base row); never negative.
        """
        table = self.catalog.table(candidate.table_name)
        model = self.model
        wide_bytes = len(table) * table.schema.row_width
        units = (wide_bytes - self.view_bytes(candidate)) * model.scan_byte_weight
        if candidate.keep_fraction < 1.0:
            # The base-table fallback re-applies the absorbed filter: one
            # emit per surviving row (see repro.db.planner._narrow_source).
            units += self.view_rows(candidate) * model.emit_weight
        return max(units, 0.0)

    def saving_seconds(self, candidate: CandidateView, runs: float = 1.0) -> float:
        """Simulated seconds saved by ``runs`` narrow passes."""
        if runs < 0:
            raise GameConfigError(f"run count must be >= 0, got {runs}")
        return self.saving_units_per_run(candidate) * runs * self.model.seconds_per_unit

    # ------------------------------------------------------------ indexes --

    def index_rows(self, candidate: CandidateIndex) -> int:
        """Rows the candidate index would cover."""
        return len(self.catalog.table(candidate.table_name))

    def index_bytes(self, candidate: CandidateIndex) -> float:
        """Storage bytes of the index: one (key, rid) entry per row."""
        table = self.catalog.table(candidate.table_name)
        key_width = table.schema.project([candidate.column]).row_width
        return float(len(table) * (key_width + RID_WIDTH))

    def index_build_units(self, candidate: CandidateIndex) -> float:
        """One-off build cost, mirroring what the real index constructors
        charge (:class:`~repro.db.index.HashIndex` /
        :class:`~repro.db.index.SortedIndex`: one build pass over the wide
        base rows)."""
        table = self.catalog.table(candidate.table_name)
        return (
            len(table) * table.schema.row_width * self.model.build_byte_weight
        )

    def expected_matches_per_run(self, candidate: CandidateIndex) -> float:
        """Rows one run's probes are expected to fetch, from ANALYZE stats.

        Hash candidates estimate equality matches per probe through the
        column's distinct count; sorted candidates estimate one range
        probe's matches through range selectivity. Without registered
        statistics (:meth:`~repro.db.catalog.Catalog.analyze_table`), the
        conservative fallback assumes unique keys: one match per probe.
        """
        stats = self.catalog.stats(candidate.table_name)
        if stats is None or candidate.column not in stats.columns:
            return candidate.probes_per_run
        column = stats.column(candidate.column)
        if candidate.kind == "sorted":
            fraction = column.range_selectivity(candidate.low, candidate.high)
            return candidate.probes_per_run * stats.row_count * fraction
        return candidate.probes_per_run * stats.row_count * column.eq_selectivity()

    def index_saving_units_per_run(self, candidate: CandidateIndex) -> float:
        """Cost units one probe-plan run saves versus one wide scan."""
        return self.index_saving_units(
            candidate.table_name,
            probes=candidate.probes_per_run,
            expected_matches=self.expected_matches_per_run(candidate),
        )

    # -------------------------------------------------------------- batch --

    def quote(self, candidate: Candidate) -> SavingsQuote:
        """Fully price one candidate of either kind.

        The quote is stamped with the catalog epoch it was priced at, so
        downstream consumers (pricing games, gateway replies) can tell
        which catalog state the estimate describes.
        """
        epoch = getattr(self.catalog, "epoch", None)
        if isinstance(candidate, CandidateIndex):
            return SavingsQuote(
                view_rows=self.index_rows(candidate),
                view_bytes=self.index_bytes(candidate),
                build_units=self.index_build_units(candidate),
                saving_units_per_run=self.index_saving_units_per_run(candidate),
                kind=candidate.kind,
                epoch=epoch,
            )
        return SavingsQuote(
            view_rows=self.view_rows(candidate),
            view_bytes=self.view_bytes(candidate),
            build_units=self.build_units(candidate),
            saving_units_per_run=self.saving_units_per_run(candidate),
            kind="view",
            epoch=epoch,
        )

    def price_many(
        self, candidates: Iterable[Candidate]
    ) -> Mapping[str, SavingsQuote]:
        """Price every candidate once: ``{name: SavingsQuote}``.

        One estimator pass per candidate instead of one per (workload,
        candidate) pair — the fleet pipeline's bid generation goes from
        O(W x C) catalog walks to O(C). Numbers are bit-identical to the
        per-candidate methods, and views and indexes share the quote type
        so the pricing games downstream cannot tell them apart.
        """
        return {c.name: self.quote(c) for c in candidates}

    def index_saving_units(
        self, table_name: str, probes: float, expected_matches: float
    ) -> float:
        """Cost units a probe plan saves versus one wide scan.

        Mirrors :func:`repro.db.planner.what_if_index_units` on the probe
        side; clamped at zero when probing is not cheaper.
        """
        if probes < 0:
            raise QueryError(f"probe count must be >= 0, got {probes}")
        table = self.catalog.table(table_name)
        model = self.model
        scan_units = len(table) * table.schema.row_width * model.scan_byte_weight
        probe_units = probes * model.probe_weight + expected_matches * model.emit_weight
        return max(scan_units - probe_units, 0.0)
