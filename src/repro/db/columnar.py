"""Columnar batches: the unit of data the vectorized operators exchange.

A :class:`ColumnBatch` is a schema plus one numpy array per column, all of
equal length. Vector operators (:mod:`repro.db.vec_operators`) consume and
produce batches; ``to_rows`` converts back to the row-tuple form the
iterator engine emits, with plain Python values (``int``/``float``/``str``)
so results from the two paths compare equal bit for bit.

Batches are immutable: the arrays a batch holds are read-only views, so a
batch captured by a reader can never be torn by a concurrent table append.
Each batch carries the ``epoch`` of the storage state it was derived from,
which derived batches (``take``/``filter``/``project``) inherit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.db.schema import Schema
from repro.errors import SchemaError

__all__ = ["ColumnBatch", "NUMPY_DTYPES", "column_dtype"]

#: Numpy storage dtype per logical column type. Strings use ``object`` so
#: arbitrary-length values survive gathers and comparisons unchanged.
NUMPY_DTYPES = {"int": np.int64, "float": np.float64, "str": object}


def column_dtype(dtype: str):
    """Numpy dtype used to store one logical column type."""
    return NUMPY_DTYPES[dtype]


def _frozen(array: np.ndarray) -> np.ndarray:
    """A read-only view of ``array`` (the caller's array is not altered)."""
    view = array[:]
    view.flags.writeable = False
    return view


class ColumnBatch:
    """An ordered set of equal-length, read-only column arrays.

    ``epoch`` tags the storage epoch the batch was pinned at; batches built
    ad hoc (operator outputs, literals) default to epoch ``0``.
    """

    __slots__ = ("schema", "columns", "epoch")

    def __init__(
        self, schema: Schema, columns: Sequence[np.ndarray], epoch: int = 0
    ) -> None:
        if len(columns) != len(schema.columns):
            raise SchemaError(
                f"batch has {len(columns)} arrays for {len(schema.columns)} columns"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(f"column arrays disagree on length: {sorted(lengths)}")
        self.schema = schema
        self.columns = tuple(_frozen(np.asarray(c)) for c in columns)
        self.epoch = epoch

    def __len__(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def column(self, name: str) -> np.ndarray:
        """One column's array, addressed by name."""
        return self.columns[self.schema.position(name)]

    def take(self, indices: np.ndarray) -> "ColumnBatch":
        """Row gather: a new batch of the rows at ``indices``, in order."""
        return ColumnBatch(
            self.schema, [c[indices] for c in self.columns], epoch=self.epoch
        )

    def filter(self, mask: np.ndarray) -> "ColumnBatch":
        """Boolean row selection preserving order."""
        return ColumnBatch(
            self.schema, [c[mask] for c in self.columns], epoch=self.epoch
        )

    def project(self, names: Sequence[str]) -> "ColumnBatch":
        """Column selection in the requested order."""
        return ColumnBatch(
            self.schema.project(names),
            [self.column(n) for n in names],
            epoch=self.epoch,
        )

    def to_rows(self) -> list[tuple]:
        """The batch as row tuples of plain Python values.

        ``ndarray.tolist`` converts numpy scalars to native ``int``/
        ``float``/``str``, so the rows are indistinguishable from the
        iterator engine's output.
        """
        if not self.columns:
            return []
        return list(zip(*[c.tolist() for c in self.columns]))

    def __repr__(self) -> str:
        return f"ColumnBatch(rows={len(self)}, epoch={self.epoch}, {self.schema!r})"
