"""Typed relational schemas for the mini engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SchemaError

__all__ = ["Column", "Schema", "TYPE_WIDTHS"]

#: Logical byte widths per column type, used by the cost model: scanning a
#: wide particle row costs proportionally more than a narrow view row.
TYPE_WIDTHS = {"int": 8, "float": 8, "str": 24}


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    dtype: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.dtype not in TYPE_WIDTHS:
            raise SchemaError(
                f"unknown dtype {self.dtype!r}; expected one of {sorted(TYPE_WIDTHS)}"
            )

    @property
    def width(self) -> int:
        """Logical byte width of one value."""
        return TYPE_WIDTHS[self.dtype]


class Schema:
    """An ordered list of uniquely named columns."""

    def __init__(self, columns: Sequence[Column]) -> None:
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        if not columns:
            raise SchemaError("a schema needs at least one column")
        self.columns = tuple(columns)
        self._positions = {c.name: i for i, c in enumerate(self.columns)}

    @classmethod
    def of(cls, **dtypes: str) -> "Schema":
        """Keyword shorthand: ``Schema.of(pid="int", x="float")``."""
        return cls([Column(name, dtype) for name, dtype in dtypes.items()])

    def position(self, name: str) -> int:
        """Index of a column within a row tuple."""
        try:
            return self._positions[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; have {[c.name for c in self.columns]}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._positions

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.dtype}" for c in self.columns)
        return f"Schema({cols})"

    @property
    def names(self) -> tuple:
        """Column names in order."""
        return tuple(c.name for c in self.columns)

    @property
    def row_width(self) -> int:
        """Logical byte width of one full row — the scan-cost driver."""
        return sum(c.width for c in self.columns)

    def project(self, names: Sequence[str]) -> "Schema":
        """Sub-schema of the named columns, in the requested order."""
        return Schema([self.columns[self.position(n)] for n in names])

    def validate_row(self, row: Sequence) -> tuple:
        """Type-check one row against the schema and coerce it to a tuple."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row has {len(row)} values for {len(self.columns)} columns"
            )
        out = []
        for value, column in zip(row, self.columns):
            if column.dtype == "int":
                if not isinstance(value, (int,)) or isinstance(value, bool):
                    raise SchemaError(
                        f"column {column.name!r} expects int, got {value!r}"
                    )
            elif column.dtype == "float":
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise SchemaError(
                        f"column {column.name!r} expects float, got {value!r}"
                    )
                value = float(value)
            else:
                if not isinstance(value, str):
                    raise SchemaError(
                        f"column {column.name!r} expects str, got {value!r}"
                    )
            out.append(value)
        return tuple(out)
