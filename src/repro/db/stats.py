"""Table statistics (ANALYZE) and selectivity estimation.

The planner's what-if pricing needs cost *estimates* without executing
plans. ``analyze`` collects per-column statistics (distinct counts,
min/max) in one pass; the per-column objects turn simple predicates into
row-fraction estimates with the classical System-R assumptions
(uniformity, independence). The advisor's candidate enumeration and the
cost-based planner both consume these estimates, so they are the single
source of "how many rows will this touch" in the whole pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.db.table import Table
from repro.errors import QueryError

__all__ = ["ColumnStats", "TableStats", "analyze"]


@dataclass(frozen=True)
class ColumnStats:
    """One column's summary statistics."""

    name: str
    distinct: int
    minimum: object
    maximum: object

    def eq_selectivity(self) -> float:
        """Estimated fraction of rows matching ``col = const``."""
        if self.distinct <= 0:
            return 0.0
        return 1.0 / self.distinct

    def range_selectivity(self, low, high) -> float:
        """Estimated fraction matching ``low <= col <= high``.

        Falls back to 1/3 (the System-R default) for non-numeric columns
        (including all-null columns, whose bounds are ``None``). A
        single-value column matches fully when its value lies inside the
        requested range and not at all otherwise; requested bounds are
        clamped to the observed min/max before the span ratio is taken.
        """
        if not isinstance(self.minimum, (int, float)) or not isinstance(
            self.maximum, (int, float)
        ):
            return 1.0 / 3.0
        span = float(self.maximum) - float(self.minimum)
        lo = float(self.minimum) if low is None else max(float(low), float(self.minimum))
        hi = float(self.maximum) if high is None else min(float(high), float(self.maximum))
        if hi < lo:
            return 0.0
        if span <= 0:
            return 1.0
        return min(1.0, (hi - lo) / span)


@dataclass(frozen=True)
class TableStats:
    """Row count plus per-column statistics."""

    table_name: str
    row_count: int
    row_width: int
    columns: Mapping[str, ColumnStats]

    def column(self, name: str) -> ColumnStats:
        """Statistics of one column."""
        try:
            return self.columns[name]
        except KeyError:
            raise QueryError(
                f"no statistics for column {name!r} of {self.table_name!r}"
            ) from None

    def estimated_rows_eq(self, column: str) -> float:
        """Estimated matches of an equality predicate on ``column``."""
        return self.row_count * self.column(column).eq_selectivity()

    def estimated_scan_bytes(self) -> float:
        """Bytes one full scan reads."""
        return float(self.row_count * self.row_width)


def analyze(table: Table, columns: Sequence[str] | None = None) -> TableStats:
    """Collect statistics in one pass over ``table``.

    ``columns`` restricts the pass to the named columns (the advisor only
    ever needs the handful a workload touches); asking for a column the
    table does not have raises :class:`~repro.errors.QueryError` naming
    the table, never a bare ``KeyError``.
    """
    if columns is None:
        wanted = [c.name for c in table.schema.columns]
    else:
        wanted = list(columns)
        known = set(table.schema.names)
        for name in wanted:
            if name not in known:
                raise QueryError(
                    f"cannot analyze column {name!r}: table {table.name!r} "
                    f"has columns {list(table.schema.names)}"
                )
    positions = {name: table.schema.position(name) for name in wanted}
    seen: dict[str, set] = {name: set() for name in positions}
    minimum: dict[str, object] = {}
    maximum: dict[str, object] = {}
    for row in table.rows():
        for name, pos in positions.items():
            value = row[pos]
            seen[name].add(value)
            if name not in minimum or value < minimum[name]:
                minimum[name] = value
            if name not in maximum or value > maximum[name]:
                maximum[name] = value
    columns = {
        name: ColumnStats(
            name=name,
            distinct=len(seen[name]),
            minimum=minimum.get(name),
            maximum=maximum.get(name),
        )
        for name in positions
    }
    return TableStats(
        table_name=table.name,
        row_count=len(table),
        row_width=table.schema.row_width,
        columns=columns,
    )
