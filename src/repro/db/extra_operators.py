"""Additional physical operators: sort, limit, distinct, general aggregation.

The core astronomy path only needs scan/filter/project/group-count; these
round the engine out to the operator set a downstream user would expect
(top-k halo queries, deduplicated projections, mass sums per halo) and are
used by the extended examples and tests.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.db.costmodel import CostMeter
from repro.db.operators import Operator
from repro.db.schema import Schema
from repro.errors import QueryError

__all__ = ["Sort", "Limit", "Distinct", "GroupAggregate", "AGGREGATES"]

#: Supported aggregate functions: name -> (fold over a list of values).
AGGREGATES: dict[str, Callable] = {
    "count": len,
    "sum": sum,
    "min": min,
    "max": max,
    "avg": lambda vals: sum(vals) / len(vals),
}


class Sort(Operator):
    """Full sort on one column; charges a build of the spilled rows."""

    def __init__(self, child: Operator, key: str, descending: bool = False) -> None:
        self.child = child
        self.key = key
        self.descending = descending
        self.schema = child.schema
        self._pos = child.schema.position(key)

    def execute(self, meter: CostMeter) -> Iterator[tuple]:
        rows = list(self.child.execute(meter))
        meter.charge_build(len(rows), self.schema.row_width)
        rows.sort(key=lambda r: r[self._pos], reverse=self.descending)
        for row in rows:
            meter.emit()
            yield row


class Limit(Operator):
    """Stop after ``count`` rows — early termination saves child work only
    insofar as the child is lazy (all our scans are)."""

    def __init__(self, child: Operator, count: int) -> None:
        if count < 0:
            raise QueryError(f"limit must be >= 0, got {count}")
        self.child = child
        self.count = count
        self.schema = child.schema

    def execute(self, meter: CostMeter) -> Iterator[tuple]:
        if self.count == 0:
            return
        produced = 0
        for row in self.child.execute(meter):
            yield row
            produced += 1
            if produced >= self.count:
                return


class Distinct(Operator):
    """Hash-based duplicate elimination over full rows."""

    def __init__(self, child: Operator) -> None:
        self.child = child
        self.schema = child.schema

    def execute(self, meter: CostMeter) -> Iterator[tuple]:
        seen: set = set()
        for row in self.child.execute(meter):
            meter.charge_probe(1)
            if row in seen:
                continue
            seen.add(row)
            meter.emit()
            yield row


class GroupAggregate(Operator):
    """``SELECT key, AGG(value) GROUP BY key`` for any registered AGG."""

    def __init__(
        self, child: Operator, key: str, value: str, aggregate: str
    ) -> None:
        if aggregate not in AGGREGATES:
            raise QueryError(
                f"unknown aggregate {aggregate!r}; have {sorted(AGGREGATES)}"
            )
        self.child = child
        self.key = key
        self.value = value
        self.aggregate = aggregate
        key_dtype = child.schema.columns[child.schema.position(key)].dtype
        out_dtype = "int" if aggregate == "count" else "float"
        self.schema = Schema.of(**{key: key_dtype, aggregate: out_dtype})
        self._key_pos = child.schema.position(key)
        self._val_pos = child.schema.position(value)

    def execute(self, meter: CostMeter) -> Iterator[tuple]:
        groups: dict = {}
        rows = 0
        for row in self.child.execute(meter):
            groups.setdefault(row[self._key_pos], []).append(row[self._val_pos])
            rows += 1
        meter.charge_build(rows, 16)
        fold = AGGREGATES[self.aggregate]
        for key_value, values in groups.items():
            meter.emit()
            result = fold(values)
            if self.aggregate != "count":
                result = float(result)
            yield (key_value, result)


def top_k(child: Operator, key: str, k: int, descending: bool = True) -> Operator:
    """Convenience plan: the ``k`` extreme rows by ``key``."""
    return Limit(Sort(child, key, descending=descending), k)
