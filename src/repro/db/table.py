"""In-memory row-store tables, with a columnar shadow for the vector path."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.db.columnar import ColumnBatch, column_dtype
from repro.db.schema import Schema
from repro.errors import SchemaError

__all__ = ["Table"]


class Table:
    """A named, schema-validated list of row tuples.

    Rows are stored in insertion order and addressed by integer row id
    (their position), which is what the indexes store. A columnar shadow
    (one numpy array per column) is built lazily on first vectorized
    access and invalidated by inserts, so the row API stays authoritative
    and every existing caller keeps working unchanged.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._rows: list[tuple] = []
        self._column_cache: tuple[np.ndarray, ...] | None = None

    @classmethod
    def from_columns(
        cls, name: str, schema: Schema, columns: Mapping[str, Sequence] | Sequence
    ) -> "Table":
        """Bulk-build a table from whole columns with vectorized validation.

        ``columns`` is either a mapping of column name to array-like, or a
        sequence of array-likes in schema order. Validation checks each
        column's dtype in one pass instead of per value, which is what
        makes loading a 40k-particle snapshot cheap; the resulting rows
        are identical to per-row :meth:`insert` of the same values.
        """
        if isinstance(columns, Mapping):
            missing = [c.name for c in schema.columns if c.name not in columns]
            if missing:
                raise SchemaError(f"from_columns missing columns {missing}")
            arrays_in = [columns[c.name] for c in schema.columns]
        else:
            arrays_in = list(columns)
        if len(arrays_in) != len(schema.columns):
            raise SchemaError(
                f"from_columns got {len(arrays_in)} columns for "
                f"{len(schema.columns)} schema columns"
            )

        arrays: list[np.ndarray] = []
        for values, column in zip(arrays_in, schema.columns):
            arrays.append(_validate_column(values, column))
        lengths = {len(a) for a in arrays}
        if len(lengths) > 1:
            raise SchemaError(f"columns disagree on length: {sorted(lengths)}")

        table = cls(name, schema)
        batch = ColumnBatch(schema, arrays)
        table._rows = batch.to_rows()
        table._column_cache = batch.columns
        return table

    def insert(self, row: Sequence) -> int:
        """Validate and append one row; returns its row id."""
        self._rows.append(self.schema.validate_row(row))
        self._column_cache = None
        return len(self._rows) - 1

    def extend(self, rows: Iterable[Sequence]) -> None:
        """Validate and append many rows."""
        for row in rows:
            self.insert(row)

    def row(self, rid: int) -> tuple:
        """Fetch one row by id."""
        return self._rows[rid]

    def rows(self) -> Iterator[tuple]:
        """Iterate all rows in insertion order."""
        return iter(self._rows)

    def column_values(self, name: str) -> list:
        """All values of one column, in row order."""
        pos = self.schema.position(name)
        return [row[pos] for row in self._rows]

    # --------------------------------------------------------- columnar --

    def column_array(self, name: str) -> np.ndarray:
        """One column as a numpy array (built lazily, cached until insert)."""
        return self._arrays()[self.schema.position(name)]

    def as_batch(self) -> ColumnBatch:
        """The whole table as a :class:`~repro.db.columnar.ColumnBatch`."""
        return ColumnBatch(self.schema, self._arrays())

    def _arrays(self) -> tuple[np.ndarray, ...]:
        if self._column_cache is None:
            self._column_cache = tuple(
                np.fromiter(
                    (row[pos] for row in self._rows),
                    dtype=column_dtype(column.dtype),
                    count=len(self._rows),
                )
                for pos, column in enumerate(self.schema.columns)
            )
        return self._column_cache

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self)}, {self.schema!r})"

    @property
    def byte_size(self) -> int:
        """Logical size in bytes — drives view storage costs."""
        return len(self._rows) * self.schema.row_width


def _validate_column(values, column) -> np.ndarray:
    """Coerce one column's values to its storage array, type-checked.

    Always returns a fresh array: the result seeds the table's column
    cache, and aliasing a caller-owned array would let later in-place
    mutation of that array silently diverge the columnar shadow from the
    authoritative row store.
    """
    if column.dtype == "str":
        array = np.array(values, dtype=object)
        if array.ndim != 1:
            raise SchemaError(f"column {column.name!r} values must be 1-D")
        for value in array:
            if not isinstance(value, str):
                raise SchemaError(
                    f"column {column.name!r} expects str, got {value!r}"
                )
        return array
    array = np.asarray(values)
    if array.ndim != 1:
        raise SchemaError(f"column {column.name!r} values must be 1-D")
    if column.dtype == "int":
        if array.dtype.kind not in "iu":
            raise SchemaError(
                f"column {column.name!r} expects int values, got dtype "
                f"{array.dtype}"
            )
        return array.astype(np.int64, copy=True)
    if array.dtype.kind not in "iuf":
        raise SchemaError(
            f"column {column.name!r} expects float values, got dtype "
            f"{array.dtype}"
        )
    return array.astype(np.float64, copy=True)
