"""In-memory row-store tables."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.db.schema import Schema
from repro.errors import SchemaError

__all__ = ["Table"]


class Table:
    """A named, schema-validated list of row tuples.

    Rows are stored in insertion order and addressed by integer row id
    (their position), which is what the indexes store.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._rows: list[tuple] = []

    def insert(self, row: Sequence) -> int:
        """Validate and append one row; returns its row id."""
        self._rows.append(self.schema.validate_row(row))
        return len(self._rows) - 1

    def extend(self, rows: Iterable[Sequence]) -> None:
        """Validate and append many rows."""
        for row in rows:
            self.insert(row)

    def row(self, rid: int) -> tuple:
        """Fetch one row by id."""
        return self._rows[rid]

    def rows(self) -> Iterator[tuple]:
        """Iterate all rows in insertion order."""
        return iter(self._rows)

    def column_values(self, name: str) -> list:
        """All values of one column, in row order."""
        pos = self.schema.position(name)
        return [row[pos] for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self)}, {self.schema!r})"

    @property
    def byte_size(self) -> int:
        """Logical size in bytes — drives view storage costs."""
        return len(self._rows) * self.schema.row_width
