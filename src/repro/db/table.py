"""In-memory row-store tables, with a copy-on-write columnar shadow.

The columnar shadow is kept as per-column capacity buffers that are only
ever appended to: sealing copies the rows the shadow has not seen yet into
positions past every view previously handed out, and buffer growth
reallocates, leaving the old buffer to any reader still holding a view of
it. Mutation therefore never touches an array a reader holds, and an
interleaved insert/scan workload costs O(delta) per seal instead of the
O(n) full rebuild the old invalidate-and-rebuild cache paid.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.db.columnar import ColumnBatch, column_dtype
from repro.db.schema import Schema
from repro.errors import SchemaError

__all__ = ["Table", "TableSnapshot"]

#: Smallest shadow buffer allocated; growth doubles from here.
_MIN_CAPACITY = 8


class Table:
    """A named, schema-validated list of row tuples.

    Rows are stored in insertion order and addressed by integer row id
    (their position), which is what the indexes store. The row API stays
    authoritative; the columnar shadow is sealed lazily on vectorized
    access and is append-only, so arrays handed to readers are stable.
    Every mutation bumps :attr:`version`, the table-local epoch stamped
    onto the batches it produces.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._rows: list[tuple] = []
        self._buffers: list[np.ndarray] | None = None
        self._shadow_len = 0
        self._version = 0
        # Mutation observers (zero-argument callables). A catalog holding
        # this table registers one so data mutations move the catalog
        # epoch: an epoch must identify an exact data state, not just an
        # exact registry state.
        self._watchers: list = []

    @classmethod
    def from_columns(
        cls, name: str, schema: Schema, columns: Mapping[str, Sequence] | Sequence
    ) -> "Table":
        """Bulk-build a table from whole columns with vectorized validation.

        ``columns`` is either a mapping of column name to array-like, or a
        sequence of array-likes in schema order. Validation checks each
        column's dtype in one pass instead of per value, which is what
        makes loading a 40k-particle snapshot cheap; the resulting rows
        are identical to per-row :meth:`insert` of the same values.
        """
        if isinstance(columns, Mapping):
            missing = [c.name for c in schema.columns if c.name not in columns]
            if missing:
                raise SchemaError(f"from_columns missing columns {missing}")
            arrays_in = [columns[c.name] for c in schema.columns]
        else:
            arrays_in = list(columns)
        if len(arrays_in) != len(schema.columns):
            raise SchemaError(
                f"from_columns got {len(arrays_in)} columns for "
                f"{len(schema.columns)} schema columns"
            )

        arrays: list[np.ndarray] = []
        for values, column in zip(arrays_in, schema.columns):
            arrays.append(_validate_column(values, column))
        lengths = {len(a) for a in arrays}
        if len(lengths) > 1:
            raise SchemaError(f"columns disagree on length: {sorted(lengths)}")

        table = cls(name, schema)
        batch = ColumnBatch(schema, arrays)
        table._rows = batch.to_rows()
        # The validated arrays are fresh copies, so they can seed the
        # shadow directly; the seal path appends past them from here on.
        table._buffers = arrays
        table._shadow_len = len(table._rows)
        return table

    @property
    def version(self) -> int:
        """Table-local epoch: bumped once per mutating call."""
        return self._version

    def insert(self, row: Sequence) -> int:
        """Validate and append one row; returns its row id."""
        self._rows.append(self.schema.validate_row(row))
        self._version += 1
        for watcher in self._watchers:
            watcher()
        return len(self._rows) - 1

    def extend(self, rows: Iterable[Sequence]) -> None:
        """Validate all rows first, then append them in one pass.

        Either every row is appended or none is: a bad row anywhere in the
        batch raises before the table changes, and the whole batch costs
        one version bump and one shadow catch-up instead of one per row.
        """
        validated = [self.schema.validate_row(row) for row in rows]
        if not validated:
            return
        self._rows.extend(validated)
        self._version += 1
        for watcher in self._watchers:
            watcher()

    def row(self, rid: int) -> tuple:
        """Fetch one row by id."""
        return self._rows[rid]

    def rows(self) -> Iterator[tuple]:
        """Iterate all rows in insertion order."""
        return iter(self._rows)

    def column_values(self, name: str) -> list:
        """All values of one column, in row order."""
        pos = self.schema.position(name)
        return [row[pos] for row in self._rows]

    # --------------------------------------------------------- columnar --

    def column_array(self, name: str) -> np.ndarray:
        """One column as a read-only numpy array over all current rows."""
        return self._array_views()[self.schema.position(name)]

    def as_batch(self) -> ColumnBatch:
        """The whole table as a :class:`~repro.db.columnar.ColumnBatch`."""
        return ColumnBatch(self.schema, self._array_views(), epoch=self._version)

    def snapshot(self) -> "TableSnapshot":
        """A read-only view pinned at the current row count and version."""
        return TableSnapshot(self)

    def _seal(self) -> None:
        """Catch the columnar shadow up to the row store.

        Only positions ``>= _shadow_len`` are written, so any view handed
        out earlier (always of length ``<= _shadow_len`` at hand-out time)
        is never overwritten. Growth reallocates rather than resizing in
        place, leaving old buffers intact for old readers.
        """
        n = len(self._rows)
        if self._buffers is None:
            self._buffers = [
                np.empty(max(n, _MIN_CAPACITY), dtype=column_dtype(c.dtype))
                for c in self.schema.columns
            ]
        if self._shadow_len == n:
            return
        start = self._shadow_len
        for pos in range(len(self.schema.columns)):
            buf = self._buffers[pos]
            if len(buf) < n:
                fresh = np.empty(max(n, 2 * len(buf)), dtype=buf.dtype)
                fresh[:start] = buf[:start]
                self._buffers[pos] = buf = fresh
            for i in range(start, n):
                buf[i] = self._rows[i][pos]
        self._shadow_len = n

    def _array_views(self, n: int | None = None) -> tuple[np.ndarray, ...]:
        """Read-only length-``n`` views of the sealed shadow buffers.

        Values at positions below any previously observed length are
        immutable (the store is append-only), so views re-derived after a
        buffer reallocation are bit-identical to the originals.
        """
        self._seal()
        stop = len(self._rows) if n is None else n
        views = []
        for buf in self._buffers:
            view = buf[:stop]
            view.flags.writeable = False
            views.append(view)
        return tuple(views)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={len(self)}, {self.schema!r})"

    @property
    def byte_size(self) -> int:
        """Logical size in bytes — drives view storage costs."""
        return len(self._rows) * self.schema.row_width


class TableSnapshot:
    """A frozen, fixed-length facade over a :class:`Table`.

    Pins the row count and version at construction; later appends to the
    underlying table are invisible through the snapshot. Exposes the
    table's whole read surface (``rows``/``row``/``column_array``/
    ``as_batch``/``byte_size``), so plans and operators built against a
    ``Table`` run unchanged against a snapshot of it.
    """

    __slots__ = ("_table", "_n", "_version")

    def __init__(self, table: Table) -> None:
        self._table = table
        self._n = len(table)
        self._version = table.version

    @property
    def name(self) -> str:
        return self._table.name

    @property
    def schema(self) -> Schema:
        return self._table.schema

    @property
    def version(self) -> int:
        """The table version this snapshot was pinned at."""
        return self._version

    def row(self, rid: int) -> tuple:
        """Fetch one row by id, bounds-checked against the pinned length."""
        if rid >= self._n or rid < -self._n:
            raise IndexError(
                f"row id {rid} out of range for snapshot of {self._n} rows"
            )
        return self._table.row(rid if rid >= 0 else rid + self._n)

    def rows(self) -> Iterator[tuple]:
        """Iterate the pinned prefix of rows in insertion order."""
        return islice(self._table.rows(), self._n)

    def column_values(self, name: str) -> list:
        """Pinned values of one column, in row order."""
        pos = self._table.schema.position(name)
        return [row[pos] for row in self.rows()]

    def column_array(self, name: str) -> np.ndarray:
        """One column as a read-only array over the pinned rows."""
        views = self._table._array_views(self._n)
        return views[self._table.schema.position(name)]

    def as_batch(self) -> ColumnBatch:
        """The pinned rows as a :class:`~repro.db.columnar.ColumnBatch`."""
        return ColumnBatch(
            self.schema, self._table._array_views(self._n), epoch=self._version
        )

    def snapshot(self) -> "TableSnapshot":
        """Snapshots are already pinned; snapshotting one is the identity."""
        return self

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return (
            f"TableSnapshot({self.name!r}, rows={self._n}, "
            f"version={self._version})"
        )

    @property
    def byte_size(self) -> int:
        """Logical size in bytes of the pinned rows."""
        return self._n * self.schema.row_width


def _validate_column(values, column) -> np.ndarray:
    """Coerce one column's values to its storage array, type-checked.

    Always returns a fresh array: the result seeds the table's columnar
    shadow, and aliasing a caller-owned array would let later in-place
    mutation of that array silently diverge the shadow from the
    authoritative row store.
    """
    if column.dtype == "str":
        array = np.array(values, dtype=object)
        if array.ndim != 1:
            raise SchemaError(f"column {column.name!r} values must be 1-D")
        for value in array:
            if not isinstance(value, str):
                raise SchemaError(
                    f"column {column.name!r} expects str, got {value!r}"
                )
        return array
    array = np.asarray(values)
    if array.ndim != 1:
        raise SchemaError(f"column {column.name!r} values must be 1-D")
    if column.dtype == "int":
        if array.dtype.kind not in "iu":
            raise SchemaError(
                f"column {column.name!r} expects int values, got dtype "
                f"{array.dtype}"
            )
        return array.astype(np.int64, copy=True)
    if array.dtype.kind not in "iuf":
        raise SchemaError(
            f"column {column.name!r} expects float values, got dtype "
            f"{array.dtype}"
        )
    return array.astype(np.float64, copy=True)
