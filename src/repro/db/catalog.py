"""Catalog: the registry of tables, indexes, views and statistics.

Every mutation — registering or dropping a table, view or index,
re-running ANALYZE, and inserting rows into a registered table — bumps a
monotonically increasing **epoch**.
:meth:`Catalog.snapshot` pins the whole registry at the current epoch as
a frozen :class:`~repro.db.snapshot.CatalogSnapshot`, which is how
readers get a consistent picture while mutators keep going. Multi-step
installs (the advisor adopting a batch of designs) wrap themselves in
:meth:`Catalog.epoch_batch` so the batch lands as a single epoch
boundary.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.db.costmodel import CostMeter
from repro.db.index import HashIndex, SortedIndex
from repro.db.snapshot import CatalogSnapshot
from repro.db.stats import TableStats, analyze
from repro.db.table import Table
from repro.db.view import MaterializedView
from repro.errors import QueryError, SchemaError

__all__ = ["Catalog"]


class Catalog:
    """Holds the engine's persistent objects, addressed by name."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, MaterializedView] = {}
        self._hash_indexes: dict[tuple[str, str], HashIndex] = {}
        self._sorted_indexes: dict[tuple[str, str], SortedIndex] = {}
        self._stats: dict[str, TableStats] = {}
        self._epoch = 0
        self._batch_depth = 0
        self._batch_dirty = False

    # -------------------------------------------------------------- epoch --

    @property
    def epoch(self) -> int:
        """Monotonic version counter; bumped by every catalog mutation."""
        return self._epoch

    def _bump(self) -> None:
        if self._batch_depth:
            self._batch_dirty = True
        else:
            self._epoch += 1

    @contextmanager
    def epoch_batch(self):
        """Coalesce the mutations inside the block into one epoch bump.

        Nested batches join the outermost one; if nothing inside the block
        mutates, the epoch does not move.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._batch_dirty:
                self._batch_dirty = False
                self._epoch += 1

    def snapshot(self) -> CatalogSnapshot:
        """Pin the registry at the current epoch as a frozen facade."""
        return CatalogSnapshot(self)

    # ------------------------------------------------------------- tables --

    def create_table(self, table: Table) -> Table:
        """Register a table; names must be unique across tables and views."""
        if table.name in self._tables or table.name in self._views:
            raise SchemaError(f"name {table.name!r} already exists")
        self._tables[table.name] = table
        # Data mutations must move the epoch too — an epoch identifies an
        # exact data state, and the gateway caches snapshots keyed by it.
        table._watchers.append(self._bump)
        self._bump()
        return table

    def table(self, name: str) -> Table:
        """Look a table up by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"no table named {name!r}") from None

    def drop_table(self, name: str) -> None:
        """Remove a table plus the indexes, statistics and dependent views.

        Views whose definitions read the dropped table (``depends_on``)
        are dropped with it — leaving them registered would keep serving
        stale rows from a table that no longer exists.
        """
        table = self.table(name)
        del self._tables[name]
        try:
            table._watchers.remove(self._bump)
        except ValueError:
            pass
        for key in [k for k in self._hash_indexes if k[0] == name]:
            del self._hash_indexes[key]
        for key in [k for k in self._sorted_indexes if k[0] == name]:
            del self._sorted_indexes[key]
        self._stats.pop(name, None)
        for view_name in [
            v for v, view in self._views.items() if name in view.depends_on
        ]:
            del self._views[view_name]
        self._bump()

    @property
    def table_names(self) -> list[str]:
        """All registered table names, sorted."""
        return sorted(self._tables)

    # -------------------------------------------------------------- views --

    def create_view(
        self, view: MaterializedView, meter: CostMeter | None = None
    ) -> MaterializedView:
        """Register and materialize a view."""
        if view.name in self._views or view.name in self._tables:
            raise SchemaError(f"name {view.name!r} already exists")
        build_meter = meter if meter is not None else CostMeter()
        view.refresh(build_meter)
        self._views[view.name] = view
        self._bump()
        return view

    def view(self, name: str) -> MaterializedView:
        """Look a view up by name."""
        try:
            return self._views[name]
        except KeyError:
            raise QueryError(f"no view named {name!r}") from None

    def has_view(self, name: str) -> bool:
        """True when a view of that name is registered."""
        return name in self._views

    def drop_view(self, name: str) -> None:
        """Remove a view."""
        self.view(name)
        del self._views[name]
        self._bump()

    @property
    def view_names(self) -> list[str]:
        """All registered view names, sorted."""
        return sorted(self._views)

    # ------------------------------------------------------------ indexes --

    def create_hash_index(
        self, table_name: str, key: str, meter: CostMeter | None = None
    ) -> HashIndex:
        """Build (or return the existing) hash index on ``table.key``."""
        existing = self._hash_indexes.get((table_name, key))
        if existing is not None:
            return existing
        index = HashIndex(self.table(table_name), key, meter)
        self._hash_indexes[(table_name, key)] = index
        self._bump()
        return index

    def hash_index(self, table_name: str, key: str) -> HashIndex | None:
        """The hash index on ``table.key`` if one exists."""
        return self._hash_indexes.get((table_name, key))

    def drop_hash_index(self, table_name: str, key: str) -> None:
        """Retire the hash index on ``table.key``.

        The advisor can adopt designs; this is the missing other half —
        without it an installed index outlives the workload that justified
        its storage rent. Raises :class:`~repro.errors.QueryError` when no
        such index exists.
        """
        if (table_name, key) not in self._hash_indexes:
            raise QueryError(f"no hash index on {table_name}.{key}")
        del self._hash_indexes[(table_name, key)]
        self._bump()

    def create_sorted_index(
        self, table_name: str, key: str, meter: CostMeter | None = None
    ) -> SortedIndex:
        """Build (or return the existing) sorted index on ``table.key``."""
        existing = self._sorted_indexes.get((table_name, key))
        if existing is not None:
            return existing
        index = SortedIndex(self.table(table_name), key, meter)
        self._sorted_indexes[(table_name, key)] = index
        self._bump()
        return index

    def sorted_index(self, table_name: str, key: str) -> SortedIndex | None:
        """The sorted index on ``table.key`` if one exists."""
        return self._sorted_indexes.get((table_name, key))

    def drop_sorted_index(self, table_name: str, key: str) -> None:
        """Retire the sorted index on ``table.key``; raises when absent."""
        if (table_name, key) not in self._sorted_indexes:
            raise QueryError(f"no sorted index on {table_name}.{key}")
        del self._sorted_indexes[(table_name, key)]
        self._bump()

    # --------------------------------------------------------- statistics --

    def analyze_table(self, name: str, columns=None) -> TableStats:
        """Run ANALYZE on one table and register the result.

        The registered :class:`~repro.db.stats.TableStats` is what the
        cost-based planner and the savings estimator consult; re-running
        replaces the previous snapshot (statistics do not auto-refresh on
        insert — like a real ANALYZE, they are a deliberate sampling act).
        """
        stats = analyze(self.table(name), columns)
        self._stats[name] = stats
        self._bump()
        return stats

    def stats(self, name: str) -> TableStats | None:
        """The registered statistics of one table, or None if never analyzed."""
        return self._stats.get(name)
