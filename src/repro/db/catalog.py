"""Catalog: the registry of tables, indexes, views and statistics."""

from __future__ import annotations

from repro.db.costmodel import CostMeter
from repro.db.index import HashIndex, SortedIndex
from repro.db.stats import TableStats, analyze
from repro.db.table import Table
from repro.db.view import MaterializedView
from repro.errors import QueryError, SchemaError

__all__ = ["Catalog"]


class Catalog:
    """Holds the engine's persistent objects, addressed by name."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, MaterializedView] = {}
        self._hash_indexes: dict[tuple[str, str], HashIndex] = {}
        self._sorted_indexes: dict[tuple[str, str], SortedIndex] = {}
        self._stats: dict[str, TableStats] = {}

    # ------------------------------------------------------------- tables --

    def create_table(self, table: Table) -> Table:
        """Register a table; names must be unique across tables and views."""
        if table.name in self._tables or table.name in self._views:
            raise SchemaError(f"name {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        """Look a table up by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"no table named {name!r}") from None

    def drop_table(self, name: str) -> None:
        """Remove a table and any indexes or statistics built on it."""
        self.table(name)
        del self._tables[name]
        for key in [k for k in self._hash_indexes if k[0] == name]:
            del self._hash_indexes[key]
        for key in [k for k in self._sorted_indexes if k[0] == name]:
            del self._sorted_indexes[key]
        self._stats.pop(name, None)

    @property
    def table_names(self) -> list[str]:
        """All registered table names, sorted."""
        return sorted(self._tables)

    # -------------------------------------------------------------- views --

    def create_view(
        self, view: MaterializedView, meter: CostMeter | None = None
    ) -> MaterializedView:
        """Register and materialize a view."""
        if view.name in self._views or view.name in self._tables:
            raise SchemaError(f"name {view.name!r} already exists")
        build_meter = meter if meter is not None else CostMeter()
        view.refresh(build_meter)
        self._views[view.name] = view
        return view

    def view(self, name: str) -> MaterializedView:
        """Look a view up by name."""
        try:
            return self._views[name]
        except KeyError:
            raise QueryError(f"no view named {name!r}") from None

    def has_view(self, name: str) -> bool:
        """True when a view of that name is registered."""
        return name in self._views

    def drop_view(self, name: str) -> None:
        """Remove a view."""
        self.view(name)
        del self._views[name]

    @property
    def view_names(self) -> list[str]:
        """All registered view names, sorted."""
        return sorted(self._views)

    # ------------------------------------------------------------ indexes --

    def create_hash_index(
        self, table_name: str, key: str, meter: CostMeter | None = None
    ) -> HashIndex:
        """Build (or return the existing) hash index on ``table.key``."""
        existing = self._hash_indexes.get((table_name, key))
        if existing is not None:
            return existing
        index = HashIndex(self.table(table_name), key, meter)
        self._hash_indexes[(table_name, key)] = index
        return index

    def hash_index(self, table_name: str, key: str) -> HashIndex | None:
        """The hash index on ``table.key`` if one exists."""
        return self._hash_indexes.get((table_name, key))

    def create_sorted_index(
        self, table_name: str, key: str, meter: CostMeter | None = None
    ) -> SortedIndex:
        """Build (or return the existing) sorted index on ``table.key``."""
        existing = self._sorted_indexes.get((table_name, key))
        if existing is not None:
            return existing
        index = SortedIndex(self.table(table_name), key, meter)
        self._sorted_indexes[(table_name, key)] = index
        return index

    def sorted_index(self, table_name: str, key: str) -> SortedIndex | None:
        """The sorted index on ``table.key`` if one exists."""
        return self._sorted_indexes.get((table_name, key))

    # --------------------------------------------------------- statistics --

    def analyze_table(self, name: str, columns=None) -> TableStats:
        """Run ANALYZE on one table and register the result.

        The registered :class:`~repro.db.stats.TableStats` is what the
        cost-based planner and the savings estimator consult; re-running
        replaces the previous snapshot (statistics do not auto-refresh on
        insert — like a real ANALYZE, they are a deliberate sampling act).
        """
        stats = analyze(self.table(name), columns)
        self._stats[name] = stats
        return stats

    def stats(self, name: str) -> TableStats | None:
        """The registered statistics of one table, or None if never analyzed."""
        return self._stats.get(name)
