"""Batch-vector physical operators and the iterator-plan translator.

Each vector operator consumes and produces a whole
:class:`~repro.db.columnar.ColumnBatch` per ``execute`` call instead of a
row at a time, moving the inner loop from Python into numpy. The contract
with the iterator operators in :mod:`repro.db.operators` is strict:

* **identical rows** — same tuples, same order (group and join outputs
  reproduce the iterator's first-encounter / build-order semantics);
* **identical meter charges** — every ``charge_scan``/``charge_probe``/
  ``charge_build``/``emit``/``bump`` total matches bit for bit, because
  the metered work is the paper's cost model and must not drift when the
  physical execution strategy changes.

:func:`to_vector` translates an iterator plan tree into its vector twin
(returning ``None`` for shapes with no vector form yet), which is how the
planner's access-path choice is reused unchanged: plan selection stays
logical, vectorization is a physical rewrite underneath it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.db.columnar import ColumnBatch
from repro.db.costmodel import CostMeter
from repro.db.index import HashIndex, _ragged_take
from repro.db.operators import (
    Filter,
    GroupCount,
    HashJoin,
    IndexLookup,
    Operator,
    Project,
    SeqScan,
)
from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import QueryError

__all__ = [
    "VecOperator",
    "VecScan",
    "VecFilter",
    "VecProject",
    "VecIndexLookup",
    "VecHashJoin",
    "VecGroupCount",
    "to_vector",
]


class VecOperator:
    """Base class: exposes ``schema`` and ``execute(meter) -> ColumnBatch``."""

    schema: Schema

    def execute(self, meter: CostMeter) -> ColumnBatch:
        """Produce the full result batch, charging work to ``meter``."""
        raise NotImplementedError

    def materialize(self, meter: CostMeter) -> list[tuple]:
        """Run and convert to the iterator engine's row-tuple form."""
        return self.execute(meter).to_rows()


class VecScan(VecOperator):
    """Full scan of a table as one batch; charges match :class:`SeqScan`."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.schema = table.schema

    def execute(self, meter: CostMeter) -> ColumnBatch:
        meter.charge_scan(len(self.table), self.schema.row_width)
        meter.bump(f"scan:{self.table.name}")
        return self.table.as_batch()


class VecFilter(VecOperator):
    """Vectorized row filter; one emit per surviving row."""

    def __init__(self, child: VecOperator, predicate) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def execute(self, meter: CostMeter) -> ColumnBatch:
        batch = self.child.execute(meter)
        raw = self.predicate.compile_vec(self.schema)(batch)
        mask = np.asarray(raw, dtype=bool)
        if mask.ndim == 0:
            mask = np.full(len(batch), bool(mask))
        meter.emit(int(mask.sum()))
        return batch.filter(mask)


class VecProject(VecOperator):
    """Column projection: free in a columnar engine, and charged as such
    (the iterator :class:`Project` charges nothing either — row-store scan
    costs live on the scan, not the projection)."""

    def __init__(self, child: VecOperator, columns: Sequence[str]) -> None:
        if not columns:
            raise QueryError("projection needs at least one column")
        self.child = child
        self.columns = tuple(columns)
        self.schema = child.schema.project(columns)

    def execute(self, meter: CostMeter) -> ColumnBatch:
        return self.child.execute(meter).project(self.columns)


class VecIndexLookup(VecOperator):
    """Batched equality probes of a hash index.

    One :meth:`~repro.db.index.HashIndex.lookup_rids_many` call answers
    every probe value at once; row order (probe order, ascending rid per
    value) and meter charges match the iterator :class:`IndexLookup`.
    """

    def __init__(self, index: HashIndex, values: Sequence) -> None:
        self.index = index
        self.values = list(values)
        self.schema = index.table.schema

    def execute(self, meter: CostMeter) -> ColumnBatch:
        rids = self.index.lookup_rids_many(self.values, meter)
        return self.index.table.as_batch().take(rids)


class VecHashJoin(VecOperator):
    """Vectorized equi-join with iterator-identical output order.

    The iterator join emits, for each left row in order, the matching
    right rows in build order. Sorting the right keys with a stable sort
    keeps equal-keyed right rows in build order, so a searchsorted range
    per left row reproduces the exact output sequence.
    """

    def __init__(
        self,
        left: VecOperator,
        right: VecOperator,
        left_key: str,
        right_key: str,
    ) -> None:
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        right_cols = [c for c in right.schema.columns if c.name != right_key]
        self.schema = Schema(list(left.schema.columns) + right_cols)
        self._right_pos = right.schema.position(right_key)

    def execute(self, meter: CostMeter) -> ColumnBatch:
        right = self.right.execute(meter)
        meter.charge_build(len(right), self.right.schema.row_width)
        left = self.left.execute(meter)
        meter.charge_probe(len(left))

        right_keys = right.column(self.right_key)
        order = np.argsort(right_keys, kind="stable")
        sorted_keys = right_keys[order]
        left_keys = left.column(self.left_key)
        lo = np.searchsorted(sorted_keys, left_keys, side="left")
        hi = np.searchsorted(sorted_keys, left_keys, side="right")
        counts = hi - lo
        meter.emit(int(counts.sum()))

        left_take = np.repeat(np.arange(len(left)), counts)
        right_take = order[_ragged_take(lo, counts)]
        out = [c[left_take] for c in left.columns]
        out += [
            c[right_take]
            for pos, c in enumerate(right.columns)
            if pos != self._right_pos
        ]
        return ColumnBatch(self.schema, out)


class VecGroupCount(VecOperator):
    """Vectorized ``GROUP BY key, COUNT(*)`` in first-encounter order."""

    def __init__(self, child: VecOperator, key: str) -> None:
        self.child = child
        self.key = key
        self.schema = Schema.of(
            **{
                key: child.schema.project([key]).columns[0].dtype,
                "count": "int",
            }
        )

    def execute(self, meter: CostMeter) -> ColumnBatch:
        batch = self.child.execute(meter)
        keys = batch.column(self.key)
        meter.charge_build(len(batch), 8)
        uniques, first, counts = np.unique(
            keys, return_index=True, return_counts=True
        )
        # The iterator GroupCount yields groups in dict-insertion order:
        # the order each key is first encountered in the input.
        encounter = np.argsort(first, kind="stable")
        meter.emit(len(uniques))
        return ColumnBatch(
            self.schema,
            [uniques[encounter], counts[encounter].astype(np.int64, copy=False)],
        )


#: Iterator operator class -> builder of its vector twin.
def _vec_scan(plan: SeqScan) -> VecOperator:
    return VecScan(plan.table)


def _vec_filter(plan: Filter) -> VecOperator | None:
    child = to_vector(plan.child)
    return None if child is None else VecFilter(child, plan.predicate)


def _vec_project(plan: Project) -> VecOperator | None:
    child = to_vector(plan.child)
    return None if child is None else VecProject(child, plan.columns)


def _vec_index_lookup(plan: IndexLookup) -> VecOperator:
    return VecIndexLookup(plan.index, plan.values)


def _vec_hash_join(plan: HashJoin) -> VecOperator | None:
    left = to_vector(plan.left)
    right = to_vector(plan.right)
    if left is None or right is None:
        return None
    return VecHashJoin(left, right, plan.left_key, plan.right_key)


def _vec_group_count(plan: GroupCount) -> VecOperator | None:
    child = to_vector(plan.child)
    return None if child is None else VecGroupCount(child, plan.key)


_TRANSLATORS = {
    SeqScan: _vec_scan,
    Filter: _vec_filter,
    Project: _vec_project,
    IndexLookup: _vec_index_lookup,
    HashJoin: _vec_hash_join,
    GroupCount: _vec_group_count,
}


def to_vector(plan: Operator) -> VecOperator | None:
    """The vector twin of an iterator plan, or None when untranslatable.

    Translation is exact — same rows, same order, same meter totals — so
    callers may substitute the result freely; operators outside the core
    set (:mod:`repro.db.extra_operators`) simply stay on the iterator
    path.
    """
    builder = _TRANSLATORS.get(type(plan))
    return None if builder is None else builder(plan)
