"""Secondary indexes: hash (equality) and sorted (range).

Both indexes answer one-at-a-time probes through the original iterator
API and batched probes through the ``*_rids`` bulk methods the vector
operators use. Bulk probes are backed by a lazily built sorted
``(key, rid)`` array pair answered with :func:`numpy.searchsorted`; they
charge the meter exactly what the equivalent sequence of single probes
would (one probe per requested value, one emit per matching row), so the
two paths are indistinguishable to the cost model.
"""

from __future__ import annotations

import bisect
from itertools import islice
from typing import Iterator

import numpy as np

from repro.db.costmodel import CostMeter
from repro.db.table import Table
from repro.errors import QueryError

__all__ = ["HashIndex", "SortedIndex"]


def _ragged_take(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` segments."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts
    return np.repeat(starts - offsets, counts) + np.arange(total)


def _py(value):
    """A numpy scalar as its plain Python equivalent."""
    return value.item() if isinstance(value, np.generic) else value


class HashIndex:
    """An equality index mapping key values to row ids.

    Build cost is charged to the supplied meter at construction; lookups
    charge one probe plus the emitted matches. The index covers the rows
    present at construction time (append-only tables may grow past it),
    and the bulk path snapshots the same row range.
    """

    def __init__(
        self,
        table: Table,
        key: str,
        meter: CostMeter | None = None,
        *,
        covered: int | None = None,
    ) -> None:
        self.table = table
        self.key = key
        pos = table.schema.position(key)
        self._covered_rows = len(table) if covered is None else covered
        self._buckets: dict = {}
        for rid, row in enumerate(islice(table.rows(), self._covered_rows)):
            self._buckets.setdefault(row[pos], []).append(rid)
        self._sorted_keys: np.ndarray | None = None
        self._sorted_rids: np.ndarray | None = None
        if meter is not None:
            meter.charge_build(self._covered_rows, table.schema.row_width)

    def lookup(self, value, meter: CostMeter) -> Iterator[tuple]:
        """Yield rows whose key equals ``value``."""
        meter.charge_probe(1)
        for rid in self._buckets.get(value, ()):
            meter.emit()
            yield self.table.row(rid)

    def lookup_rids_many(self, values, meter: CostMeter) -> np.ndarray:
        """Row ids matching each of ``values``, concatenated in probe order.

        Within one probed value the rids come back ascending — the same
        order :meth:`lookup` yields them — and the meter is charged one
        probe per value plus one emit per matching row, identically to
        the iterator path.
        """
        values = np.asarray(values)
        meter.charge_probe(len(values))
        if len(values) == 0:
            meter.emit(0)
            return np.empty(0, dtype=np.int64)
        self._ensure_sorted()
        lo = np.searchsorted(self._sorted_keys, values, side="left")
        hi = np.searchsorted(self._sorted_keys, values, side="right")
        counts = hi - lo
        meter.emit(int(counts.sum()))
        return self._sorted_rids[_ragged_take(lo, counts)]

    def _ensure_sorted(self) -> None:
        if self._sorted_keys is None:
            keys = self.table.column_array(self.key)[: self._covered_rows]
            order = np.argsort(keys, kind="stable")
            self._sorted_keys = keys[order]
            self._sorted_rids = order.astype(np.int64, copy=False)

    def contains(self, value, meter: CostMeter) -> bool:
        """Membership probe without materializing rows."""
        meter.charge_probe(1)
        return value in self._buckets

    def __len__(self) -> int:
        return len(self._buckets)


class SortedIndex:
    """A sorted (key, rid) list answering range queries via binary search."""

    def __init__(
        self,
        table: Table,
        key: str,
        meter: CostMeter | None = None,
        *,
        covered: int | None = None,
    ) -> None:
        self.table = table
        self.key = key
        pos = table.schema.position(key)
        self._covered_rows = len(table) if covered is None else covered
        pairs = sorted(
            (row[pos], rid)
            for rid, row in enumerate(islice(table.rows(), self._covered_rows))
        )
        self._keys = [k for k, _ in pairs]
        self._rids = [r for _, r in pairs]
        self._rids_arr = np.asarray(self._rids, dtype=np.int64)
        if meter is not None:
            meter.charge_build(self._covered_rows, table.schema.row_width)

    def _bounds(self, low, high) -> tuple[int, int]:
        if low is not None and high is not None and low > high:
            raise QueryError(f"empty range: low {low!r} > high {high!r}")
        lo = 0 if low is None else bisect.bisect_left(self._keys, low)
        hi = len(self._keys) if high is None else bisect.bisect_right(self._keys, high)
        return lo, hi

    def range(self, low, high, meter: CostMeter) -> Iterator[tuple]:
        """Yield rows with ``low <= key <= high`` in key order."""
        lo, hi = self._bounds(low, high)
        meter.charge_probe(1)
        for idx in range(lo, hi):
            meter.emit()
            yield self.table.row(self._rids[idx])

    def range_rids(self, low, high, meter: CostMeter) -> np.ndarray:
        """Row ids with ``low <= key <= high`` in key order, in one probe.

        The batched twin of :meth:`range`: identical row set and order,
        identical meter charges (one probe, one emit per matching row).
        """
        lo, hi = self._bounds(low, high)
        meter.charge_probe(1)
        meter.emit(hi - lo)
        return self._rids_arr[lo:hi]

    def min_key(self):
        """Smallest key, or None when empty."""
        return self._keys[0] if self._keys else None

    def max_key(self):
        """Largest key, or None when empty."""
        return self._keys[-1] if self._keys else None

    def __len__(self) -> int:
        return len(self._keys)
