"""Secondary indexes: hash (equality) and sorted (range)."""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.db.costmodel import CostMeter
from repro.db.table import Table
from repro.errors import QueryError

__all__ = ["HashIndex", "SortedIndex"]


class HashIndex:
    """An equality index mapping key values to row ids.

    Build cost is charged to the supplied meter at construction; lookups
    charge one probe plus the emitted matches.
    """

    def __init__(self, table: Table, key: str, meter: CostMeter | None = None) -> None:
        self.table = table
        self.key = key
        pos = table.schema.position(key)
        self._buckets: dict = {}
        for rid, row in enumerate(table.rows()):
            self._buckets.setdefault(row[pos], []).append(rid)
        if meter is not None:
            meter.charge_build(len(table), table.schema.row_width)

    def lookup(self, value, meter: CostMeter) -> Iterator[tuple]:
        """Yield rows whose key equals ``value``."""
        meter.charge_probe(1)
        for rid in self._buckets.get(value, ()):
            meter.emit()
            yield self.table.row(rid)

    def contains(self, value, meter: CostMeter) -> bool:
        """Membership probe without materializing rows."""
        meter.charge_probe(1)
        return value in self._buckets

    def __len__(self) -> int:
        return len(self._buckets)


class SortedIndex:
    """A sorted (key, rid) list answering range queries via binary search."""

    def __init__(self, table: Table, key: str, meter: CostMeter | None = None) -> None:
        self.table = table
        self.key = key
        pos = table.schema.position(key)
        pairs = sorted(
            (row[pos], rid) for rid, row in enumerate(table.rows())
        )
        self._keys = [k for k, _ in pairs]
        self._rids = [r for _, r in pairs]
        if meter is not None:
            meter.charge_build(len(table), table.schema.row_width)

    def range(self, low, high, meter: CostMeter) -> Iterator[tuple]:
        """Yield rows with ``low <= key <= high`` in key order."""
        if low is not None and high is not None and low > high:
            raise QueryError(f"empty range: low {low!r} > high {high!r}")
        lo = 0 if low is None else bisect.bisect_left(self._keys, low)
        hi = len(self._keys) if high is None else bisect.bisect_right(self._keys, high)
        meter.charge_probe(1)
        for idx in range(lo, hi):
            meter.emit()
            yield self.table.row(self._rids[idx])

    def min_key(self):
        """Smallest key, or None when empty."""
        return self._keys[0] if self._keys else None

    def max_key(self):
        """Largest key, or None when empty."""
        return self._keys[-1] if self._keys else None

    def __len__(self) -> int:
        return len(self._keys)
