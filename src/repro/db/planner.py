"""Cost-based access-path selection and what-if costing.

The astronomy workload needs two plan shapes per snapshot:

* **membership** — project the particle ids of one halo;
* **progenitor histogram** — count, per halo, how many of a given particle
  set ends up in it.

Both only touch ``(pid, halo)``, so a narrow materialized view (the
paper's optimization) serves either; a hash index on the probed column
serves them too. The planner compares estimated cost units across every
access path the catalog offers — index probe, materialized view, filtered
base scan — and picks the cheapest. Estimates are *stats-driven* when the
table has registered ANALYZE statistics
(:meth:`~repro.db.catalog.Catalog.analyze_table`): expected probe matches
come from the column's measured selectivity instead of the live-size
uniformity heuristic. Because plan choice happens before physical
translation, the same cost-based decision serves the iterator and the
columnar vector engine alike.

Tie-breaking is deterministic and documented: the index must be *strictly*
cheaper than the narrow scan to win, so on equal estimates the scan-shaped
source prevails — and within scan shapes the materialized view prevails
over the base table (it can never estimate worse than the wide fallback).

The ``what_if_*`` helpers estimate the byte cost of the alternatives
without executing anything — that difference, run through the cost model
and the pricing layer, is a user's *value* for an optimization.

Every function here reads the catalog only through its lookup surface
(``table``/``view``/``has_view``/``hash_index``/``stats``), so a frozen
:class:`~repro.db.snapshot.CatalogSnapshot` works everywhere a live
:class:`~repro.db.catalog.Catalog` does — plan choice against a snapshot
is plan choice at that snapshot's epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet

from repro.db.catalog import Catalog
from repro.db.snapshot import CatalogSnapshot
from repro.db.costmodel import CostModel
from repro.db.expr import Col, Const, Eq, In, Ne
from repro.db.operators import (
    Filter,
    GroupCount,
    IndexLookup,
    Operator,
    Project,
    SeqScan,
)
from repro.errors import QueryError

__all__ = [
    "view_name_for",
    "PlanChoice",
    "members_plan",
    "histogram_plan",
    "what_if_scan_bytes",
    "what_if_index_units",
]

#: Weights used for access-path cost comparison (kept in sync with the
#: default CostModel; plan choice only needs *relative* costs).
_COST = CostModel()

#: Column names the astronomy substrate uses throughout.
PID, HALO = "pid", "halo"


def view_name_for(table_name: str) -> str:
    """Canonical name of the (pid, halo) view over a snapshot table."""
    return f"ph_{table_name}"


@dataclass(frozen=True)
class PlanChoice:
    """A chosen plan plus which access path it uses ('view' or 'base')."""

    plan: Operator
    source: str


def _narrow_source(catalog: Catalog | CatalogSnapshot, table_name: str) -> PlanChoice:
    """The cheapest relation exposing clustered (pid, halo) rows.

    The view materializes exactly the clustered rows (halo != -1), so the
    base-table fallback applies the same filter: both paths produce the
    same row set and the *only* cost difference between them is the scan
    bytes (wide base rows vs narrow view rows) plus the fallback's filter
    emits — which is what makes the analytic what-if savings in
    :mod:`repro.astro.usecase` exact.
    """
    view_name = view_name_for(table_name)
    if catalog.has_view(view_name):
        view = catalog.view(view_name)
        if view.table is None:
            raise QueryError(f"view {view_name!r} exists but is not materialized")
        return PlanChoice(plan=SeqScan(view.table), source="view")
    base = catalog.table(table_name)
    plan = Project(
        Filter(SeqScan(base), Ne(Col(HALO), Const(-1))),
        [PID, HALO],
    )
    return PlanChoice(plan=plan, source="base")


def _narrow_scan_units(catalog: Catalog | CatalogSnapshot, table_name: str) -> float:
    """Estimated cost units of one narrow (pid, halo) pass."""
    view_name = view_name_for(table_name)
    if catalog.has_view(view_name):
        view_table = catalog.view(view_name).table
        return len(view_table) * view_table.schema.row_width * _COST.scan_byte_weight
    base = catalog.table(table_name)
    return len(base) * base.schema.row_width * _COST.scan_byte_weight


def what_if_index_units(
    catalog: Catalog | CatalogSnapshot, table_name: str, expected_matches: float, probes: int = 1
) -> float:
    """Estimated cost units of answering via a hash index instead of a scan."""
    return probes * _COST.probe_weight + expected_matches * _COST.emit_weight


def _expected_eq_matches(
    catalog: Catalog | CatalogSnapshot, table_name: str, column: str, fallback: float
) -> float:
    """Expected rows one equality probe on ``column`` fetches.

    Stats-driven when the table has registered ANALYZE statistics covering
    the column (``row_count x eq_selectivity``); otherwise the supplied
    live-size heuristic value.
    """
    stats = catalog.stats(table_name)
    if stats is not None and column in stats.columns:
        return stats.estimated_rows_eq(column)
    return fallback


def members_plan(catalog: Catalog | CatalogSnapshot, table_name: str, halo_id: int) -> PlanChoice:
    """Plan producing the particle ids belonging to ``halo_id``.

    Access paths, cheapest estimated first: a hash index on ``halo`` (one
    probe plus the matching rows), then the materialized view, then the
    filtered base table. The expected match count is stats-driven when the
    table has been analyzed, else assumes uniform halo sizes (rows /
    distinct halos) — the System-R assumption from :mod:`repro.db.stats`.
    On an exact estimate tie the scan-shaped source wins (see the module
    docstring).
    """
    index = catalog.hash_index(table_name, HALO)
    if index is not None:
        base = catalog.table(table_name)
        expected = _expected_eq_matches(
            catalog, table_name, HALO, len(base) / max(len(index), 1)
        )
        if what_if_index_units(catalog, table_name, expected) < _narrow_scan_units(
            catalog, table_name
        ):
            plan = Project(IndexLookup(index, [halo_id]), [PID])
            return PlanChoice(plan=plan, source="index")
    choice = _narrow_source(catalog, table_name)
    plan = Project(
        Filter(choice.plan, Eq(Col(HALO), Const(halo_id))),
        [PID],
    )
    return PlanChoice(plan=plan, source=choice.source)


def histogram_plan(
    catalog: Catalog | CatalogSnapshot, table_name: str, member_pids: AbstractSet
) -> PlanChoice:
    """Plan counting rows per halo among ``member_pids`` in ``table_name``.

    With a hash index on ``pid`` the semi-join becomes one probe per
    member; the planner compares that against the narrow scan and picks
    the strictly cheaper estimate (scan-shaped sources win ties).
    Expected matches per probe are stats-driven when the table has been
    analyzed (particle ids are near-unique, so this stays ~1 per probe),
    else assume unique keys. Unclustered matches are filtered after the
    index fetch so both paths agree with the view's clustered-only
    contents.
    """
    index = catalog.hash_index(table_name, PID)
    if index is not None:
        probes = len(member_pids)
        per_probe = _expected_eq_matches(catalog, table_name, PID, 1.0)
        index_units = what_if_index_units(
            catalog, table_name, expected_matches=probes * per_probe, probes=probes
        )
        if index_units < _narrow_scan_units(catalog, table_name):
            fetched = Filter(
                IndexLookup(index, sorted(member_pids)),
                Ne(Col(HALO), Const(-1)),
            )
            plan = GroupCount(Project(fetched, [PID, HALO]), HALO)
            return PlanChoice(plan=plan, source="index")
    choice = _narrow_source(catalog, table_name)
    plan = GroupCount(
        Filter(choice.plan, In(Col(PID), member_pids)),
        HALO,
    )
    return PlanChoice(plan=plan, source=choice.source)


def what_if_scan_bytes(catalog: Catalog | CatalogSnapshot, table_name: str) -> tuple[float, float]:
    """Estimated bytes for one (pid, halo) pass: (without view, with view).

    Note the base-table cost is the *wide* row width: projection does not
    save scan bytes in a row store — that is exactly why the view helps.
    """
    base = catalog.table(table_name)
    without = float(len(base) * base.schema.row_width)
    narrow_width = base.schema.project([PID, HALO]).row_width
    with_view = float(len(base) * narrow_width)
    return without, with_view
