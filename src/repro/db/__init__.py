"""A small relational engine: the substrate under the astronomy use-case.

The paper's motivating optimizations are materialized views over universe
simulation snapshots (Section 2). To derive optimization *values* (query
speedups) and *costs* (view storage) from first principles rather than
hard-coding the paper's numbers, this package implements just enough of a
database: tables with typed schemas, iterator-style physical operators
with cost accounting, hash and sorted indexes, materialized views, a
cost model mapping logical work to simulated wall-clock time, and a small
rule-based planner with a what-if API for pricing hypothetical views.

Everything is deliberately laptop-scale and deterministic; the engine's
purpose is faithful *relative* costs (wide scan vs narrow view scan vs
index probe), which is what the pricing mechanisms consume.
"""

from repro.db.schema import Column, Schema
from repro.db.table import Table, TableSnapshot
from repro.db.expr import And, Col, Const, Eq, Ge, Gt, In, Le, Lt, Ne, Not, Or
from repro.db.index import HashIndex, SortedIndex
from repro.db.operators import (
    Filter,
    GroupCount,
    HashJoin,
    IndexLookup,
    Project,
    SeqScan,
)
from repro.db.extra_operators import Distinct, GroupAggregate, Limit, Sort, top_k
from repro.db.columnar import ColumnBatch
from repro.db.vec_operators import (
    VecFilter,
    VecGroupCount,
    VecHashJoin,
    VecIndexLookup,
    VecOperator,
    VecProject,
    VecScan,
    to_vector,
)
from repro.db.view import MaterializedView
from repro.db.catalog import Catalog
from repro.db.snapshot import CatalogSnapshot, ViewSnapshot
from repro.db.costmodel import CostMeter, CostModel
from repro.db.engine import ENGINE_MODES, QueryEngine, QueryResult
from repro.db.savings import (
    Candidate,
    CandidateIndex,
    CandidateView,
    SavingsEstimator,
    SavingsQuote,
)
from repro.db.stats import ColumnStats, TableStats, analyze

__all__ = [
    "Column",
    "Schema",
    "Table",
    "TableSnapshot",
    "Col",
    "Const",
    "Eq",
    "Ne",
    "Lt",
    "Le",
    "Gt",
    "Ge",
    "In",
    "And",
    "Or",
    "Not",
    "HashIndex",
    "SortedIndex",
    "SeqScan",
    "IndexLookup",
    "Filter",
    "Project",
    "HashJoin",
    "GroupCount",
    "Sort",
    "Limit",
    "Distinct",
    "GroupAggregate",
    "top_k",
    "ColumnBatch",
    "VecOperator",
    "VecScan",
    "VecFilter",
    "VecProject",
    "VecIndexLookup",
    "VecHashJoin",
    "VecGroupCount",
    "to_vector",
    "ENGINE_MODES",
    "QueryResult",
    "MaterializedView",
    "ColumnStats",
    "TableStats",
    "analyze",
    "Catalog",
    "CatalogSnapshot",
    "ViewSnapshot",
    "CostMeter",
    "CostModel",
    "QueryEngine",
    "Candidate",
    "CandidateIndex",
    "CandidateView",
    "SavingsEstimator",
    "SavingsQuote",
]
