"""Query engine facade: execute plans, track cost, answer workload queries."""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.catalog import Catalog  # noqa: F401 - re-exported surface
from repro.db.costmodel import CostMeter, CostModel
from repro.db.snapshot import CatalogSnapshot  # noqa: F401 - annotation
from repro.db.operators import Operator
from repro.db.planner import histogram_plan, members_plan
from repro.db.vec_operators import to_vector
from repro.errors import QueryError

__all__ = ["QueryResult", "QueryEngine", "ENGINE_MODES"]

#: Physical execution strategies the engine can run a plan with.
ENGINE_MODES = ("auto", "vector", "iterator")


@dataclass(frozen=True)
class QueryResult:
    """Rows plus the metered cost of producing them.

    ``epoch`` is the catalog epoch the query's snapshot was pinned at —
    every row in ``rows`` reflects exactly that catalog state.
    """

    rows: list
    meter: CostMeter
    source: str
    epoch: int = 0

    def scalar(self):
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            columns = len(self.rows[0]) if self.rows else 0
            raise QueryError(
                f"expected one scalar, got {len(self.rows)} row(s) x "
                f"{columns} column(s)"
            )
        return self.rows[0][0]


class QueryEngine:
    """Runs the astronomy workload's queries against a catalog.

    All methods return metered results; ``minutes_of`` converts a meter to
    simulated wall-clock time through the engine's cost model.

    ``mode`` selects the physical execution strategy: ``"iterator"`` runs
    the row-at-a-time operators, ``"vector"`` requires the columnar path
    (raising when a plan has no vector translation), and ``"auto"`` (the
    default) runs vectorized whenever the plan translates and falls back
    to the iterator otherwise. Both paths return identical rows and
    charge identical meters, so the mode is purely a speed knob.

    ``log`` optionally attaches a workload recorder (duck-typed to
    :class:`repro.advisor.WorkloadLog`): every query records its
    *normalized template* — shape, table, touched columns, probed key —
    through ``log.record_query(...)``, never its constants. The advisor
    mines those templates into candidate optimizations.

    Every query pins one :meth:`Catalog.snapshot
    <repro.db.catalog.Catalog.snapshot>` before planning and executes
    entirely against it, so concurrent catalog mutation cannot change a
    query mid-flight; multi-step queries (:meth:`top_contributor`,
    :meth:`halo_chain`, :meth:`contributors_to`) pin one snapshot for all
    their steps. The pinned epoch is recorded on the result and in the
    workload log. The single-step methods accept ``at`` — an existing
    :class:`~repro.db.snapshot.CatalogSnapshot` — to run at an earlier
    pinned state instead.
    """

    def __init__(
        self,
        catalog: "Catalog | CatalogSnapshot",
        cost_model: CostModel | None = None,
        mode: str = "auto",
        log=None,
    ) -> None:
        if mode not in ENGINE_MODES:
            raise QueryError(f"mode must be one of {ENGINE_MODES}, got {mode!r}")
        self.catalog = catalog
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.mode = mode
        self.log = log

    def minutes_of(self, meter: CostMeter) -> float:
        """Simulated minutes of the metered work."""
        return self.cost_model.minutes(meter)

    def recalibrate(self, target_seconds: float, meter: CostMeter) -> None:
        """Rescale the cost model so ``meter``'s work takes ``target_seconds``."""
        self.cost_model = self.cost_model.calibrated(target_seconds, meter)

    def execute_plan(self, plan: Operator, meter: CostMeter) -> list[tuple]:
        """Materialize one plan under the engine's execution mode."""
        if self.mode != "iterator":
            vector_plan = to_vector(plan)
            if vector_plan is not None:
                return vector_plan.materialize(meter)
            if self.mode == "vector":
                raise QueryError(
                    f"plan {type(plan).__name__} has no vector translation"
                )
        return plan.materialize(meter)

    # ------------------------------------------------------------ queries --

    def pin(self):
        """Pin the current catalog state for use as an ``at`` argument."""
        return self.catalog.snapshot()

    def halo_members(self, table_name: str, halo_id: int, at=None) -> QueryResult:
        """Particle ids of one halo in one snapshot."""
        snap = at if at is not None else self.catalog.snapshot()
        if self.log is not None:
            self.log.record_query(
                kind="members",
                table_name=table_name,
                columns=("pid", "halo"),
                key_column="halo",
                excluded=(("halo", -1),),
                epoch=snap.epoch,
            )
        meter = CostMeter()
        choice = members_plan(snap, table_name, halo_id)
        rows = self.execute_plan(choice.plan, meter)
        return QueryResult(
            rows=rows, meter=meter, source=choice.source, epoch=snap.epoch
        )

    def progenitor_histogram(
        self, table_name: str, member_pids, at=None
    ) -> QueryResult:
        """(halo, count) pairs for ``member_pids`` within one snapshot."""
        snap = at if at is not None else self.catalog.snapshot()
        keys = frozenset(member_pids)
        if self.log is not None:
            # Logged probes match what the plan will actually issue: one
            # per distinct key, regardless of input duplicates.
            self.log.record_query(
                kind="histogram",
                table_name=table_name,
                columns=("pid", "halo"),
                key_column="pid",
                excluded=(("halo", -1),),
                probes=float(len(keys)),
                epoch=snap.epoch,
            )
        meter = CostMeter()
        choice = histogram_plan(snap, table_name, keys)
        rows = self.execute_plan(choice.plan, meter)
        return QueryResult(
            rows=rows, meter=meter, source=choice.source, epoch=snap.epoch
        )

    def top_contributor(
        self,
        from_table: str,
        halo_id: int,
        to_table: str,
        exclude_unclustered: bool = True,
        at=None,
    ) -> tuple[int | None, CostMeter]:
        """The halo in ``to_table`` contributing most particles to
        ``halo_id`` of ``from_table`` — the merger-tree step query.

        Returns ``(halo, meter)``; halo is None when no member particle is
        clustered in the target snapshot. Ties break toward the smaller
        halo id for determinism. Unclustered particles (halo == -1) are
        skipped unless ``exclude_unclustered`` is False.
        """
        snap = at if at is not None else self.catalog.snapshot()
        total = CostMeter()
        members = self.halo_members(from_table, halo_id, at=snap)
        total.merge(members.meter)
        pids = frozenset(row[0] for row in members.rows)
        if not pids:
            return None, total

        histogram = self.progenitor_histogram(to_table, pids, at=snap)
        total.merge(histogram.meter)
        best: tuple[int, int] | None = None
        for halo, count in histogram.rows:
            if exclude_unclustered and halo == -1:
                continue
            if best is None or count > best[1] or (count == best[1] and halo < best[0]):
                best = (halo, count)
        return (best[0] if best is not None else None), total

    def halo_chain(
        self, tables_newest_first: list[str], halo_id: int, at=None
    ) -> tuple[list, CostMeter]:
        """Recursive progenitor chain (paper Section 7.2 part (b)).

        ``tables_newest_first[0]`` holds ``halo_id``; the query walks back
        through the remaining snapshots, at each step following the halo
        contributing the most particles to the current one. Returns the
        chain (newest first, None entries once the lineage dies) and the
        combined meter.
        """
        if not tables_newest_first:
            raise QueryError("need at least one snapshot table")
        snap = at if at is not None else self.catalog.snapshot()
        total = CostMeter()
        chain: list = [halo_id]
        current = halo_id
        for newer, older in zip(tables_newest_first, tables_newest_first[1:]):
            if current is None:
                chain.append(None)
                continue
            progenitor, meter = self.top_contributor(newer, current, older, at=snap)
            total.merge(meter)
            chain.append(progenitor)
            current = progenitor
        return chain, total

    def contributors_to(
        self, final_table: str, halo_id: int, earlier_tables: list[str], at=None
    ) -> tuple[dict, CostMeter]:
        """Part (a) of the workload: for each earlier snapshot, the halo
        contributing the most particles to ``halo_id`` of ``final_table``.

        Unlike :meth:`halo_chain` this always compares against the *final*
        snapshot's membership, re-reading it for every earlier snapshot —
        which is why the final snapshot's view is so much more valuable
        than the others (the paper's 44-minute vs 2.5-minute savings).
        """
        snap = at if at is not None else self.catalog.snapshot()
        total = CostMeter()
        result: dict = {}
        for older in earlier_tables:
            top, meter = self.top_contributor(final_table, halo_id, older, at=snap)
            total.merge(meter)
            result[older] = top
        return result, total
