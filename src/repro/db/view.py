"""Materialized views.

The astronomy use-case materializes ``(particleID, haloID)`` per snapshot:
a narrow projection of the wide particle table. A view owns its
materialized table (rebuilt on :meth:`refresh`) and knows its storage
footprint, which the pricing layer turns into the optimization cost.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.db.operators import Operator, Project, SeqScan
from repro.db.table import Table
from repro.errors import QueryError

__all__ = ["MaterializedView"]


class MaterializedView:
    """A named, materialized query result over a base table.

    Parameters
    ----------
    name:
        View name (unique within a catalog).
    definition:
        Zero-argument callable returning the defining plan
        (:class:`~repro.db.operators.Operator`). Called at build time and
        on every refresh, so the plan re-reads current base data.
    depends_on:
        Names of the base tables the definition reads. The catalog uses
        this to cascade ``drop_table`` to dependent views.
    """

    def __init__(
        self,
        name: str,
        definition: Callable[[], Operator],
        depends_on: Sequence[str] = (),
    ) -> None:
        if not name:
            raise QueryError("view name must be non-empty")
        self.name = name
        self.definition = definition
        self.depends_on = tuple(depends_on)
        self.table: Table | None = None
        self.build_cost_units: float = 0.0
        # Serializable recipe for this view's definition, when one exists
        # (set by the advisor's ViewSpec.build); checkpoints persist it so
        # recovery can rebuild the definition closure.
        self.spec = None

    @classmethod
    def projection_of(
        cls, name: str, base: Table, columns: Sequence[str]
    ) -> "MaterializedView":
        """The common case: a narrow projection of a base table."""
        return cls(
            name,
            lambda: Project(SeqScan(base), columns),
            depends_on=(base.name,),
        )

    @property
    def is_materialized(self) -> bool:
        """True once :meth:`refresh` has run."""
        return self.table is not None

    def refresh(self, meter=None) -> Table:
        """(Re)build the view contents; returns the materialized table."""
        from repro.db.costmodel import CostMeter

        meter = meter if meter is not None else CostMeter()
        plan = self.definition()
        table = Table(self.name, plan.schema)
        for row in plan.execute(meter):
            table.insert(row)
        meter.charge_build(len(table), table.schema.row_width)
        self.table = table
        return table

    @property
    def byte_size(self) -> int:
        """Logical storage footprint; raises if not yet materialized."""
        if self.table is None:
            raise QueryError(f"view {self.name!r} is not materialized")
        return self.table.byte_size
