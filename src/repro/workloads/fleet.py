"""Fleet-scale scenario generators: tens of thousands of bids, as arrays.

The per-figure generators in :mod:`repro.workloads.scenarios` build one
game at a time out of Python objects; at fleet scale (hundreds of games,
50k+ users) object-at-a-time intake is itself the bottleneck. These
generators emit :class:`~repro.fleet.engine.FleetBatch` columnar blocks —
one batch per bid duration, everything numpy — that
:meth:`~repro.fleet.engine.FleetEngine.ingest` loads without touching a
Python bid object, plus an object-form twin
(:func:`fleet_arrival_trace`) whose bids are bit-identical, used by the
equivalence tests and the independent-services baseline.
"""

from __future__ import annotations

import numpy as np

from repro.bids.additive import AdditiveBid
from repro.errors import GameConfigError
from repro.fleet.engine import FleetBatch
from repro.utils.rng import RngLike, ensure_rng
from repro.workloads.traces import Arrival

__all__ = ["fleet_game_costs", "fleet_batches", "fleet_arrival_trace"]


def fleet_game_costs(
    rng: RngLike, games: int, mean_cost: float
) -> dict[str, float]:
    """Per-game costs uniform on ``[0, 2c]``, keyed ``game-0 .. game-N-1``.

    The fleet twin of :func:`repro.workloads.substitutes.sample_costs`,
    with string ids matching :func:`fleet_batches`' rank order.
    """
    if games < 1:
        raise GameConfigError(f"need at least one game, got {games}")
    if mean_cost <= 0:
        raise GameConfigError(f"mean cost must be positive, got {mean_cost}")
    generator = ensure_rng(rng)
    draws = generator.uniform(0.0, 2.0 * mean_cost, size=games)
    return {f"game-{j}": max(float(c), 1e-12) for j, c in enumerate(draws)}


def _draw_fleet(
    rng: RngLike, users: int, games: int, slots: int, max_duration: int
):
    if users < 1:
        raise GameConfigError(f"need at least one user, got {users}")
    if games < 1:
        raise GameConfigError(f"need at least one game, got {games}")
    if not 1 <= max_duration <= slots:
        raise GameConfigError(
            f"max duration {max_duration} must be in [1, {slots}]"
        )
    generator = ensure_rng(rng)
    ranks = generator.integers(games, size=users)
    durations = generator.integers(1, max_duration + 1, size=users)
    # Arrival uniform over the slots the whole bid fits in.
    starts = 1 + np.floor(
        generator.random(users) * (slots - durations + 1)
    ).astype(np.int64)
    totals = generator.uniform(0.0, 1.0, size=users)
    return ranks, durations, starts, totals


def fleet_batches(
    rng: RngLike,
    users: int,
    games: int,
    slots: int,
    max_duration: int = 4,
) -> list[FleetBatch]:
    """Columnar fleet workload: one batch per bid duration.

    Each user bids on one uniformly-drawn game, arrives uniformly at a
    slot her whole bid fits in, and splits a U[0, 1) total value evenly
    over her duration — the experiments' workload shape, at fleet scale.
    User ids are dense ints ``0 .. users - 1``.
    """
    ranks, durations, starts, totals = _draw_fleet(
        rng, users, games, slots, max_duration
    )
    batches = []
    for d in range(1, max_duration + 1):
        mask = durations == d
        n = int(mask.sum())
        if n == 0:
            continue
        per_slot = totals[mask] / d
        batches.append(
            FleetBatch(
                users=tuple(np.flatnonzero(mask).tolist()),
                opt_ranks=ranks[mask],
                starts=starts[mask],
                values=np.repeat(per_slot[:, None], d, axis=1),
            )
        )
    return batches


def fleet_arrival_trace(
    rng: RngLike,
    users: int,
    games: int,
    slots: int,
    max_duration: int = 4,
) -> list[Arrival]:
    """The object-form twin of :func:`fleet_batches`.

    Drawn with the same RNG consumption, so the same seed yields the same
    population; each record's ``optimization`` is ``game-<rank>`` to match
    :func:`fleet_game_costs`. Bids are built so their slot values are
    bit-identical to the columnar form.
    """
    ranks, durations, starts, totals = _draw_fleet(
        rng, users, games, slots, max_duration
    )
    arrivals = []
    for u in range(users):
        d = int(durations[u])
        per_slot = float(totals[u]) / d
        arrivals.append(
            Arrival(
                user=u,
                optimization=f"game-{int(ranks[u])}",
                bid=AdditiveBid.over(int(starts[u]), [per_slot] * d),
            )
        )
    return arrivals
