"""Substitute-set and cost sampling for Sections 7.3.2 and 7.6.

Each user picks ``k`` optimizations uniformly at random from the pool of
``n`` as her substitute set; per-optimization costs are drawn uniformly
from ``[0, 2c]`` so that ``c`` is the mean cost ("not all substitutes are
equally expensive").
"""

from __future__ import annotations


from repro.errors import GameConfigError
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["sample_substitute_sets", "sample_costs"]


def sample_substitute_sets(
    rng: RngLike, users: int, optimizations: int, choose: int
) -> list[frozenset]:
    """Draw one ``choose``-element substitute set per user."""
    if users < 0:
        raise GameConfigError(f"user count must be >= 0, got {users}")
    if optimizations < 1:
        raise GameConfigError(f"need at least one optimization, got {optimizations}")
    if not 1 <= choose <= optimizations:
        raise GameConfigError(
            f"substitute-set size {choose} must be in [1, {optimizations}]"
        )
    generator = ensure_rng(rng)
    return [
        frozenset(
            int(j)
            for j in generator.choice(optimizations, size=choose, replace=False)
        )
        for _ in range(users)
    ]


def sample_costs(
    rng: RngLike, optimizations: int, mean_cost: float
) -> dict[int, float]:
    """Draw per-optimization costs uniformly from ``[0, 2 * mean_cost]``.

    Costs are floored at a tiny positive epsilon — the mechanisms require
    strictly positive costs, and a literal 0 draw has measure zero anyway.
    """
    if optimizations < 1:
        raise GameConfigError(f"need at least one optimization, got {optimizations}")
    if mean_cost <= 0:
        raise GameConfigError(f"mean cost must be positive, got {mean_cost}")
    generator = ensure_rng(rng)
    draws = generator.uniform(0.0, 2.0 * mean_cost, size=optimizations)
    return {j: max(float(c), 1e-12) for j, c in enumerate(draws)}
