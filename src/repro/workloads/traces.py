"""Scenario traces: full arrival scripts for the cloud-service simulator.

The figure experiments feed complete bid profiles to the batch runners;
integration tests and demos want the *service* exercised instead — users
arriving mid-period, placing bids on the fly. A trace is an ordered list
of arrival records that :func:`replay_additive_trace` feeds into a
:class:`~repro.cloudsim.service.CloudService` slot by slot.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.bids.additive import AdditiveBid
from repro.cloudsim.catalog import OptimizationCatalog
from repro.cloudsim.service import CloudService, ServiceReport
from repro.errors import GameConfigError
from repro.utils.rng import RngLike, ensure_rng
from repro.workloads.arrivals import uniform_slots
from repro.workloads.values import uniform_values

__all__ = ["Arrival", "generate_additive_trace", "replay_additive_trace"]


@dataclass(frozen=True)
class Arrival:
    """One scripted arrival: who, for which optimization, with which bid."""

    user: object
    optimization: object
    bid: AdditiveBid


def generate_additive_trace(
    rng: RngLike,
    users: int,
    slots: int,
    optimizations: list,
    max_duration: int = 3,
) -> list[Arrival]:
    """A random arrival script over a pool of additive optimizations.

    Each user picks one optimization, an entry slot, a duration (clamped
    to the horizon), and a U[0,1) total value split evenly over her
    interval — the experiments' workload shape, but delivered as events.
    """
    if max_duration < 1:
        raise GameConfigError(f"max duration must be >= 1, got {max_duration}")
    if not optimizations:
        raise GameConfigError("need at least one optimization")
    generator = ensure_rng(rng)
    starts = uniform_slots(generator, users, slots)
    totals = uniform_values(generator, users)
    arrivals = []
    for k in range(users):
        start = int(starts[k])
        duration = int(generator.integers(1, max_duration + 1))
        duration = min(duration, slots - start + 1)
        per_slot = float(totals[k]) / duration
        optimization = optimizations[int(generator.integers(len(optimizations)))]
        arrivals.append(
            Arrival(
                user=f"user-{k}",
                optimization=optimization,
                bid=AdditiveBid.over(start, [per_slot] * duration),
            )
        )
    arrivals.sort(key=lambda a: (a.bid.start, str(a.user)))
    return arrivals


def replay_additive_trace(
    trace: list,
    costs: dict,
    horizon: int,
) -> ServiceReport:
    """Feed a trace through a fresh additive CloudService and run it out.

    Arrivals are placed just before their entry slot is processed, exactly
    as a live service would see them.
    """
    service = CloudService(
        OptimizationCatalog.from_costs(costs), horizon=horizon, mode="additive"
    )
    pending = sorted(trace, key=lambda a: a.bid.start)
    idx = 0
    for _ in range(horizon):
        upcoming = service.slot + 1
        while idx < len(pending) and pending[idx].bid.start == upcoming:
            arrival = pending[idx]
            service.place_additive_bid(
                arrival.user, arrival.optimization, arrival.bid
            )
            idx += 1
        service.advance_slot()
    return service.report()
