"""Synthetic workload generators for the paper's simulated experiments.

Sections 7.3-7.6 share a few building blocks: per-user values drawn
uniformly from [0, 1), arrival slots drawn uniformly or with early/late
exponential skew, substitute sets drawn uniformly from the optimization
pool, and per-optimization costs drawn uniformly from [0, 2c] around a mean
cost ``c``. Each building block lives here; :mod:`repro.workloads.scenarios`
assembles them into complete games.
"""

from repro.workloads.arrivals import (
    early_exponential_slots,
    late_exponential_slots,
    uniform_slots,
)
from repro.workloads.values import uniform_values
from repro.workloads.substitutes import sample_substitute_sets, sample_costs
from repro.workloads.scenarios import (
    additive_duration_game,
    additive_single_slot_game,
    substitutable_game,
)
from repro.workloads.traces import (
    Arrival,
    generate_additive_trace,
    replay_additive_trace,
)
from repro.workloads.fleet import (
    fleet_arrival_trace,
    fleet_batches,
    fleet_game_costs,
)

__all__ = [
    "uniform_slots",
    "early_exponential_slots",
    "late_exponential_slots",
    "uniform_values",
    "sample_substitute_sets",
    "sample_costs",
    "additive_single_slot_game",
    "additive_duration_game",
    "substitutable_game",
    "Arrival",
    "generate_additive_trace",
    "replay_additive_trace",
    "fleet_game_costs",
    "fleet_batches",
    "fleet_arrival_trace",
]
