"""Per-user value distributions for the simulated experiments.

All of Sections 7.3-7.6 draw user values uniformly from [0, 1) while the
optimization cost varies along the x-axis, keeping the cost-to-value ratio
the controlled variable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GameConfigError
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["uniform_values"]


def uniform_values(rng: RngLike, users: int, high: float = 1.0) -> np.ndarray:
    """One value per user, uniform over ``[0, high)``."""
    if users < 0:
        raise GameConfigError(f"user count must be >= 0, got {users}")
    if high <= 0:
        raise GameConfigError(f"high must be positive, got {high}")
    generator = ensure_rng(rng)
    return generator.uniform(0.0, high, size=users)
