"""Arrival-slot distributions (Sections 7.3 and 7.5).

The collaboration experiments draw each user's single service slot
uniformly from ``1..z``; the skew experiment adds *early* arrivals
(exponential with mean 1.28 — datasets that go stale) and *late* arrivals
(``z - t`` with ``t`` exponential with mean 1.2 — datasets that become
popular). Samples are clamped into ``[1, z]``; the paper's footnote 8 notes
the clamp never triggered for them in 1000 runs at these means.
"""

from __future__ import annotations


import numpy as np

from repro.errors import GameConfigError
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["uniform_slots", "early_exponential_slots", "late_exponential_slots"]


def _check(users: int, slots: int) -> None:
    if users < 0:
        raise GameConfigError(f"user count must be >= 0, got {users}")
    if slots < 1:
        raise GameConfigError(f"slot count must be >= 1, got {slots}")


def uniform_slots(rng: RngLike, users: int, slots: int) -> np.ndarray:
    """One arrival slot per user, uniform over ``1..slots``."""
    _check(users, slots)
    generator = ensure_rng(rng)
    return generator.integers(1, slots + 1, size=users)


def early_exponential_slots(
    rng: RngLike, users: int, slots: int, mean: float = 1.28
) -> np.ndarray:
    """Early-skewed arrivals: ``ceil(Exp(mean))`` clamped into ``[1, slots]``."""
    _check(users, slots)
    if mean <= 0:
        raise GameConfigError(f"mean must be positive, got {mean}")
    generator = ensure_rng(rng)
    samples = generator.exponential(mean, size=users)
    return np.clip(np.ceil(samples).astype(int), 1, slots)


def late_exponential_slots(
    rng: RngLike, users: int, slots: int, mean: float = 1.2
) -> np.ndarray:
    """Late-skewed arrivals: ``slots - Exp(mean)`` clamped into ``[1, slots]``."""
    _check(users, slots)
    if mean <= 0:
        raise GameConfigError(f"mean must be positive, got {mean}")
    generator = ensure_rng(rng)
    samples = generator.exponential(mean, size=users)
    return np.clip(np.floor(slots - samples).astype(int) + 1, 1, slots)
