"""Complete game builders for the simulated experiments (Sections 7.3-7.6)."""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.bids.additive import AdditiveBid
from repro.bids.substitutive import SubstitutableBid
from repro.errors import GameConfigError
from repro.workloads.arrivals import (
    early_exponential_slots,
    late_exponential_slots,
    uniform_slots,
)
from repro.workloads.substitutes import sample_substitute_sets
from repro.workloads.values import uniform_values

__all__ = [
    "additive_single_slot_game",
    "additive_duration_game",
    "substitutable_game",
    "ARRIVALS",
]

#: Named arrival distributions used by the skew experiment (Section 7.5).
ARRIVALS: Mapping[str, Callable] = {
    "uniform": uniform_slots,
    "early": early_exponential_slots,
    "late": late_exponential_slots,
}


def additive_single_slot_game(
    rng: np.random.Generator,
    users: int,
    slots: int,
    arrival: str = "uniform",
) -> dict[int, AdditiveBid]:
    """One single-slot bid per user: slot from ``arrival``, value ~ U[0,1).

    This is the workload of Sections 7.3.1 and 7.5: each user values a
    single optimization during one service slot.
    """
    if arrival not in ARRIVALS:
        raise GameConfigError(
            f"unknown arrival distribution {arrival!r}; pick one of {sorted(ARRIVALS)}"
        )
    starts = ARRIVALS[arrival](rng, users, slots)
    values = uniform_values(rng, users)
    return {
        i: AdditiveBid.single_slot(int(starts[i]), float(values[i]))
        for i in range(users)
    }


def additive_duration_game(
    rng: np.random.Generator,
    users: int,
    slots: int,
    duration: int,
) -> dict[int, AdditiveBid]:
    """Multi-slot bids for Section 7.4: value split equally over ``duration``.

    ``s_i`` is uniform over ``1..slots`` and the bid covers
    ``[s_i, s_i + duration - 1]``; the caller should use a horizon of
    ``slots + duration - 1`` so every bid fits (DESIGN.md choice 6).
    """
    if duration < 1:
        raise GameConfigError(f"duration must be >= 1, got {duration}")
    starts = uniform_slots(rng, users, slots)
    values = uniform_values(rng, users)
    return {
        i: AdditiveBid.over(
            int(starts[i]), [float(values[i]) / duration] * duration
        )
        for i in range(users)
    }


def substitutable_game(
    rng: np.random.Generator,
    users: int,
    slots: int,
    optimizations: int,
    choose: int,
    arrival: str = "uniform",
) -> dict[int, SubstitutableBid]:
    """Single-slot substitutable bids for Sections 7.3.2 and 7.6.

    Each user draws a ``choose``-of-``optimizations`` substitute set, a
    uniform arrival slot, and a U[0,1) value.
    """
    if arrival not in ARRIVALS:
        raise GameConfigError(
            f"unknown arrival distribution {arrival!r}; pick one of {sorted(ARRIVALS)}"
        )
    starts = ARRIVALS[arrival](rng, users, slots)
    values = uniform_values(rng, users)
    subsets = sample_substitute_sets(rng, users, optimizations, choose)
    return {
        i: SubstitutableBid.single_slot(
            int(starts[i]), float(values[i]), subsets[i]
        )
        for i in range(users)
    }
