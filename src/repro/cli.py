"""Command-line interface: regenerate any paper figure as a text table.

Usage (after ``pip install -e .``)::

    python -m repro list
    python -m repro fig2a --trials 200
    python -m repro fig1 --values paper --samples 100
    python -m repro all --trials 50 --out results/
    python -m repro fleet --games 100 --users 25000 --slots 1000

Each figure command prints the same series table the benchmark harness
writes to ``benchmarks/results/`` and optionally saves it with ``--out``.
The ``fleet`` command is not a paper figure: it races the fleet engine
against independent per-optimization services on one synthetic workload
(asserting identical outcomes) and prints both timings; ``--gateway``
races the gateway facade against the direct engine instead. The
``replay`` command drives a :class:`~repro.gateway.PricingService` from
a JSONL request trace, and ``serve`` (which in earlier releases was
merely an alias of ``replay``) now starts the real network server::

    python -m repro replay trace.jsonl --replies replies.jsonl
    python -m repro serve --port 8321 --wal-dir wal/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import (
    AdvisorLoopConfig,
    Fig1Config,
    Fig2AdditiveConfig,
    Fig2SubstitutiveConfig,
    Fig3aConfig,
    Fig3bConfig,
    Fig4Config,
    Fig5Config,
    format_result,
    format_summary,
    measure_fleet_mp_point,
    measure_fleet_point,
    measure_gateway_point,
    run_advisor_loop,
    run_fig1_astronomy,
    run_fig2_additive,
    run_fig2_substitutive,
    run_fig3a_slot_count,
    run_fig3b_duration,
    run_fig4_skew,
    run_fig5_selectivity,
)

__all__ = ["main", "FIGURES"]


def _fig1(args) -> object:
    return run_fig1_astronomy(
        Fig1Config(
            values=args.values,
            samples=args.samples,
            seed=args.seed,
            engine_mode=args.engine_mode,
            universe_scale=args.universe_scale,
        )
    )


def _fig2a(args):
    return run_fig2_additive(
        Fig2AdditiveConfig.small(trials=args.trials, seed=args.seed)
    )


def _fig2b(args):
    return run_fig2_additive(
        Fig2AdditiveConfig.large(trials=args.trials, seed=args.seed)
    )


def _fig2c(args):
    return run_fig2_substitutive(
        Fig2SubstitutiveConfig.small(trials=args.trials, seed=args.seed)
    )


def _fig2d(args):
    return run_fig2_substitutive(
        Fig2SubstitutiveConfig.large(trials=max(args.trials // 2, 1), seed=args.seed)
    )


def _fig3a(args):
    return run_fig3a_slot_count(Fig3aConfig(trials=args.trials, seed=args.seed))


def _fig3b(args):
    return run_fig3b_duration(Fig3bConfig(trials=args.trials, seed=args.seed))


def _fig4(args):
    return run_fig4_skew(Fig4Config(trials=args.trials, seed=args.seed))


def _fig5a(args):
    return run_fig5_selectivity(
        Fig5Config.low_selectivity(trials=args.trials, seed=args.seed)
    )


def _fig5b(args):
    return run_fig5_selectivity(
        Fig5Config.high_selectivity(trials=args.trials, seed=args.seed)
    )


#: Figure id -> (runner, paper section, one-line description).
FIGURES = {
    "fig1": (_fig1, "7.2", "astronomy use-case: utilities vs executions"),
    "fig2a": (_fig2a, "7.3.1", "additive, 6 users: utility vs cost"),
    "fig2b": (_fig2b, "7.3.1", "additive, 24 users: utility vs cost"),
    "fig2c": (_fig2c, "7.3.2", "substitutive, 6 users: utility vs cost"),
    "fig2d": (_fig2d, "7.3.2", "substitutive, 24 users: utility vs cost"),
    "fig3a": (_fig3a, "7.4", "utility gap vs number of slots"),
    "fig3b": (_fig3b, "7.4", "utility gap vs bid duration"),
    "fig4": (_fig4, "7.5", "arrival skew: utility ratios vs cost"),
    "fig5a": (_fig5a, "7.6", "substitute selectivity 3-of-4"),
    "fig5b": (_fig5b, "7.6", "substitute selectivity 3-of-12"),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'How to Price Shared "
        "Optimizations in the Cloud' (VLDB 2012).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available figures")

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--trials", type=int, default=200, help="trials per point")
    common.add_argument("--seed", type=int, default=2012, help="master RNG seed")
    common.add_argument("--rows", type=int, default=25, help="max table rows")
    common.add_argument("--summary", action="store_true", help="print min/mean/max only")
    common.add_argument("--out", type=Path, default=None, help="directory to save tables")

    for name, (_, section, description) in FIGURES.items():
        p = sub.add_parser(
            name, parents=[common], help=f"S{section}: {description}"
        )
        if name == "fig1":
            p.add_argument(
                "--values", choices=("paper", "engine"), default="paper",
                help="value table: paper's published numbers or engine-measured",
            )
            p.add_argument(
                "--samples", type=int, default=150,
                help="bid-interval combinations sampled (of the 10^6)",
            )
            p.add_argument(
                "--engine-mode", choices=("auto", "vector", "iterator"),
                default="auto", dest="engine_mode",
                help="relational engine execution path (engine values only)",
            )
            p.add_argument(
                "--universe-scale", type=int, default=1, dest="universe_scale",
                help="multiply the simulated universe's particle count "
                "(engine values only; the columnar path keeps 10x tractable)",
            )
    sub.add_parser("all", parents=[common], help="run every figure")

    fleet = sub.add_parser(
        "fleet",
        help="race the fleet engine against independent per-game services",
    )
    fleet.add_argument("--games", type=int, default=100, help="concurrent games")
    fleet.add_argument("--users", type=int, default=25_000, help="total users")
    fleet.add_argument("--slots", type=int, default=1000, help="period horizon")
    fleet.add_argument(
        "--duration", type=int, default=4, help="max bid duration in slots"
    )
    fleet.add_argument(
        "--mean-cost", type=float, default=30.0, help="mean per-game cost"
    )
    fleet.add_argument("--shards", type=int, default=8, help="fleet shard count")
    fleet.add_argument(
        "--workers", type=int, default=0,
        help="race a shared-nothing multi-process pool of this many workers "
        "against the in-process engine (0/1 = classic services race)",
    )
    fleet.add_argument(
        "--repeats", type=int, default=2, help="timing repeats (best-of)"
    )
    fleet.add_argument("--seed", type=int, default=2012, help="master RNG seed")
    fleet.add_argument(
        "--gateway", action="store_true",
        help="race the gateway facade against the direct engine instead of "
        "the engine against independent services",
    )

    advise = sub.add_parser(
        "advise",
        help="run the closed optimization loop on the astronomy workload",
    )
    advise.add_argument(
        "--particles", type=int, default=4000, help="particles per snapshot"
    )
    advise.add_argument(
        "--snapshots", type=int, default=4, help="simulated snapshots"
    )
    advise.add_argument(
        "--slots", type=int, default=12, help="pricing-game horizon in slots"
    )
    advise.add_argument(
        "--storage-rate", type=float, default=1e-6, dest="storage_rate",
        help="dollars per stored byte per period (candidate cost C_j)",
    )
    advise.add_argument(
        "--engine-mode", choices=("auto", "vector", "iterator"),
        default="auto", dest="engine_mode",
        help="relational engine execution path",
    )
    advise.add_argument("--seed", type=int, default=2012, help="master RNG seed")

    replay = sub.add_parser(
        "replay",
        help="drive the pricing gateway from a JSONL request trace "
        "(note: 'serve' was once an alias of this command; it now "
        "starts the network server instead)",
    )
    replay.add_argument(
        "trace", type=Path, help="request trace, one envelope per line"
    )
    replay.add_argument(
        "--replies", type=Path, default=None,
        help="write one reply envelope per request line to this JSONL file",
    )
    replay.add_argument(
        "--particles", type=int, default=0,
        help="simulate an astronomy universe of this many particles into "
        "the service's relational catalog before replaying (0 = none)",
    )
    replay.add_argument(
        "--snapshots", type=int, default=4,
        help="snapshots of the simulated universe (with --particles)",
    )
    replay.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when any request came back as an ErrorReply",
    )
    replay.add_argument("--seed", type=int, default=2012, help="universe RNG seed")
    replay.add_argument(
        "--wal-dir", type=Path, default=None, dest="wal_dir",
        help="make the service durable: write-ahead log every request to "
        "this directory (must not already hold a WAL)",
    )
    replay.add_argument(
        "--checkpoint-every", type=int, default=None, dest="checkpoint_every",
        help="checkpoint automatically after this many WAL records "
        "(with --wal-dir)",
    )
    replay.add_argument(
        "--retain-checkpoints", type=int, default=None,
        dest="retain_checkpoints",
        help="rotate the WAL at every checkpoint and keep only this many "
        "checkpoints, deleting fully-covered segments (with --wal-dir)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve the pricing gateway over HTTP (asyncio server with "
        "admission control, deadlines, group commit, graceful drain)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="bind port (0 picks an ephemeral one)",
    )
    serve.add_argument(
        "--particles", type=int, default=0,
        help="simulate an astronomy universe of this many particles into "
        "the catalog before serving (0 = none; ignored when recovering)",
    )
    serve.add_argument(
        "--snapshots", type=int, default=4,
        help="snapshots of the simulated universe (with --particles)",
    )
    serve.add_argument("--seed", type=int, default=2012, help="universe RNG seed")
    serve.add_argument(
        "--wal-dir", type=Path, default=None, dest="wal_dir",
        help="durable serving: recover this WAL directory if it holds "
        "one, attach a fresh WAL otherwise",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=None, dest="checkpoint_every",
        help="checkpoint automatically after this many WAL records "
        "(with --wal-dir)",
    )
    serve.add_argument(
        "--retain-checkpoints", type=int, default=None,
        dest="retain_checkpoints",
        help="rotate the WAL at every checkpoint and keep only this many "
        "checkpoints (with --wal-dir)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=64, dest="max_pending",
        help="admission bound: total queued or in-flight envelopes",
    )
    serve.add_argument(
        "--tenant-pending", type=int, default=16, dest="tenant_pending",
        help="per-tenant fair-share admission bound",
    )
    serve.add_argument(
        "--max-delay", type=float, default=0.002, dest="max_delay",
        help="seconds an envelope may wait to join a group commit",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=5.0, dest="read_timeout",
        help="seconds to receive a full request (slow-loris guard)",
    )

    recover = sub.add_parser(
        "recover",
        help="rebuild a durable pricing service from its WAL directory",
    )
    recover.add_argument(
        "wal_dir", type=Path, help="directory holding wal.jsonl + checkpoints"
    )
    recover.add_argument(
        "--checkpoint", action="store_true",
        help="write a fresh checkpoint covering the whole WAL after recovery",
    )

    checkpoint = sub.add_parser(
        "checkpoint",
        help="recover a WAL directory and checkpoint it (compacts replay)",
    )
    checkpoint.add_argument(
        "wal_dir", type=Path, help="directory holding wal.jsonl + checkpoints"
    )

    stats = sub.add_parser(
        "stats",
        help="read a running gateway's metrics (Prometheus text, or the "
        "MetricsReply wire form with --json)",
    )
    stats.add_argument("--host", default="127.0.0.1", help="gateway host")
    stats.add_argument(
        "--port", type=int, default=8321, help="gateway port (default 8321)"
    )
    stats.add_argument(
        "--json", action="store_true",
        help="fetch through the MetricsRequest envelope and print the "
        "reply's wire dict instead of the Prometheus text",
    )

    wal_gc = sub.add_parser(
        "wal-gc",
        help="compact a WAL directory: checkpoint, rotate, and delete "
        "history covered by aged-out checkpoints",
    )
    wal_gc.add_argument(
        "wal_dir", type=Path, help="directory holding wal.jsonl + checkpoints"
    )
    wal_gc.add_argument(
        "--retain", type=int, default=2,
        help="checkpoints to keep (older ones and the segments they "
        "cover are deleted)",
    )
    return parser


def _run_fleet(args) -> int:
    if args.workers > 1:
        print(
            f"== fleet-mp: {args.games} games, {args.users} users, "
            f"{args.slots} slots, {args.workers} workers "
            f"(bit-identical outcomes asserted) =="
        )
        single_s, pool_s = measure_fleet_mp_point(
            games=args.games,
            users=args.users,
            slots=args.slots,
            max_duration=args.duration,
            mean_cost=args.mean_cost,
            shards=args.shards,
            repeats=args.repeats,
            seed=args.seed,
            workers=args.workers,
        )
        print(f"single-process engine {single_s:>8.3f} s")
        print(f"{f'{args.workers}-worker pool':<22}{pool_s:>8.3f} s")
        print(f"speedup               {single_s / pool_s:>8.2f} x")
        return 0
    if args.gateway:
        print(
            f"== gateway: {args.games} games, {args.users} users, "
            f"{args.slots} slots (bit-identical outcomes asserted) =="
        )
        direct_s, gateway_s = measure_gateway_point(
            games=args.games,
            users=args.users,
            slots=args.slots,
            max_duration=args.duration,
            mean_cost=args.mean_cost,
            shards=args.shards,
            repeats=args.repeats,
            seed=args.seed,
        )
        print(f"direct fleet engine   {direct_s:>8.3f} s")
        print(f"gateway dispatch      {gateway_s:>8.3f} s")
        print(f"dispatch overhead     {(gateway_s / direct_s - 1.0):>8.1%}")
        return 0
    print(
        f"== fleet: {args.games} games, {args.users} users, "
        f"{args.slots} slots (identical outcomes asserted) =="
    )
    services_s, fleet_s = measure_fleet_point(
        games=args.games,
        users=args.users,
        slots=args.slots,
        max_duration=args.duration,
        mean_cost=args.mean_cost,
        shards=args.shards,
        repeats=args.repeats,
        seed=args.seed,
    )
    print(f"independent services  {services_s:>8.3f} s")
    print(f"fleet engine          {fleet_s:>8.3f} s")
    print(f"speedup               {services_s / fleet_s:>8.2f} x")
    return 0


def _run_advise(args) -> int:
    loop = run_advisor_loop(
        AdvisorLoopConfig(
            particles=args.particles,
            snapshots=args.snapshots,
            horizon=args.slots,
            dollars_per_byte=args.storage_rate,
            engine_mode=args.engine_mode,
            seed=args.seed,
        )
    )
    outcome = loop.outcome
    print(
        f"== advise: {args.particles} particles x {args.snapshots} snapshots, "
        f"{len(outcome.candidates)} candidates mined =="
    )
    for candidate in outcome.candidates.candidates:
        quote = outcome.quotes[candidate.name]
        state = "funded" if candidate.name in outcome.funded else "unfunded"
        print(
            f"{candidate.name:<24} {quote.kind:<7} "
            f"{quote.saving_units_per_run:>12.0f} units/run  {state}"
        )
    print(f"adopted: {', '.join(outcome.adopted) if outcome.adopted else '(none)'}")
    print(
        f"metered workload cost: {loop.baseline_units:,.0f} -> "
        f"{loop.advised_units:,.0f} units ({loop.cost_ratio:.1f}x cheaper)"
    )
    return 0


def _load_universe(service, particles: int, snapshots: int, seed: int) -> None:
    """Pre-load a simulated astronomy universe so RunQuery envelopes have
    tables to hit; the table names are snap_01 .. snap_NN."""
    from repro.astro.simulator import UniverseConfig, UniverseSimulator

    for snapshot in UniverseSimulator(
        UniverseConfig(particles=particles, snapshots=snapshots), rng=seed
    ).run():
        service.db.create_table(snapshot.to_table())
    print(
        f"[universe: {particles} particles x "
        f"{snapshots} snapshots -> {service.db.table_names}]"
    )


def _run_replay(args) -> int:
    import json

    from repro.gateway.service import PricingService
    from repro.gateway.trace import iter_trace, replay

    service = PricingService()
    if args.particles > 0:
        _load_universe(service, args.particles, args.snapshots, args.seed)
    if args.wal_dir is not None:
        # Attach after the universe load so the base checkpoint covers
        # the preloaded tables; every replayed envelope is then durable.
        service.attach_wal(
            args.wal_dir,
            checkpoint_every=args.checkpoint_every,
            retain_checkpoints=args.retain_checkpoints,
        )
        print(f"[write-ahead log at {args.wal_dir}]")
    result = replay(iter_trace(args.trace), service=service)
    counts = result.counts()
    total = len(result.replies)
    print(f"== replay: {args.trace} -> {total} replies ==")
    for kind in sorted(counts):
        print(f"{kind:<16} {counts[kind]:>6}")
    for reply in result.errors:
        print(
            f"error [{reply.get('code')}] {reply.get('request_kind') or '?'}: "
            f"{reply.get('message')}"
        )
    if result.service.fleet is not None:
        report = result.service.report()
        print(
            f"period: slot {result.service.slot}/{result.service.fleet.horizon}, "
            f"{len(report.implemented)} implemented, "
            f"cloud balance {report.cloud_balance:.2f}"
        )
    if args.replies is not None:
        args.replies.parent.mkdir(parents=True, exist_ok=True)
        with open(args.replies, "w", encoding="utf-8") as handle:
            for reply in result.replies:
                handle.write(json.dumps(reply) + "\n")
        print(f"[replies written to {args.replies}]")
    if args.strict and result.errors:
        print(f"{len(result.errors)} request(s) failed (--strict)")
        return 1
    return 0


def _run_serve(args) -> int:
    import asyncio

    from repro.gateway.server import ServerConfig, serve
    from repro.gateway.service import PricingService
    from repro.gateway.wal.records import WAL_FILENAME

    recovering = (
        args.wal_dir is not None and (args.wal_dir / WAL_FILENAME).exists()
    )
    if recovering:
        service = PricingService.recover(
            args.wal_dir,
            checkpoint_every=args.checkpoint_every,
            retain_checkpoints=args.retain_checkpoints,
        )
        print(f"[recovered durable service from {args.wal_dir}]")
        if args.particles > 0:
            print("[--particles ignored: recovered state wins]")
    else:
        service = PricingService()
        if args.particles > 0:
            _load_universe(service, args.particles, args.snapshots, args.seed)
        if args.wal_dir is not None:
            service.attach_wal(
                args.wal_dir,
                checkpoint_every=args.checkpoint_every,
                retain_checkpoints=args.retain_checkpoints,
            )
            print(f"[write-ahead log at {args.wal_dir}]")
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        tenant_pending=args.tenant_pending,
        max_delay=args.max_delay,
        read_timeout=args.read_timeout,
    )

    def ready(address) -> None:
        print(
            f"[serving on http://{address[0]}:{address[1]} "
            "- SIGTERM or Ctrl-C to drain]"
        )

    server = asyncio.run(serve(service, config, ready=ready))
    print(
        f"[drained: {server.dispatched} dispatched, {server.shed} shed, "
        f"{server.batches} group commits]"
    )
    service.close()
    return 0


def _run_recover(args, write_checkpoint: bool) -> int:
    from repro.errors import RecoveryError
    from repro.gateway.service import PricingService
    from repro.gateway.wal.recovery import read_log

    try:
        service = PricingService.recover(args.wal_dir)
        log = read_log(args.wal_dir)
        print(f"== recover: {args.wal_dir} ==")
        print(f"wal records      {len(log.records):>6}")
        if log.segments:
            print(f"wal segments     {len(log.segments):>6}")
        print(f"db epoch         {service.db.epoch:>6}")
        print(f"tables           {len(service.db.table_names):>6}")
        if service.fleet is not None:
            print(
                f"period: slot {service.fleet.slot}/{service.fleet.horizon}, "
                f"cloud balance {service.fleet.ledger.balance:.2f}"
            )
        else:
            print("period: none open")
        if write_checkpoint:
            path = service.checkpoint()
            print(f"[checkpoint written to {path}]")
        service.close()
    except RecoveryError as exc:
        print(f"recovery failed: {exc}")
        return 1
    return 0


def _run_wal_gc(args) -> int:
    from repro.errors import RecoveryError
    from repro.gateway.service import PricingService

    try:
        service = PricingService.recover(args.wal_dir)
        # A fresh checkpoint covering the whole log first, so compaction
        # can age out everything older.
        service.checkpoint()
        report = service.wal_gc(args.retain)
        service.close()
    except RecoveryError as exc:
        print(f"wal-gc failed: {exc}")
        return 1
    print(f"== wal-gc: {args.wal_dir} (retain {args.retain}) ==")
    print(f"checkpoints kept    {len(report.retained_checkpoints):>6}")
    print(f"checkpoints removed {len(report.removed_checkpoints):>6}")
    print(f"segments removed    {len(report.removed_segments):>6}")
    for path in report.removed_checkpoints + report.removed_segments:
        print(f"  deleted {path.name}")
    return 0


def _run_stats(args) -> int:
    import json

    from repro.gateway.client import GatewayClient, GatewayUnavailable
    from repro.gateway.envelopes import MetricsRequest, to_dict

    try:
        with GatewayClient(args.host, args.port, max_attempts=2) as client:
            if args.json:
                reply = client.request(MetricsRequest())
                print(json.dumps(to_dict(reply), sort_keys=True))
            else:
                print(client.metrics_text(), end="")
    except (OSError, GatewayUnavailable) as exc:
        print(f"stats failed: no gateway at {args.host}:{args.port} ({exc})")
        return 1
    return 0


def _emit(result, args) -> None:
    text = format_summary(result) if args.summary else format_result(result, max_rows=args.rows)
    print(text)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        path = args.out / f"{result.experiment}.txt"
        path.write_text(text + "\n")
        print(f"[written to {path}]")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (_, section, description) in FIGURES.items():
            print(f"{name:<7} Section {section:<6} {description}")
        print("fleet   (engine)       fleet engine vs independent services")
        print("advise  (advisor)      closed optimization loop on astronomy")
        print("replay  (gateway)      drive the pricing gateway from a JSONL trace")
        print("serve   (gateway)      serve the pricing gateway over HTTP")
        print("recover (durability)   rebuild a durable service from its WAL")
        print("checkpoint (durability) recover a WAL directory and checkpoint it")
        print("wal-gc  (durability)   compact a WAL directory (rotate + delete)")
        print("stats   (observability) read a running gateway's metrics")
        return 0
    if args.command == "fleet":
        return _run_fleet(args)
    if args.command == "advise":
        return _run_advise(args)
    if args.command == "replay":
        return _run_replay(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "recover":
        return _run_recover(args, write_checkpoint=args.checkpoint)
    if args.command == "checkpoint":
        return _run_recover(args, write_checkpoint=True)
    if args.command == "wal-gc":
        return _run_wal_gc(args)
    if args.command == "stats":
        return _run_stats(args)

    names = list(FIGURES) if args.command == "all" else [args.command]
    if args.command == "all":
        # `all` has no fig1-specific flags; use the fig1 defaults.
        args.values = "paper"
        args.samples = 150
        args.engine_mode = "auto"
        args.universe_scale = 1
    for name in names:
        runner, section, description = FIGURES[name]
        print(f"== {name} (Section {section}): {description} ==")
        started = time.time()
        result = runner(args)
        print(f"[{time.time() - started:.1f}s]")
        _emit(result, args)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
