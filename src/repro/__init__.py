"""repro — a reproduction of "How to Price Shared Optimizations in the Cloud".

Upadhyaya, Balazinska, Suciu. PVLDB 5(6), 2012.

The package implements the paper's four cost-sharing mechanisms for shared
database optimizations (AddOff, AddOn, SubstOff, SubstOn, all built on the
Shapley Value Mechanism), the regret-amortization baseline it compares
against, the astronomy use-case substrate (universe simulator, halo finder,
merger-tree workload, mini relational engine with materialized views), the
fleet engine (:mod:`repro.fleet`) that batches hundreds of concurrent
pricing games into one slot-synchronized scheduler with workload-derived
bids, the closed optimization loop (:mod:`repro.advisor`) that mines
executed workloads into priceable view and index candidates and adopts
whatever the pricing games fund, the unified tenant gateway
(:mod:`repro.gateway`) that fronts all of it with one versioned,
JSON-round-trippable ``dispatch(request) -> reply`` surface
(:class:`~repro.gateway.PricingService`), and experiment drivers that
regenerate every figure in the paper's evaluation.

Quickstart
----------
>>> from repro import run_shapley
>>> result = run_shapley(cost=100.0, bids={"ann": 60.0, "bob": 55.0, "eve": 20.0})
>>> sorted(result.serviced), result.price
(['ann', 'bob'], 50.0)

`API.md` at the repository root documents the public surface with one
runnable snippet per entry.
"""

from repro import obs
from repro.bids import AdditiveBid, RevisableBid, SlotValues, SubstitutableBid
from repro.core import (
    AddOffOutcome,
    AddOnOutcome,
    ShapleyResult,
    SubstOffOutcome,
    SubstOnOutcome,
    accounting,
    run_addoff,
    run_addon,
    run_shapley,
    run_substoff,
    run_subston,
)
from repro.advisor import OptimizationAdvisor
from repro.db import Catalog, QueryEngine, SavingsEstimator
from repro.errors import (
    BidError,
    GameConfigError,
    MechanismError,
    ProtocolError,
    QueryError,
    ReproError,
    RevisionError,
    SchemaError,
)
from repro.fleet import FleetBatch, FleetEngine, FleetExecutor, FleetReport
from repro.gateway import API_VERSION, PricingService, TenantSession

# Imported after repro.gateway: repro.fleet.mp uses the gateway's wire
# codec, so it must not load while repro.gateway is mid-initialization.
from repro.fleet.mp import MultiProcessFleet

__version__ = "1.6.0"

__all__ = [
    "__version__",
    # observability
    "obs",
    # bids
    "SlotValues",
    "AdditiveBid",
    "SubstitutableBid",
    "RevisableBid",
    # mechanisms
    "run_shapley",
    "run_addoff",
    "run_addon",
    "run_substoff",
    "run_subston",
    # outcomes
    "ShapleyResult",
    "AddOffOutcome",
    "AddOnOutcome",
    "SubstOffOutcome",
    "SubstOnOutcome",
    "accounting",
    # fleet
    "FleetBatch",
    "FleetEngine",
    "FleetExecutor",
    "FleetReport",
    "MultiProcessFleet",
    # gateway (the public service surface)
    "API_VERSION",
    "PricingService",
    "TenantSession",
    # relational substrate and the closed loop
    "Catalog",
    "QueryEngine",
    "SavingsEstimator",
    "OptimizationAdvisor",
    # errors
    "ReproError",
    "BidError",
    "RevisionError",
    "MechanismError",
    "GameConfigError",
    "SchemaError",
    "QueryError",
    "ProtocolError",
]
