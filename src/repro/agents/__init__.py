"""Bidder strategies: truthful play and the manipulations the paper studies.

Each agent owns a *true* valuation and produces the declaration(s) it
actually submits. The truthfulness analyses (Sections 5.2 and 6) become
executable: pit a strategy against truthful play on the same game and
compare realized utilities — which is exactly what the strategy tests and
the ``strategic_bidding`` example do.
"""

from repro.agents.base import AdditiveAgent, SubstitutableAgent
from repro.agents.misreport import (
    OverBidder,
    TimeShifter,
    UnderBidder,
    SetLiar,
)
from repro.agents.sybil import SubstitutableSybil, SybilSplitter
from repro.agents.truthful import TruthfulAdditive, TruthfulSubstitutable

__all__ = [
    "AdditiveAgent",
    "SubstitutableAgent",
    "TruthfulAdditive",
    "TruthfulSubstitutable",
    "UnderBidder",
    "OverBidder",
    "TimeShifter",
    "SetLiar",
    "SybilSplitter",
    "SubstitutableSybil",
]
