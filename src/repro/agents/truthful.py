"""Truthful agents: declare exactly the true valuation."""

from __future__ import annotations

from typing import Mapping

from repro.agents.base import AdditiveAgent, SubstitutableAgent
from repro.bids.additive import AdditiveBid
from repro.bids.substitutive import SubstitutableBid
from repro.core.outcome import UserId

__all__ = ["TruthfulAdditive", "TruthfulSubstitutable"]


class TruthfulAdditive(AdditiveAgent):
    """Declares her true additive schedule, one identity."""

    def declarations(self) -> Mapping[UserId, AdditiveBid]:
        return {self.user: self.truth}


class TruthfulSubstitutable(SubstitutableAgent):
    """Declares her true substitutable bid, one identity."""

    def declarations(self) -> Mapping[UserId, SubstitutableBid]:
        return {self.user: self.truth}
