"""Misreporting strategies: value scaling, time shifting, set lies.

These are the manipulations the paper's truthfulness results rule out
(for value/time lies) or analyze (set lies under SubstOff's assumptions).
"""

from __future__ import annotations

from typing import AbstractSet, Mapping

from repro.agents.base import AdditiveAgent, SubstitutableAgent
from repro.bids.additive import AdditiveBid
from repro.bids.slots import SlotValues
from repro.bids.substitutive import SubstitutableBid
from repro.core.outcome import UserId
from repro.errors import GameConfigError

__all__ = ["UnderBidder", "OverBidder", "TimeShifter", "SetLiar"]


class _Scaler(AdditiveAgent):
    """Common machinery for multiplicative value misreports."""

    factor: float = 1.0

    def declarations(self) -> Mapping[UserId, AdditiveBid]:
        scaled = self.truth.schedule.scaled(self.factor)
        return {self.user: AdditiveBid(scaled)}


class UnderBidder(_Scaler):
    """Declares ``factor < 1`` of her true per-slot values."""

    def __init__(self, user: UserId, truth: AdditiveBid, factor: float = 0.5) -> None:
        if not 0.0 <= factor < 1.0:
            raise GameConfigError(f"underbid factor must be in [0, 1), got {factor}")
        super().__init__(user, truth)
        self.factor = factor


class OverBidder(_Scaler):
    """Declares ``factor > 1`` of her true per-slot values."""

    def __init__(self, user: UserId, truth: AdditiveBid, factor: float = 2.0) -> None:
        if factor <= 1.0:
            raise GameConfigError(f"overbid factor must be > 1, got {factor}")
        super().__init__(user, truth)
        self.factor = factor


class TimeShifter(AdditiveAgent):
    """Hides her first ``delay`` slots, declaring only the tail.

    This is Example 2's attempted free-ride: arrive late and hope the
    others have already paid for the optimization.
    """

    def __init__(self, user: UserId, truth: AdditiveBid, delay: int = 1) -> None:
        if delay < 1:
            raise GameConfigError(f"delay must be >= 1, got {delay}")
        if delay > truth.end - truth.start:
            raise GameConfigError(
                f"delay {delay} would hide the whole interval "
                f"[{truth.start}, {truth.end}]"
            )
        super().__init__(user, truth)
        self.delay = delay

    def declarations(self) -> Mapping[UserId, AdditiveBid]:
        start = self.truth.start + self.delay
        values = [self.truth.value_at(t) for t in range(start, self.truth.end + 1)]
        return {self.user: AdditiveBid(SlotValues(start, tuple(values)))}


class SetLiar(SubstitutableAgent):
    """Declares a different substitute set than the truth (Example 7)."""

    def __init__(
        self,
        user: UserId,
        truth: SubstitutableBid,
        declared_set: AbstractSet,
    ) -> None:
        super().__init__(user, truth)
        if not declared_set:
            raise GameConfigError("declared substitute set must be non-empty")
        self.declared_set = frozenset(declared_set)

    def declarations(self) -> Mapping[UserId, SubstitutableBid]:
        return {
            self.user: SubstitutableBid(self.truth.schedule, self.declared_set)
        }
