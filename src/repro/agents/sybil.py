"""Multiple-identity (sybil) strategies (paper Sections 5.2 and 6).

A sybil splitter replaces one account with ``k`` identities. Under the
additive mechanisms this can raise her own utility but — Proposition 2 —
never lowers anyone else's; under substitutable mechanisms it *can* hurt
others, though pulling that off requires knowing the other bids.
"""

from __future__ import annotations

from typing import Mapping

from repro.agents.base import AdditiveAgent, SubstitutableAgent
from repro.bids.additive import AdditiveBid
from repro.bids.substitutive import SubstitutableBid
from repro.core.outcome import UserId
from repro.errors import GameConfigError

__all__ = ["SybilSplitter", "SubstitutableSybil"]


class SybilSplitter(AdditiveAgent):
    """Submits ``identities`` copies of a bid instead of one.

    ``scale`` controls each copy's declared values relative to the truth;
    the paper's Alice example uses full copies (scale 1.0), betting that a
    bigger crowd drags the per-user share below everyone's value.
    """

    def __init__(
        self,
        user: UserId,
        truth: AdditiveBid,
        identities: int = 2,
        scale: float = 1.0,
    ) -> None:
        if identities < 2:
            raise GameConfigError(f"a sybil needs >= 2 identities, got {identities}")
        if scale <= 0:
            raise GameConfigError(f"scale must be positive, got {scale}")
        super().__init__(user, truth)
        self.identities = identities
        self.scale = scale

    def declarations(self) -> Mapping[UserId, AdditiveBid]:
        declared = AdditiveBid(self.truth.schedule.scaled(self.scale))
        return {
            f"{self.user}#{k}": declared for k in range(1, self.identities + 1)
        }


class SubstitutableSybil(SubstitutableAgent):
    """Splits a substitutable bid into ``identities`` equal-value copies.

    This is Section 6's dummy-user play: by inflating an optimization's
    bidder count the sybil can drag its phase-1 cost-share down and steer
    SubstOff toward the optimization she prefers. Unlike the additive case
    this *can* reduce other users' utility — but pulling it off requires
    knowing their bids, and a wrong guess backfires (the paper's argument
    for why truthful play remains optimal in practice).

    ``value_split`` controls each identity's declared value; the paper's
    example splits the true value evenly (each of user 1's two identities
    bids 2.5 of her 5).
    """

    def __init__(
        self,
        user: UserId,
        truth: SubstitutableBid,
        identities: int = 2,
        value_split: bool = True,
    ) -> None:
        if identities < 2:
            raise GameConfigError(f"a sybil needs >= 2 identities, got {identities}")
        super().__init__(user, truth)
        self.identities = identities
        self.value_split = value_split

    def declarations(self) -> Mapping[UserId, SubstitutableBid]:
        if self.value_split:
            schedule = self.truth.schedule.scaled(1.0 / self.identities)
        else:
            schedule = self.truth.schedule
        declared = SubstitutableBid(schedule, self.truth.substitutes)
        return {
            f"{self.user}#{k}": declared for k in range(1, self.identities + 1)
        }
