"""Agent interfaces.

An agent wraps a user's true valuation and answers two questions: what
does she *declare* (possibly several identities' worth of declarations),
and what utility does she *really* get from an outcome. Utilities are
always evaluated against the truth, regardless of what was declared.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

from repro.bids.additive import AdditiveBid
from repro.bids.substitutive import SubstitutableBid
from repro.core.accounting import subston_realized_value
from repro.core.outcome import AddOnOutcome, SubstOnOutcome, UserId

__all__ = ["AdditiveAgent", "SubstitutableAgent"]


class AdditiveAgent(ABC):
    """A bidder in a single-optimization online additive game."""

    def __init__(self, user: UserId, truth: AdditiveBid) -> None:
        self.user = user
        self.truth = truth

    @abstractmethod
    def declarations(self) -> Mapping[UserId, AdditiveBid]:
        """The bid(s) this agent submits, keyed by identity."""

    def utility(self, outcome: AddOnOutcome) -> float:
        """True utility: realized value over all identities minus payments.

        A multi-identity agent realizes her value if *any* identity is
        serviced during a slot (she runs queries under that identity), but
        pays for all of them (Section 5.2).
        """
        identities = list(self.declarations())
        realized = 0.0
        for t in range(1, outcome.horizon + 1):
            serviced = outcome.serviced_by_slot[t]
            if any(identity in serviced for identity in identities):
                realized += self.truth.value_at(t)
        paid = sum(outcome.payment(identity) for identity in identities)
        return realized - paid


class SubstitutableAgent(ABC):
    """A bidder in an online substitutable game."""

    def __init__(self, user: UserId, truth: SubstitutableBid) -> None:
        self.user = user
        self.truth = truth

    @abstractmethod
    def declarations(self) -> Mapping[UserId, SubstitutableBid]:
        """The bid(s) this agent submits, keyed by identity."""

    def utility(self, outcome: SubstOnOutcome) -> float:
        """True utility across identities (value if any identity holds a
        grant in the true substitute set; payments for all identities)."""
        identities = list(self.declarations())
        realized = 0.0
        for identity in identities:
            value = subston_realized_value(outcome, identity, self.truth)
            realized = max(realized, value)
        paid = sum(outcome.payment(identity) for identity in identities)
        return realized - paid


def _single(user: UserId, bid) -> dict:
    """Helper for single-identity agents."""
    return {user: bid}
