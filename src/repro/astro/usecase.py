"""Assembly of the full astronomy use-case (paper Section 7.2).

Builds the synthetic universe, loads snapshots into the relational engine,
defines the six astronomers (two halo groups x strides 1/2/4), measures
each workload's unoptimized runtime, calibrates the cost model to the
paper's 81 minutes for the first astronomer, and derives every
optimization's value (compute dollars saved per workload execution) and
cost (view storage dollars, mean-normalized to $2.31).

Per-view savings are computed analytically from per-table scan-pass counts:
the with-view plan differs from the without-view plan *only* in scan bytes
(same filters, probes and emits), so
``saving = passes x (wide_bytes - view_bytes) x scan_weight``. The identity
is verified against an actual re-run in the test suite and exposed here via
:meth:`AstronomyUseCase.run_workload_minutes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.astro.particles import ParticleSnapshot
from repro.astro.pricing import Ec2Pricing
from repro.astro.simulator import UniverseConfig, UniverseSimulator
from repro.astro.workload import AstronomerWorkload
from repro.db.catalog import Catalog
from repro.db.costmodel import CostModel
from repro.db.engine import QueryEngine
from repro.db.expr import Col, Const, Ne
from repro.db.operators import Filter, Project, SeqScan
from repro.db.planner import view_name_for
from repro.db.view import MaterializedView
from repro.errors import GameConfigError

__all__ = ["UseCaseConfig", "AstronomyUseCase", "build_use_case"]

#: The paper's published per-astronomer numbers, used for calibration and
#: available to the Figure 1 driver as `values="paper"`.
PAPER_RUNTIMES_MIN = (81.0, 36.0, 16.0, 83.0, 44.0, 17.0)
PAPER_FINAL_VIEW_SAVINGS_MIN = (44.0, 18.0, 8.0, 39.0, 23.0, 9.0)
PAPER_OTHER_VIEW_SAVINGS_MIN = 2.5
PAPER_MEAN_VIEW_COST = 2.31


@dataclass(frozen=True)
class UseCaseConfig:
    """Knobs for the synthetic use-case build.

    ``engine_mode`` selects the physical execution path of the relational
    engine ("auto"/"vector"/"iterator" — both return identical rows and
    meters, see :class:`repro.db.QueryEngine`); ``scaled`` builds a config
    whose universe holds ``factor`` times the default particle count,
    which the columnar path makes tractable.
    """

    universe: UniverseConfig = field(default_factory=UniverseConfig)
    seed: int = 20120827  # VLDB 2012 opening day
    halos_per_group: int = 5
    calibrate_minutes: float = 81.0
    mean_view_cost: float = PAPER_MEAN_VIEW_COST
    pricing: Ec2Pricing = field(default_factory=Ec2Pricing)
    engine_mode: str = "auto"

    @classmethod
    def scaled(cls, factor: int, engine_mode: str = "auto") -> "UseCaseConfig":
        """A config with ``factor``x the default universe's particles."""
        if factor < 1:
            raise GameConfigError(f"scale factor must be >= 1, got {factor}")
        base = UniverseConfig()
        universe = UniverseConfig(
            particles=base.particles * factor,
            halos=base.halos,
            snapshots=base.snapshots,
        )
        return cls(universe=universe, engine_mode=engine_mode)


@dataclass
class AstronomyUseCase:
    """Everything the Figure 1 experiment needs, in one object."""

    config: UseCaseConfig
    catalog: Catalog
    engine: QueryEngine
    snapshots: list
    table_names: list
    workloads: tuple
    runtimes_min: tuple
    view_costs: Mapping[str, float]
    savings_min: Mapping[tuple, float]
    pricing: Ec2Pricing

    @property
    def view_names(self) -> list[str]:
        """All 27 optimization (view) names, oldest snapshot first."""
        return [view_name_for(t) for t in self.table_names]

    @property
    def final_table(self) -> str:
        """The newest snapshot's table name."""
        return self.table_names[-1]

    def value_dollars(self, user: int, view_name: str) -> float:
        """Dollars one execution of ``user``'s workload saves via the view."""
        return self.pricing.compute_dollars(
            self.savings_min.get((user, view_name), 0.0)
        )

    def baseline_dollars(self, user: int) -> float:
        """Dollars one unoptimized execution of ``user``'s workload costs."""
        return self.pricing.compute_dollars(self.runtimes_min[user])

    def run_workload_minutes(self, user: int, with_views: Sequence[str] = ()) -> float:
        """Actually execute a workload with exactly the given views present.

        Used to verify the analytic savings; mutates the catalog's view set
        (creating or dropping views) to match ``with_views``.
        """
        wanted = set(with_views)
        unknown = wanted - set(self.view_names)
        if unknown:
            raise GameConfigError(f"unknown views: {sorted(unknown)}")
        for name in self.view_names:
            if name in wanted and not self.catalog.has_view(name):
                self.catalog.create_view(self._make_view(name))
            elif name not in wanted and self.catalog.has_view(name):
                self.catalog.drop_view(name)
        meter = self.workloads[user].run(self.engine, self.table_names)
        return self.engine.minutes_of(meter)

    def _make_view(self, view_name: str) -> MaterializedView:
        table_name = view_name.removeprefix("ph_")
        base = self.catalog.table(table_name)
        return MaterializedView(
            view_name,
            lambda: Project(
                Filter(SeqScan(base), Ne(Col("halo"), Const(-1))),
                ["pid", "halo"],
            ),
            depends_on=(table_name,),
        )


def build_use_case(config: UseCaseConfig = UseCaseConfig()) -> AstronomyUseCase:
    """Build the full use-case; see the module docstring for the steps."""
    snapshots = UniverseSimulator(config.universe, rng=config.seed).run()
    catalog = Catalog()
    table_names: list[str] = []
    for snapshot in snapshots:
        table = catalog.create_table(snapshot.to_table())
        table_names.append(table.name)

    workloads = _make_workloads(snapshots[-1], config.halos_per_group)
    engine = QueryEngine(catalog, CostModel(), mode=config.engine_mode)

    # Measure every workload without views; remember per-table pass counts.
    meters = [w.run(engine, table_names) for w in workloads]
    engine.recalibrate(config.calibrate_minutes * 60.0, meters[0])
    runtimes = tuple(engine.minutes_of(m) for m in meters)

    # Materialize all views once to size them, then price them.
    view_sizes: dict[str, int] = {}
    view_rows: dict[str, int] = {}
    for table_name in table_names:
        base = catalog.table(table_name)
        view = MaterializedView(
            view_name_for(table_name),
            lambda base=base: Project(
                Filter(SeqScan(base), Ne(Col("halo"), Const(-1))),
                ["pid", "halo"],
            ),
            depends_on=(table_name,),
        )
        view.refresh()
        view_sizes[view.name] = view.byte_size
        view_rows[view.name] = len(view.table)
    pricing = config.pricing.with_mean_view_cost(
        view_sizes.values(), config.mean_view_cost
    )
    view_costs = {
        name: pricing.view_dollars(size) for name, size in view_sizes.items()
    }

    # Analytic per-(user, view) savings from scan-pass counts.
    model = engine.cost_model
    savings: dict[tuple, float] = {}
    for user, meter in enumerate(meters):
        for table_name in table_names:
            passes = meter.counters.get(f"scan:{table_name}", 0.0)
            if passes == 0.0:
                continue
            base = catalog.table(table_name)
            vname = view_name_for(table_name)
            wide_bytes = len(base) * base.schema.row_width
            narrow_bytes = view_rows[vname] * 16  # (pid:int, halo:int)
            # The base path additionally pays one filter emit per clustered
            # row (the halo != -1 pre-filter the view absorbs); see
            # repro.db.planner._narrow_source for why this is exact.
            saved_units = passes * (
                (wide_bytes - narrow_bytes) * model.scan_byte_weight
                + view_rows[vname] * model.emit_weight
            )
            savings[(user, vname)] = saved_units * model.seconds_per_unit / 60.0

    return AstronomyUseCase(
        config=config,
        catalog=catalog,
        engine=engine,
        snapshots=snapshots,
        table_names=table_names,
        workloads=workloads,
        runtimes_min=runtimes,
        view_costs=view_costs,
        savings_min=savings,
        pricing=pricing,
    )


def _make_workloads(
    final_snapshot: ParticleSnapshot, halos_per_group: int
) -> tuple:
    """The six astronomers: two interleaved halo groups x strides 1/2/4."""
    labels, counts = np.unique(
        final_snapshot.halo[final_snapshot.halo >= 0], return_counts=True
    )
    if len(labels) < 2 * halos_per_group:
        raise GameConfigError(
            f"final snapshot has only {len(labels)} halos; need "
            f"{2 * halos_per_group} — increase particles or lower min_halo_members"
        )
    by_size = labels[np.argsort(-counts, kind="stable")]
    gamma_1 = tuple(int(h) for h in by_size[0 : 2 * halos_per_group : 2])
    gamma_2 = tuple(int(h) for h in by_size[1 : 2 * halos_per_group : 2])
    return (
        AstronomerWorkload("astro-1 (g1, every snapshot)", gamma_1, 1),
        AstronomerWorkload("astro-2 (g1, every 2nd)", gamma_1, 2),
        AstronomerWorkload("astro-3 (g1, every 4th)", gamma_1, 4),
        AstronomerWorkload("astro-4 (g2, every snapshot)", gamma_2, 1),
        AstronomerWorkload("astro-5 (g2, every 2nd)", gamma_2, 2),
        AstronomerWorkload("astro-6 (g2, every 4th)", gamma_2, 4),
    )
