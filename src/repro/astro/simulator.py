"""A laptop-scale universe simulator with halo drift, mergers, and churn.

This replaces the paper's 10-billion-particle N-body runs with the smallest
dynamic that still produces meaningful merger trees: particles are bound to
halo attractors; attractors drift through the box; nearby attractors merge
(the absorbed halo's particles re-bind to the survivor); a small fraction
of particles evaporates into the unclustered background or hops to another
halo each step. The interesting structure for the paper's workload — "which
earlier halo contributed most of this halo's particles" — emerges from the
merger events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.astro.halos import friends_of_friends
from repro.astro.particles import ParticleSnapshot
from repro.errors import GameConfigError
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["UniverseConfig", "UniverseSimulator"]


@dataclass(frozen=True)
class UniverseConfig:
    """Simulation parameters (defaults are tuned for sub-second runs)."""

    particles: int = 2400
    halos: int = 30
    snapshots: int = 27
    box_size: float = 200.0
    halo_scatter: float = 1.6
    drift_scale: float = 2.5
    merge_distance: float = 10.0
    merge_probability: float = 0.35
    evaporation_rate: float = 0.01
    hop_rate: float = 0.01
    linking_length: float = 2.4
    min_halo_members: int = 10

    def __post_init__(self) -> None:
        if self.particles < 1 or self.halos < 1 or self.snapshots < 1:
            raise GameConfigError("particles, halos and snapshots must be >= 1")
        if self.halos > self.particles:
            raise GameConfigError("cannot have more halos than particles")


class UniverseSimulator:
    """Evolves particles over snapshots; see the module docstring."""

    def __init__(self, config: UniverseConfig = UniverseConfig(), rng: RngLike = None):
        self.config = config
        self.rng = ensure_rng(rng)

    def run(self) -> list[ParticleSnapshot]:
        """Produce ``config.snapshots`` labeled snapshots, oldest first."""
        cfg = self.config
        rng = self.rng

        centers = rng.uniform(0.0, cfg.box_size, size=(cfg.halos, 3))
        alive = np.ones(cfg.halos, dtype=bool)
        pids = np.arange(cfg.particles)
        masses = rng.uniform(0.5, 2.0, size=cfg.particles)
        # Skewed initial assignment: a few big halos, many small ones.
        weights = rng.pareto(1.5, size=cfg.halos) + 0.5
        membership = rng.choice(cfg.halos, size=cfg.particles, p=weights / weights.sum())

        snapshots: list[ParticleSnapshot] = []
        for index in range(1, cfg.snapshots + 1):
            positions = self._positions(centers, membership, alive)
            velocities = rng.normal(0.0, 1.0, size=(cfg.particles, 3))
            detected = friends_of_friends(
                positions,
                linking_length=cfg.linking_length,
                min_members=cfg.min_halo_members,
            )
            snapshots.append(
                ParticleSnapshot(
                    index=index,
                    pids=pids.copy(),
                    positions=positions,
                    velocities=velocities,
                    masses=masses.copy(),
                    halo=detected,
                    true_halo=membership.copy(),
                )
            )
            if index < cfg.snapshots:
                centers, alive, membership = self._step(
                    centers, alive, membership
                )
        return snapshots

    # ----------------------------------------------------------- internals --

    def _positions(
        self, centers: np.ndarray, membership: np.ndarray, alive: np.ndarray
    ) -> np.ndarray:
        """Place every particle around its halo center (or the background)."""
        cfg = self.config
        rng = self.rng
        positions = rng.uniform(0.0, cfg.box_size, size=(cfg.particles, 3))
        bound = membership >= 0
        scatter = rng.normal(0.0, cfg.halo_scatter, size=(int(bound.sum()), 3))
        positions[bound] = centers[membership[bound]] + scatter
        return np.clip(positions, 0.0, cfg.box_size)

    def _step(
        self, centers: np.ndarray, alive: np.ndarray, membership: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Advance one snapshot: drift, maybe merge, churn particles."""
        cfg = self.config
        rng = self.rng

        centers = centers + rng.normal(0.0, cfg.drift_scale, size=centers.shape)
        centers = np.clip(centers, 0.0, cfg.box_size)

        if rng.uniform() < cfg.merge_probability and alive.sum() >= 2:
            centers, alive, membership = self._merge_closest(
                centers, alive, membership
            )

        membership = membership.copy()
        bound = np.flatnonzero(membership >= 0)
        if bound.size:
            evaporating = bound[rng.uniform(size=bound.size) < cfg.evaporation_rate]
            membership[evaporating] = -1
        bound = np.flatnonzero(membership >= 0)
        if bound.size and alive.any():
            hopping = bound[rng.uniform(size=bound.size) < cfg.hop_rate]
            live_ids = np.flatnonzero(alive)
            membership[hopping] = rng.choice(live_ids, size=hopping.size)
        return centers, alive, membership

    def _merge_closest(
        self, centers: np.ndarray, alive: np.ndarray, membership: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merge the closest live pair if within the merge distance."""
        cfg = self.config
        live = np.flatnonzero(alive)
        # All live pair distances in one shot; the original per-pair loop
        # kept the *last* pair attaining the minimum (ties tightened via
        # `<=`), so the vectorized pick mirrors that tie-break exactly.
        upper_a, upper_b = np.triu_indices(len(live), k=1)
        deltas = centers[live[upper_a]] - centers[live[upper_b]]
        distances = np.sqrt((deltas * deltas).sum(axis=1))
        eligible = distances <= cfg.merge_distance
        if not eligible.any():
            return centers, alive, membership
        candidates = np.flatnonzero(eligible)
        closest = distances[candidates]
        winner = candidates[len(closest) - 1 - np.argmin(closest[::-1])]
        a, b = int(live[upper_a[winner]]), int(live[upper_b[winner]])
        # The more populous halo survives.
        count_a = int(np.sum(membership == a))
        count_b = int(np.sum(membership == b))
        survivor, absorbed = (a, b) if count_a >= count_b else (b, a)
        membership = np.where(membership == absorbed, survivor, membership)
        alive = alive.copy()
        alive[absorbed] = False
        return centers, alive, membership
