"""Halo environment classification (paper Section 2's second use-case).

The astronomers' quote motivating the paper distinguishes "a Milky Way
mass galaxy that forms in relative isolation" from one "that forms near
many other galaxies (a rich, cluster-like environment)". This module
answers that query on the relational engine: compute halo centers and
masses from the particle table, then count neighboring halos within a
radius to classify each halo's environment.

It exercises the engine's aggregation operators (mass sums and centroid
averages per halo) and is priced like any other workload: the
``(pid, halo)`` view speeds up the membership pass here too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.db.catalog import Catalog
from repro.db.costmodel import CostMeter
from repro.db.expr import Col, Const, Ne
from repro.db.extra_operators import GroupAggregate
from repro.db.operators import Filter, SeqScan
from repro.errors import QueryError

__all__ = ["HaloSummary", "halo_summaries", "classify_environment"]


@dataclass(frozen=True)
class HaloSummary:
    """One halo's aggregate properties within a snapshot."""

    halo: int
    members: int
    mass: float
    center: tuple


def halo_summaries(
    catalog: Catalog, table_name: str, meter: CostMeter | None = None
) -> dict[int, HaloSummary]:
    """Aggregate every detected halo of one snapshot.

    One clustered-rows pass for the member counts and mass sums (via
    :class:`GroupAggregate`) plus one for the centroid components.
    """
    meter = meter if meter is not None else CostMeter()
    base = catalog.table(table_name)
    clustered = Filter(SeqScan(base), Ne(Col("halo"), Const(-1)))

    counts = dict(
        GroupAggregate(clustered, "halo", "pid", "count").execute(meter)
    )
    masses = dict(
        GroupAggregate(
            Filter(SeqScan(base), Ne(Col("halo"), Const(-1))),
            "halo",
            "mass",
            "sum",
        ).execute(meter)
    )
    centers: dict[int, list] = {}
    for axis in ("x", "y", "z"):
        axis_means = dict(
            GroupAggregate(
                Filter(SeqScan(base), Ne(Col("halo"), Const(-1))),
                "halo",
                axis,
                "avg",
            ).execute(meter)
        )
        for halo, mean in axis_means.items():
            centers.setdefault(halo, []).append(mean)

    return {
        halo: HaloSummary(
            halo=halo,
            members=counts[halo],
            mass=masses[halo],
            center=tuple(centers[halo]),
        )
        for halo in counts
    }


def classify_environment(
    summaries: Mapping[int, HaloSummary],
    radius: float,
    rich_threshold: int = 2,
) -> dict[int, str]:
    """Label each halo ``"isolated"`` or ``"rich"`` by neighbor count.

    A neighbor is another halo whose center lies within ``radius``; a halo
    with at least ``rich_threshold`` neighbors forms in a rich environment.
    """
    if radius <= 0:
        raise QueryError(f"radius must be positive, got {radius}")
    if rich_threshold < 1:
        raise QueryError(f"rich threshold must be >= 1, got {rich_threshold}")
    labels: dict[int, str] = {}
    items = list(summaries.values())
    radius_sq = radius * radius
    for summary in items:
        neighbors = 0
        for other in items:
            if other.halo == summary.halo:
                continue
            d = [a - b for a, b in zip(summary.center, other.center)]
            if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= radius_sq:
                neighbors += 1
        labels[summary.halo] = (
            "rich" if neighbors >= rich_threshold else "isolated"
        )
    return labels
