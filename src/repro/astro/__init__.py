"""The astronomy use-case substrate (paper Sections 2 and 7.2).

The paper's motivating workload traces the evolution of dark-matter halos
across 27 snapshots of a universe simulation, sped up by materialized
``(particleID, haloID)`` views. We cannot ship the UW astronomy dataset, so
this package synthesizes a laptop-scale equivalent that exercises the same
query path (DESIGN.md, substitutions):

* :mod:`~repro.astro.simulator` — an attractor-based particle simulator
  with halo drift, mergers, and particle churn across snapshots;
* :mod:`~repro.astro.halos` — a friends-of-friends halo finder (grid
  hashing + union-find) labeling each snapshot;
* :mod:`~repro.astro.workload` — the astronomers' two-part query workload
  (per-snapshot top contributors + recursive progenitor chains) executed
  on the :mod:`repro.db` engine;
* :mod:`~repro.astro.pricing` — EC2-style compute and view-storage rates
  back-derived from the paper's numbers;
* :mod:`~repro.astro.usecase` — assembles the six astronomers, the 27 view
  optimizations, their engine-measured values and costs, calibrated to the
  paper's published runtimes.
"""

from repro.astro.particles import ParticleSnapshot
from repro.astro.simulator import UniverseConfig, UniverseSimulator
from repro.astro.halos import friends_of_friends
from repro.astro.workload import AstronomerWorkload
from repro.astro.pricing import Ec2Pricing
from repro.astro.usecase import AstronomyUseCase, UseCaseConfig, build_use_case

__all__ = [
    "ParticleSnapshot",
    "UniverseConfig",
    "UniverseSimulator",
    "friends_of_friends",
    "AstronomerWorkload",
    "Ec2Pricing",
    "AstronomyUseCase",
    "UseCaseConfig",
    "build_use_case",
]
