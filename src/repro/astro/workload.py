"""The astronomers' query workload (paper Section 7.2).

Each astronomer starts from a subset of halos in the final snapshot and,
for each halo g, (a) computes the halo in *each* earlier snapshot
contributing the most particles to g, and (b) recursively traces the
progenitor chain. Different astronomers use every snapshot, every 2nd, or
every 4th — the paper's "faster, exploratory studies".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.costmodel import CostMeter
from repro.db.engine import QueryEngine
from repro.errors import GameConfigError

__all__ = ["AstronomerWorkload"]


@dataclass(frozen=True)
class AstronomerWorkload:
    """One astronomer: a halo subset in the final snapshot plus a stride.

    ``final_halos`` are detected halo labels in the final snapshot;
    ``stride`` selects every stride-th snapshot counting back from the
    final one (stride 1 = all snapshots).
    """

    name: str
    final_halos: tuple
    stride: int

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise GameConfigError(f"stride must be >= 1, got {self.stride}")
        if not self.final_halos:
            raise GameConfigError(f"workload {self.name!r} needs at least one halo")

    def snapshot_tables(self, all_tables_oldest_first: list[str]) -> list[str]:
        """The tables this workload touches, newest first."""
        reversed_tables = list(reversed(all_tables_oldest_first))
        return reversed_tables[:: self.stride]

    def run(
        self, engine: QueryEngine, all_tables_oldest_first: list[str]
    ) -> CostMeter:
        """Execute the full workload once; returns the combined meter."""
        tables = self.snapshot_tables(all_tables_oldest_first)
        if len(tables) < 2:
            raise GameConfigError(
                f"workload {self.name!r} needs at least two snapshots, got {len(tables)}"
            )
        final = tables[0]
        earlier = tables[1:]
        total = CostMeter()
        for halo in self.final_halos:
            _, meter_a = engine.contributors_to(final, halo, earlier)
            total.merge(meter_a)
            _, meter_b = engine.halo_chain(tables, halo)
            total.merge(meter_b)
        return total
