"""Index-or-view: a substitutable game priced from engine measurements.

Section 3 lists indexes alongside materialized views as optimizations, and
Section 6 motivates substitutability with exactly this pair: "a
materialized view may remove the need for a specific index". This module
builds that game from the astronomy substrate: for a chosen snapshot, the
cloud could build either

* the ``(pid, halo)`` **materialized view** (cheaper per *pass*: narrow
  sequential scans), or
* a **hash index on halo** (cheapest for membership probes, useless for
  the semi-join histograms),

and each astronomer is indifferent between them up to the smaller of the
two savings — the paper's substitutable valuation requires a single value
per user (``v_ij = v_ik = v_i``), so we take the conservative minimum and
document the simplification.

Savings are derived from the same pass-count accounting the use case
keeps: on the *final* snapshot every pass is a membership query (the
histograms only touch earlier snapshots), so the index saving per pass is
``scan_units - (probe + expected_members x emit)`` with expected members
estimated from the halo-count statistics (System-R uniformity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.astro.usecase import AstronomyUseCase
from repro.db.planner import view_name_for
from repro.errors import GameConfigError

__all__ = ["IndexOrViewGame", "build_index_or_view_game"]

#: Logical bytes per hash-index entry (key + row id) for storage pricing.
INDEX_ENTRY_BYTES = 16


@dataclass(frozen=True)
class IndexOrViewGame:
    """A priced substitutable game over one snapshot's two optimizations."""

    table_name: str
    costs: Mapping[str, float]
    values: Mapping[int, float]
    bids: Mapping[int, Mapping[str, float]]
    view_saving_min: Mapping[int, float]
    index_saving_min: Mapping[int, float]

    @property
    def view_id(self) -> str:
        """Optimization id of the materialized view."""
        return view_name_for(self.table_name)

    @property
    def index_id(self) -> str:
        """Optimization id of the hash index."""
        return f"ix_halo_{self.table_name}"


def build_index_or_view_game(
    use_case: AstronomyUseCase,
    snapshot_table: str | None = None,
    executions: int = 60,
) -> IndexOrViewGame:
    """Price the view-vs-index substitutable game for one snapshot.

    ``executions`` scales per-execution savings to a service period, as in
    Figure 1. Defaults to the final snapshot, where the game is most
    interesting (it carries the most passes).
    """
    if executions < 1:
        raise GameConfigError(f"executions must be >= 1, got {executions}")
    table_name = snapshot_table or use_case.final_table
    if table_name not in use_case.table_names:
        raise GameConfigError(f"unknown snapshot table {table_name!r}")

    model = use_case.engine.cost_model
    base = use_case.catalog.table(table_name)
    halo_column = np.asarray(base.column_values("halo"))
    clustered = int((halo_column >= 0).sum())
    halos = len({h for h in halo_column.tolist() if h >= 0})
    expected_members = clustered / max(halos, 1)

    wide_units = len(base) * base.schema.row_width * model.scan_byte_weight
    # Per membership pass: the view still scans; the index probes.
    view_pass_units = clustered * INDEX_ENTRY_BYTES * model.scan_byte_weight
    index_pass_units = model.probe_weight + expected_members * model.emit_weight
    # The base path additionally pays the clustered-row filter emits.
    base_pass_units = wide_units + clustered * model.emit_weight

    view_name = view_name_for(table_name)
    view_saving: dict[int, float] = {}
    index_saving: dict[int, float] = {}
    values: dict[int, float] = {}
    for user in range(len(use_case.workloads)):
        minutes_view = use_case.savings_min.get((user, view_name), 0.0)
        if minutes_view <= 0:
            continue
        # Back out the pass count from the recorded (exact) view saving.
        saved_units_per_pass = base_pass_units - view_pass_units
        passes = minutes_view * 60.0 / model.seconds_per_unit / saved_units_per_pass
        minutes_index = (
            passes
            * max(base_pass_units - index_pass_units, 0.0)
            * model.seconds_per_unit
            / 60.0
        )
        view_saving[user] = minutes_view
        index_saving[user] = minutes_index
        conservative = min(minutes_view, minutes_index)
        values[user] = executions * use_case.pricing.compute_dollars(conservative)

    index_cost = use_case.pricing.view_dollars(clustered * INDEX_ENTRY_BYTES)
    costs = {
        view_name: use_case.view_costs[view_name],
        f"ix_halo_{table_name}": index_cost,
    }
    bids = {
        user: {j: value for j in costs} for user, value in values.items()
    }
    return IndexOrViewGame(
        table_name=table_name,
        costs=costs,
        values=values,
        bids=bids,
        view_saving_min=view_saving,
        index_saving_min=index_saving,
    )
