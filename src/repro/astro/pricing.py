"""EC2-style pricing (paper Section 7.2).

The paper prices compute on an Amazon EC2 High-Memory Extra Large yearly
subscription and takes the money saved by faster queries as the
optimization value. Back-deriving from its numbers (44 saved minutes = 18
cents, 2.5 minutes = 1 cent) gives an effective compute rate of $0.25/hour;
view costs are storage on the same subscription, averaging $2.31/view/year.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import GameConfigError

__all__ = ["Ec2Pricing"]


@dataclass(frozen=True)
class Ec2Pricing:
    """Compute and storage rates.

    ``hourly_rate`` is in dollars per compute hour; ``storage_rate`` in
    dollars per logical byte per subscription period (normalize it with
    :meth:`with_mean_view_cost` rather than setting it directly).
    """

    hourly_rate: float = 0.25
    storage_rate: float = 1e-6

    def __post_init__(self) -> None:
        if self.hourly_rate <= 0:
            raise GameConfigError(f"hourly rate must be positive, got {self.hourly_rate}")
        if self.storage_rate <= 0:
            raise GameConfigError(
                f"storage rate must be positive, got {self.storage_rate}"
            )

    def compute_dollars(self, minutes: float) -> float:
        """Cost (= value, when saved) of ``minutes`` of compute."""
        return minutes / 60.0 * self.hourly_rate

    def view_dollars(self, byte_size: int) -> float:
        """Storage cost of keeping a view for the subscription period."""
        return byte_size * self.storage_rate

    def with_mean_view_cost(
        self, byte_sizes: Iterable[int], target_mean_dollars: float
    ) -> "Ec2Pricing":
        """Rescale storage so the given views average ``target_mean_dollars``.

        The paper reports the *average* per-view cost ($2.31); our synthetic
        views have different absolute sizes, so the rate is normalized to
        preserve that average while keeping relative size differences.
        """
        sizes = list(byte_sizes)
        if not sizes:
            raise GameConfigError("need at least one view size to normalize")
        mean_size = sum(sizes) / len(sizes)
        if mean_size <= 0:
            raise GameConfigError("view sizes must be positive to normalize")
        return Ec2Pricing(
            hourly_rate=self.hourly_rate,
            storage_rate=target_mean_dollars / mean_size,
        )
