"""Particle snapshot container and conversion to relational tables."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.schema import Schema
from repro.db.table import Table
from repro.errors import GameConfigError

__all__ = ["ParticleSnapshot", "SNAPSHOT_SCHEMA"]

#: The wide base-table schema: 9 columns x 8 bytes = 72 logical bytes/row,
#: against which the 16-byte (pid, halo) view is the paper's optimization.
SNAPSHOT_SCHEMA = Schema.of(
    pid="int",
    x="float",
    y="float",
    z="float",
    vx="float",
    vy="float",
    vz="float",
    mass="float",
    halo="int",
)


@dataclass
class ParticleSnapshot:
    """One simulation output: positions, velocities, masses, halo labels.

    ``halo`` holds the *detected* friends-of-friends label (-1 for
    unclustered particles); ``true_halo`` keeps the simulator's ground
    truth for testing the finder.
    """

    index: int
    pids: np.ndarray
    positions: np.ndarray
    velocities: np.ndarray
    masses: np.ndarray
    halo: np.ndarray
    true_halo: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.pids)
        if self.positions.shape != (n, 3):
            raise GameConfigError(
                f"positions must be ({n}, 3), got {self.positions.shape}"
            )
        if self.velocities.shape != (n, 3):
            raise GameConfigError(
                f"velocities must be ({n}, 3), got {self.velocities.shape}"
            )
        if len(self.masses) != n or len(self.halo) != n or len(self.true_halo) != n:
            raise GameConfigError("per-particle arrays must share one length")

    def __len__(self) -> int:
        return len(self.pids)

    @property
    def table_name(self) -> str:
        """Canonical base-table name, e.g. ``snap_07``."""
        return f"snap_{self.index:02d}"

    def clustered_fraction(self) -> float:
        """Fraction of particles with a detected halo."""
        if len(self) == 0:
            return 0.0
        return float(np.mean(self.halo >= 0))

    def to_table(self) -> Table:
        """Materialize the snapshot as a wide relational table.

        Uses the bulk columnar constructor: whole-column validation plus a
        single zip materializes a 40k-particle snapshot in milliseconds,
        with rows identical to per-row inserts of the same values.
        """
        return Table.from_columns(
            self.table_name,
            SNAPSHOT_SCHEMA,
            {
                "pid": np.asarray(self.pids),
                "x": self.positions[:, 0],
                "y": self.positions[:, 1],
                "z": self.positions[:, 2],
                "vx": self.velocities[:, 0],
                "vy": self.velocities[:, 1],
                "vz": self.velocities[:, 2],
                "mass": np.asarray(self.masses),
                "halo": np.asarray(self.halo),
            },
        )
