"""Friends-of-friends halo finding via grid hashing and union-find.

Two particles are friends when their distance is at most the linking
length; halos are the connected components of the friendship graph with at
least ``min_members`` particles. The grid hash (cell edge = linking length)
restricts pair tests to the 27 neighboring cells, keeping the finder
near-linear for clustered data.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import GameConfigError

__all__ = ["friends_of_friends"]


class _UnionFind:
    """Weighted quick-union with path compression."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))
        self.rank = [0] * size

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1


def friends_of_friends(
    positions: np.ndarray,
    linking_length: float,
    min_members: int = 1,
) -> np.ndarray:
    """Label clusters; returns one label per particle, -1 for unclustered.

    Labels are dense non-negative integers ordered by descending cluster
    size, so label 0 is always the most massive detected halo.
    """
    if linking_length <= 0:
        raise GameConfigError(f"linking length must be positive, got {linking_length}")
    if min_members < 1:
        raise GameConfigError(f"min_members must be >= 1, got {min_members}")
    n = len(positions)
    if n == 0:
        return np.empty(0, dtype=int)

    cells: dict[tuple[int, int, int], list[int]] = {}
    keys = np.floor(positions / linking_length).astype(int)
    for i in range(n):
        cells.setdefault(tuple(keys[i]), []).append(i)

    uf = _UnionFind(n)
    limit_sq = linking_length * linking_length
    offsets = list(itertools.product((-1, 0, 1), repeat=3))
    for cell, members in cells.items():
        candidate_lists = []
        for off in offsets:
            neighbor = (cell[0] + off[0], cell[1] + off[1], cell[2] + off[2])
            if neighbor >= cell:  # visit each cell pair once
                found = cells.get(neighbor)
                if found:
                    candidate_lists.append((neighbor == cell, found))
        for same_cell, others in candidate_lists:
            for idx_a, a in enumerate(members):
                start = idx_a + 1 if same_cell else 0
                pa = positions[a]
                for b in others[start:] if same_cell else others:
                    d = pa - positions[b]
                    if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= limit_sq:
                        uf.union(a, b)

    roots = np.fromiter((uf.find(i) for i in range(n)), dtype=int, count=n)
    unique_roots, counts = np.unique(roots, return_counts=True)
    keep = unique_roots[counts >= min_members]
    keep_counts = counts[counts >= min_members]
    order = np.argsort(-keep_counts, kind="stable")
    label_of = {int(root): lbl for lbl, root in enumerate(keep[order])}
    return np.fromiter(
        (label_of.get(int(r), -1) for r in roots), dtype=int, count=n
    )
