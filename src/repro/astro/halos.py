"""Friends-of-friends halo finding via grid hashing and union-find.

Two particles are friends when their distance is at most the linking
length; halos are the connected components of the friendship graph with at
least ``min_members`` particles. The grid hash (cell edge = linking length)
restricts pair tests to the 27 neighboring cells, keeping the finder
near-linear for clustered data.

:func:`friends_of_friends` is fully array-batched: occupied grid cells are
encoded into sortable integers, candidate pairs for all neighbor-cell
combinations are generated with ragged numpy indexing (no per-particle
Python loop), distances are tested in one vectorized pass per offset, and
the surviving edges are folded into connected components with an
array union-find (min-hooking plus pointer-jumping shortcuts). The
original per-particle implementation is kept as
:func:`friends_of_friends_reference`; the property tests assert both
produce the same partition.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import GameConfigError

__all__ = ["friends_of_friends", "friends_of_friends_reference"]

#: The 13 lexicographically-positive neighbor offsets: together with the
#: cell itself they cover each unordered neighbor-cell pair exactly once.
_HALF_OFFSETS = tuple(
    off for off in itertools.product((-1, 0, 1), repeat=3) if off > (0, 0, 0)
)

#: Cap on candidate pairs materialized at once by the vectorized finder
#: (~50M pairs = a few GB of transient arrays); denser grids fall back to
#: the O(n)-memory reference implementation.
_MAX_CANDIDATE_PAIRS = 5e7


def _validate(linking_length: float, min_members: int) -> None:
    if linking_length <= 0:
        raise GameConfigError(
            f"linking length must be positive, got {linking_length}"
        )
    if min_members < 1:
        raise GameConfigError(f"min_members must be >= 1, got {min_members}")


def _connected_roots(n: int, edges_a: np.ndarray, edges_b: np.ndarray) -> np.ndarray:
    """Component root (the minimum member index) per vertex.

    Array union-find: hook every edge's larger root onto the smaller via
    ``np.minimum.at``, then shortcut with pointer jumping until the parent
    map is idempotent; repeat until no edge spans two roots. Converges in
    O(log n) rounds and each round is a handful of vectorized passes.
    """
    parent = np.arange(n)
    while edges_a.size:
        root_a = parent[edges_a]
        root_b = parent[edges_b]
        unresolved = root_a != root_b
        if not unresolved.any():
            break
        # Edges whose endpoints already share a root never matter again;
        # dropping them keeps later rounds proportional to live work.
        edges_a = edges_a[unresolved]
        edges_b = edges_b[unresolved]
        root_a = root_a[unresolved]
        root_b = root_b[unresolved]
        np.minimum.at(parent, np.maximum(root_a, root_b), np.minimum(root_a, root_b))
        while True:
            jumped = parent[parent]
            if np.array_equal(jumped, parent):
                break
            parent = jumped
    return parent


def _cell_pairs(
    starts_a: np.ndarray,
    starts_b: np.ndarray,
    counts_a: np.ndarray,
    counts_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """All cross pairs (local slot in A, local slot in B) per matched cell.

    Returns positions into the cell-sorted particle order: for matched
    cell pair ``p``, every combination of A's ``counts_a[p]`` members with
    B's ``counts_b[p]`` members, generated with a ragged arange.
    """
    pair_counts = counts_a * counts_b
    total = int(pair_counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    offsets = np.cumsum(pair_counts) - pair_counts
    t = np.arange(total) - np.repeat(offsets, pair_counts)
    cb = np.repeat(counts_b, pair_counts)
    a_pos = np.repeat(starts_a, pair_counts) + t // cb
    b_pos = np.repeat(starts_b, pair_counts) + t % cb
    return a_pos, b_pos


def friends_of_friends(
    positions: np.ndarray,
    linking_length: float,
    min_members: int = 1,
) -> np.ndarray:
    """Label clusters; returns one label per particle, -1 for unclustered.

    Labels are dense non-negative integers ordered by descending cluster
    size (ties broken by the cluster's smallest particle index), so label
    0 is always the most massive detected halo.
    """
    _validate(linking_length, min_members)
    positions = np.asarray(positions, dtype=float)
    n = len(positions)
    if n == 0:
        return np.empty(0, dtype=int)

    keys = np.floor(positions / linking_length).astype(np.int64)
    # Shift into a padded box so neighbor-cell codes never wrap: with one
    # guard cell on every face, cell + offset stays inside [0, dims) and a
    # wrapped code can never collide with an occupied cell.
    keys -= keys.min(axis=0) - 1
    dims = keys.max(axis=0) + 2
    if float(dims[0]) * float(dims[1]) * float(dims[2]) >= float(2**62):
        # Degenerate spread (astronomically sparse boxes): the encoded
        # cell id would overflow int64 — fall back to the reference path.
        return friends_of_friends_reference(positions, linking_length, min_members)
    code = (keys[:, 0] * dims[1] + keys[:, 1]) * dims[2] + keys[:, 2]

    order = np.argsort(code, kind="stable")
    occupied, starts, counts = np.unique(
        code[order], return_index=True, return_counts=True
    )
    # sum(c^2) bounds the candidate-pair count of every offset (by
    # Cauchy-Schwarz), so it bounds the peak size of the vectorized pair
    # arrays. Degenerate linking lengths (one cell holding most of the
    # box) would materialize O(n^2) pairs at once — hand those to the
    # per-particle reference, which walks pairs in O(n) memory.
    if float((counts.astype(np.float64) ** 2).sum()) > _MAX_CANDIDATE_PAIRS:
        return friends_of_friends_reference(positions, linking_length, min_members)
    limit_sq = linking_length * linking_length

    # Cell-sorted per-axis coordinates: pair tests gather three contiguous
    # 1-D arrays instead of rows of the (n, 3) matrix, which is where the
    # bulk of the finder's time goes at scale.
    xs, ys, zs = (np.ascontiguousarray(positions[order, axis]) for axis in range(3))

    edge_chunks_a: list[np.ndarray] = []
    edge_chunks_b: list[np.ndarray] = []

    def collect(a_pos: np.ndarray, b_pos: np.ndarray) -> None:
        delta = xs[a_pos] - xs[b_pos]
        distance_sq = delta * delta
        delta = ys[a_pos] - ys[b_pos]
        distance_sq += delta * delta
        delta = zs[a_pos] - zs[b_pos]
        distance_sq += delta * delta
        within = distance_sq <= limit_sq
        edge_chunks_a.append(order[a_pos[within]])
        edge_chunks_b.append(order[b_pos[within]])

    # Same-cell pairs: the strict upper triangle of each cell's members.
    cells = np.arange(len(occupied))
    a_pos, b_pos = _cell_pairs(starts, starts, counts, counts)
    if a_pos.size:
        triangle = a_pos < b_pos
        collect(a_pos[triangle], b_pos[triangle])

    # Neighbor-cell pairs: one vectorized membership probe per offset.
    for off in _HALF_OFFSETS:
        delta_code = (off[0] * dims[1] + off[1]) * dims[2] + off[2]
        target = occupied + delta_code
        slot = np.searchsorted(occupied, target)
        slot_clipped = np.minimum(slot, len(occupied) - 1)
        found = cells[occupied[slot_clipped] == target]
        if found.size == 0:
            continue
        neighbor = slot[found]
        a_pos, b_pos = _cell_pairs(
            starts[found], starts[neighbor], counts[found], counts[neighbor]
        )
        if a_pos.size:
            collect(a_pos, b_pos)

    edges_a = (
        np.concatenate(edge_chunks_a) if edge_chunks_a else np.empty(0, dtype=np.int64)
    )
    edges_b = (
        np.concatenate(edge_chunks_b) if edge_chunks_b else np.empty(0, dtype=np.int64)
    )
    roots = _connected_roots(n, edges_a, edges_b)
    return _label_components(roots, min_members)


def _label_components(roots: np.ndarray, min_members: int) -> np.ndarray:
    """Dense labels ordered by (descending size, ascending root index)."""
    unique_roots, inverse, counts = np.unique(
        roots, return_inverse=True, return_counts=True
    )
    labels = np.full(len(unique_roots), -1, dtype=int)
    kept = np.flatnonzero(counts >= min_members)
    ranked = kept[np.argsort(-counts[kept], kind="stable")]
    labels[ranked] = np.arange(len(ranked))
    return labels[inverse]


def friends_of_friends_reference(
    positions: np.ndarray,
    linking_length: float,
    min_members: int = 1,
) -> np.ndarray:
    """The original per-particle finder, kept as the equivalence oracle.

    Produces the same partition as :func:`friends_of_friends`; label
    numbering can differ only between equal-sized clusters (the reference
    breaks size ties by union-find root, the vector path by smallest
    member index).
    """
    _validate(linking_length, min_members)
    positions = np.asarray(positions, dtype=float)
    n = len(positions)
    if n == 0:
        return np.empty(0, dtype=int)

    cells: dict[tuple[int, int, int], list[int]] = {}
    keys = np.floor(positions / linking_length).astype(int)
    for i in range(n):
        cells.setdefault(tuple(keys[i]), []).append(i)

    uf = _UnionFind(n)
    limit_sq = linking_length * linking_length
    offsets = list(itertools.product((-1, 0, 1), repeat=3))
    for cell, members in cells.items():
        candidate_lists = []
        for off in offsets:
            neighbor = (cell[0] + off[0], cell[1] + off[1], cell[2] + off[2])
            if neighbor >= cell:  # visit each cell pair once
                found = cells.get(neighbor)
                if found:
                    candidate_lists.append((neighbor == cell, found))
        for same_cell, others in candidate_lists:
            for idx_a, a in enumerate(members):
                start = idx_a + 1 if same_cell else 0
                pa = positions[a]
                for b in others[start:] if same_cell else others:
                    d = pa - positions[b]
                    if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= limit_sq:
                        uf.union(a, b)

    roots = np.fromiter((uf.find(i) for i in range(n)), dtype=int, count=n)
    unique_roots, counts = np.unique(roots, return_counts=True)
    keep = unique_roots[counts >= min_members]
    keep_counts = counts[counts >= min_members]
    order = np.argsort(-keep_counts, kind="stable")
    label_of = {int(root): lbl for lbl, root in enumerate(keep[order])}
    return np.fromiter(
        (label_of.get(int(r), -1) for r in roots), dtype=int, count=n
    )


class _UnionFind:
    """Weighted quick-union with path compression (reference finder only)."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))
        self.rank = [0] * size

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
