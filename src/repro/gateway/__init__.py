"""The unified tenant gateway: one versioned API over every subsystem.

The repo's subsystems — the core mechanisms, the fleet engine, the
relational query engine, the optimization advisor — each grew their own
entry point. This package is the single stable surface in front of all of
them:

* :mod:`repro.gateway.envelopes` — typed, JSON-round-trippable request
  and reply envelopes (``SubmitBids``, ``RunQuery``, ``AdviseRequest``,
  ``LedgerQuery``, ``ReviseBid``, ``AdvanceSlots``, ``Configure``, and
  ``ErrorReply`` with structured codes mapped from the
  :class:`~repro.errors.ReproError` hierarchy), versioned by
  :data:`API_VERSION`.
* :mod:`repro.gateway.codec` — ``to_dict``/``from_dict`` wire codecs for
  every public value object (:class:`~repro.core.outcome.ShapleyResult`,
  the four mechanism outcomes, :class:`~repro.fleet.engine.FleetReport`,
  :class:`~repro.db.savings.SavingsQuote`,
  :class:`~repro.db.engine.QueryResult`).
* :mod:`repro.gateway.service` — the :class:`PricingService` facade:
  ``dispatch(request_or_batch) -> reply(s)`` over one
  fleet engine, one relational catalog, one advisor; per-tenant
  :class:`TenantSession` handles; the batched columnar hot path
  preserved bit-for-bit through the boundary.
* :mod:`repro.gateway.trace` — JSONL request traces and the ``replay``
  driver behind the ``python -m repro replay`` command.
* :mod:`repro.gateway.server` / :mod:`repro.gateway.client` — the
  asyncio HTTP serving layer behind ``python -m repro serve`` (admission
  control, deadlines, group commit, graceful drain) and its blocking
  retry-aware client.

``to_dict``/``from_dict`` at this package level dispatch over both
worlds: envelopes (``"kind"``-tagged) and value objects
(``"type"``-tagged).
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ProtocolError
from repro.gateway import codec as _codec
from repro.gateway import envelopes as _envelopes
from repro.gateway.envelopes import (
    API_VERSION,
    AdvanceSlots,
    AdviseReply,
    AdviseRequest,
    BidsReply,
    ConfigReply,
    Configure,
    ERROR_CODES,
    ErrorReply,
    LedgerQuery,
    LedgerReply,
    MetricsReply,
    MetricsRequest,
    QueryReply,
    Reply,
    Request,
    ReviseBid,
    ReviseReply,
    RunQuery,
    SlotReply,
    SubmitBids,
    error_code,
    request_from_dict,
    reply_from_dict,
)
from repro.gateway.client import GatewayClient, GatewayUnavailable
from repro.gateway.envelopes import RETRYABLE_CODES
from repro.gateway.server import GatewayServer, ServerConfig, ServerThread
from repro.gateway.service import BulkAcks, PricingService, TenantSession
from repro.gateway.trace import (
    ReplayResult,
    iter_trace,
    replay,
    replay_path,
    write_trace,
)

__all__ = [
    "API_VERSION",
    "to_dict",
    "from_dict",
    # envelopes
    "Request",
    "Reply",
    "Configure",
    "SubmitBids",
    "ReviseBid",
    "AdvanceSlots",
    "RunQuery",
    "AdviseRequest",
    "LedgerQuery",
    "MetricsRequest",
    "ConfigReply",
    "BidsReply",
    "ReviseReply",
    "SlotReply",
    "QueryReply",
    "AdviseReply",
    "LedgerReply",
    "MetricsReply",
    "ErrorReply",
    "ERROR_CODES",
    "RETRYABLE_CODES",
    "error_code",
    "request_from_dict",
    "reply_from_dict",
    # facade
    "PricingService",
    "TenantSession",
    "BulkAcks",
    # traces
    "ReplayResult",
    "write_trace",
    "iter_trace",
    "replay",
    "replay_path",
    # serving layer
    "GatewayServer",
    "ServerConfig",
    "ServerThread",
    "GatewayClient",
    "GatewayUnavailable",
]


def to_dict(obj) -> dict:
    """Serialize an envelope or a public value object to a JSON-able dict."""
    if isinstance(obj, (Request, Reply)):
        return _envelopes.to_dict(obj)
    return _codec.encode(obj)


def from_dict(d):
    """Inverse of :func:`to_dict`: reconstruct an envelope or value object."""
    if isinstance(d, Mapping):
        # "type" wins: value objects may carry a "kind" *field* (e.g. a
        # SavingsQuote's index kind), but only envelopes are kind-tagged.
        if "type" in d:
            return _codec.decode(dict(d))
        if "kind" in d:
            return _envelopes.envelope_from_dict(d)
    raise ProtocolError(
        "expected a dict with a 'kind' (envelope) or 'type' (value object) tag"
    )
