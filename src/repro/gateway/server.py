"""Fault-tolerant asyncio serving layer for the pricing gateway.

:class:`GatewayServer` exposes :class:`~repro.gateway.PricingService`
over a handwritten HTTP/1.1 JSON protocol (stdlib ``asyncio`` only — no
third-party web framework), one small curl-able endpoint per resource::

    POST /v1/bids     SubmitBids | ReviseBid
    POST /v1/slots    Configure | AdvanceSlots
    POST /v1/query    RunQuery
    POST /v1/advise   AdviseRequest
    POST /v1/ledger   LedgerQuery
    POST /v1/metrics  MetricsRequest
    GET  /v1/healthz  liveness + serving counters (never sheds)
    GET  /v1/metrics  Prometheus text exposition of repro.obs (never sheds)

The robustness machinery is the point, not an afterthought:

- **Admission control.** At most ``max_pending`` envelopes may be
  queued-or-in-flight overall and ``tenant_pending`` per tenant (the
  fair-share bound: one chatty tenant cannot starve the rest). Beyond
  either bound the request is shed *immediately* with a typed
  ``overloaded`` :class:`ErrorReply` carrying ``retry_after`` — never
  queued unboundedly, never a hung connection.
- **Deadlines.** A request may carry an ``X-Repro-Deadline`` header
  (seconds it is willing to wait). Expired work is cancelled *before*
  it reaches the pricing core and answered with ``deadline_exceeded``.
  Work that already entered a write batch replies late with the real
  result instead — both deadline codes are retryable, so lying about
  committed work would invite a client retry and a double-submit.
- **Group commit.** Concurrently arriving envelopes are batched into
  one batched ``dispatch`` call — on a durable service one WAL record and
  one fsync for the whole batch — with ``max_delay`` bounding how long
  an envelope may wait for co-travellers. This is what keeps
  fsyncs/request below 1 under concurrency (``benchmarks/bench_server.py``
  gates it).
- **Graceful drain.** :meth:`GatewayServer.drain` (wired to SIGTERM by
  :func:`serve`) stops accepting, answers stragglers ``overloaded``,
  lets queued work finish, checkpoints a durable service, and closes.
  An *abrupt* death (:meth:`GatewayServer.abort`, or a real kill -9) is
  also safe: every WAL record is fsync'd before its effects apply, so
  ``PricingService.recover`` resumes bit-identical.

Malformed input never raises out of the connection handler: undecodable
envelopes come back as ``protocol``-coded replies exactly as
``PricingService.dispatch_json`` would produce, a half-sent request
(mid-body disconnect) is discarded without side effects, and a
slow-loris read is cut off by ``read_timeout`` with a
``deadline_exceeded`` reply. ``tests/netfaults.py`` injects each of
these faults deterministically and ``tests/test_netfaults.py`` proves
service state stays bit-identical to a serial run regardless.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
from dataclasses import dataclass

from repro import obs
from repro.errors import GameConfigError
from repro.gateway.envelopes import ErrorReply, request_from_dict, to_dict

__all__ = [
    "ROUTES",
    "HEALTH_PATH",
    "METRICS_PATH",
    "DEADLINE_HEADER",
    "HTTP_STATUS",
    "path_for_kind",
    "ServerConfig",
    "GatewayServer",
    "ServerThread",
    "serve",
]

#: Resource path -> request kinds it accepts (all via POST).
ROUTES = {
    "/v1/bids": ("SubmitBids", "ReviseBid"),
    "/v1/slots": ("Configure", "AdvanceSlots"),
    "/v1/query": ("RunQuery",),
    "/v1/advise": ("AdviseRequest",),
    "/v1/ledger": ("LedgerQuery",),
    "/v1/metrics": ("MetricsRequest",),
}

HEALTH_PATH = "/v1/healthz"

#: GET here answers with the Prometheus text exposition of
#: :data:`repro.obs.REGISTRY` (POST dispatches a MetricsRequest).
METRICS_PATH = "/v1/metrics"

#: Request header naming the seconds a caller will wait (lower-cased).
DEADLINE_HEADER = "x-repro-deadline"

#: Structured error code -> HTTP status. Client-caused rejections are
#: 4xx, state conflicts 409, service-side failures 5xx; ``overloaded``
#: is the classic 429 and ``deadline_exceeded`` a 504 (the gateway gave
#: up on the caller's behalf).
HTTP_STATUS = {
    "overloaded": 429,
    "deadline_exceeded": 504,
    "protocol": 400,
    "version": 400,
    "bid": 400,
    "schema": 400,
    "query": 400,
    "revision": 409,
    "mechanism": 409,
    "game-config": 409,
    "recovery": 500,
    "internal": 500,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}

_MAX_LINE = 8192
_MAX_HEADERS = 100
_MAX_BODY = 8 * 1024 * 1024

# Serving-layer instrumentation (repro.obs). Endpoint labels come from
# the closed ROUTES table (plus the two GET paths) and shed codes from
# the two admission verdicts — bounded cardinality by construction.
_REQUESTS_TOTAL = obs.REGISTRY.counter(
    "repro_server_requests_total",
    "HTTP requests received, per known endpoint.",
    ("endpoint",),
)
_REQUEST_SECONDS = obs.REGISTRY.histogram(
    "repro_server_request_seconds",
    "Wall time from parsed request to response written, per endpoint.",
    ("endpoint",),
)
_PENDING_GAUGE = obs.REGISTRY.gauge(
    "repro_server_pending",
    "Envelopes queued or in flight (the admission gauge).",
)
_SHEDS_TOTAL = obs.REGISTRY.counter(
    "repro_server_sheds_total",
    "Typed sheds, per error code.",
    ("code",),
)
_BATCH_SIZE = obs.REGISTRY.histogram(
    "repro_server_batch_size",
    "Live envelopes per group-commit dispatch batch.",
    buckets=tuple(float(2**k) for k in range(10)),
)
_FSYNCS_PER_REQUEST = obs.REGISTRY.gauge(
    "repro_server_fsyncs_per_request",
    "WAL fsyncs divided by dispatched envelopes (group-commit dividend).",
)

_KIND_TO_PATH = {
    kind: path for path, kinds in ROUTES.items() for kind in kinds
}


def path_for_kind(kind: str) -> str:
    """The resource endpoint serving one request kind (client side)."""
    try:
        return _KIND_TO_PATH[kind]
    except KeyError:
        raise GameConfigError(
            f"no endpoint serves request kind {kind!r}"
        ) from None


@dataclass
class ServerConfig:
    """Knobs for one :class:`GatewayServer` (all have safe defaults).

    ``port=0`` binds an ephemeral port — tests and benchmarks read the
    real one back from :attr:`GatewayServer.address`.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_pending: int = 64  # global admission bound (queued + in flight)
    tenant_pending: int = 16  # per-tenant fair-share bound
    max_batch: int = 32  # flush a write batch at this size
    max_delay: float = 0.002  # seconds an envelope may wait to batch
    read_timeout: float = 5.0  # slow-loris guard on request reads
    retry_after: float = 0.05  # hint carried by overloaded replies


class _TornRequest(Exception):
    """The peer vanished mid-request: nothing arrived, nothing happens."""


class _BadRequest(Exception):
    """The bytes are not HTTP we accept; answered 400 then closed."""


class _Entry:
    """One admitted envelope waiting in the group-commit queue."""

    __slots__ = ("request", "kind", "future", "deadline", "claimed")

    def __init__(self, request, kind, future, deadline):
        self.request = request
        self.kind = kind
        self.future = future
        self.deadline = deadline  # loop-clock instant, or None
        self.claimed = False  # True once committed to a dispatch batch


class GatewayServer:
    """The asyncio serving loop around one :class:`PricingService`.

    All dispatch happens on the event-loop thread (the service is not
    thread-safe); concurrency between callers is converted into batch
    size, not data races. ``stall_hook`` is the fault-injection seam: an
    async callable awaited with each batch's requests just before
    dispatch — tests stall or kill it to prove cancelled work never
    reaches the fleet.
    """

    def __init__(self, service, config: ServerConfig | None = None, *, stall_hook=None):
        self.service = service
        self.config = config or ServerConfig()
        self.stall_hook = stall_hook
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.Server | None = None
        self._address: tuple[str, int] | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._queue: list[_Entry] = []
        self._flush_task: asyncio.Task | None = None
        self._flush_lock: asyncio.Lock | None = None
        self._pending = 0
        self._tenant_pending: dict = {}
        self._draining = False
        self._started: float | None = None  # loop-clock instant of start()
        self.dispatched = 0  # envelopes that reached the service
        self.shed = 0  # envelopes rejected (overloaded or expired)
        self.batches = 0  # batched dispatch calls (group commits)

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (after :meth:`start`)."""
        if self._address is None:
            raise GameConfigError("the server has not been started")
        return self._address

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._loop = asyncio.get_running_loop()
        self._started = self._loop.time()
        self._flush_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self._address = sock.getsockname()[:2]
        return self._address

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish queued work,
        checkpoint a durable service, close every connection."""
        self._draining = True
        if self._server is not None:
            self._server.close()
        while self._queue or self._pending or self._flush_task is not None:
            await asyncio.sleep(0.001)
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        try:
            self.service.checkpoint()
        except GameConfigError:
            pass  # not durable; nothing to persist

    def abort(self) -> None:
        """Abrupt death (kill -9 stand-in): drop the listener and every
        connection mid-flight. Safe by construction — durability lives
        in the WAL fsync, not in orderly shutdown."""
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()

    # ------------------------------------------------------- connections --

    async def _on_connection(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, _TornRequest):
            pass  # peer vanished; whatever was half-read never happened
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def _serve_connection(self, reader, writer) -> None:
        while True:
            progress = {"started": False}
            try:
                async with asyncio.timeout(self.config.read_timeout):
                    parsed = await self._read_request(reader, progress)
            except TimeoutError:
                # Slow-loris: the peer is dribbling (or idling). An idle
                # keep-alive gets a quiet close; a half-sent request a
                # typed timeout so the client knows nothing happened.
                dribbling = progress["started"] or bool(
                    getattr(reader, "_buffer", b"")  # half a request line
                )
                if dribbling and not reader.at_eof():
                    await self._respond_error(
                        writer,
                        code="deadline_exceeded",
                        message="request not received within "
                        f"{self.config.read_timeout}s",
                        status=408,
                        keep_alive=False,
                    )
                return
            except _BadRequest as exc:
                await self._respond_error(
                    writer,
                    code="protocol",
                    message=str(exc),
                    status=400,
                    keep_alive=False,
                )
                return
            if parsed is None:
                return  # clean EOF between requests
            method, path, headers, body = parsed
            keep_alive = headers.get("connection", "").lower() != "close"
            if self._draining:
                keep_alive = False
            if path == HEALTH_PATH:
                _REQUESTS_TOTAL.labels(endpoint=HEALTH_PATH).inc()
                await self._write_response(
                    writer, 200, self._health(), keep_alive=keep_alive
                )
            elif path == METRICS_PATH and method != "POST":
                # The scrape path: GET answers text exposition outside
                # admission control (a monitoring probe must not shed);
                # POST falls through to the MetricsRequest envelope.
                _REQUESTS_TOTAL.labels(endpoint=METRICS_PATH).inc()
                await self._write_text(
                    writer, 200, obs.render(), keep_alive=keep_alive
                )
            else:
                keep_alive = await self._handle_api(
                    writer, method, path, headers, body, keep_alive
                )
            if not keep_alive:
                return

    async def _read_request(self, reader, progress):
        """One HTTP/1.1 request -> ``(method, path, headers, body)``.

        ``None`` on clean EOF before any byte; :class:`_TornRequest`
        when the peer disconnects mid-request (the request must not
        happen); :class:`_BadRequest` for bytes we refuse to parse.
        ``progress`` is mutated so the slow-loris guard can tell a
        half-sent request from an idle keep-alive after a timeout.
        """
        line = await reader.readline()
        if not line:
            return None
        progress["started"] = True
        if not line.endswith(b"\n"):
            if len(line) >= _MAX_LINE:
                raise _BadRequest("request line too long")
            raise _TornRequest
        try:
            method, path, version = line.decode("latin-1").split()
        except ValueError:
            raise _BadRequest("malformed request line") from None
        if not version.startswith("HTTP/1."):
            raise _BadRequest(f"unsupported protocol {version}")
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line:
                raise _TornRequest
            if not line.endswith(b"\n"):
                raise _TornRequest
            if line in (b"\r\n", b"\n"):
                break
            if len(headers) >= _MAX_HEADERS or len(line) > _MAX_LINE:
                raise _BadRequest("too many or too large headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest("malformed header line")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", 0))
        except ValueError:
            raise _BadRequest("malformed Content-Length") from None
        if length < 0 or length > _MAX_BODY:
            raise _BadRequest(f"unacceptable Content-Length {length}")
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _TornRequest from None
        return method, path, headers, body

    # --------------------------------------------------------- dispatch --

    async def _handle_api(
        self, writer, method, path, headers, body, keep_alive
    ) -> bool:
        kinds = ROUTES.get(path)
        if kinds is None:
            await self._respond_error(
                writer,
                code="protocol",
                message=f"unknown path {path!r}",
                status=404,
                keep_alive=keep_alive,
            )
            return keep_alive
        _REQUESTS_TOTAL.labels(endpoint=path).inc()
        with _REQUEST_SECONDS.labels(endpoint=path).time():
            return await self._dispatch_api(
                writer, method, path, headers, body, keep_alive, kinds
            )

    async def _dispatch_api(
        self, writer, method, path, headers, body, keep_alive, kinds
    ) -> bool:
        if method != "POST":
            await self._respond_error(
                writer,
                code="protocol",
                message=f"{path} accepts POST, not {method}",
                status=405,
                keep_alive=keep_alive,
            )
            return keep_alive
        try:
            payload = json.loads(body)
        except ValueError:
            await self._respond_error(
                writer,
                code="protocol",
                message="request body is not valid JSON",
                status=400,
                keep_alive=keep_alive,
            )
            return keep_alive
        kind = payload.get("kind") if isinstance(payload, dict) else None
        if kind not in kinds:
            await self._respond_error(
                writer,
                code="protocol",
                message=f"{path} serves {list(kinds)}, not {kind!r}",
                status=400,
                keep_alive=keep_alive,
                request_kind=str(kind or ""),
            )
            return keep_alive
        try:
            request = request_from_dict(payload)
        except Exception as exc:  # total like dispatch_json: data, not a raise
            reply = to_dict(ErrorReply.of(exc, request_kind=str(kind)))
            await self._write_response(
                writer, _status_of(reply), reply, keep_alive=keep_alive
            )
            return keep_alive
        deadline, error = self._parse_deadline(headers)
        if error is not None:
            await self._respond_error(
                writer,
                code="protocol",
                message=error,
                status=400,
                keep_alive=keep_alive,
                request_kind=kind,
            )
            return keep_alive
        reply = await self._admit_and_dispatch(request, kind, deadline)
        status = _status_of(reply)
        if status == 429:
            keep_alive = keep_alive and not self._draining
        await self._write_response(
            writer, status, reply, keep_alive=keep_alive
        )
        return keep_alive

    def _parse_deadline(self, headers):
        raw = headers.get(DEADLINE_HEADER)
        if raw is None:
            return None, None
        try:
            seconds = float(raw)
        except ValueError:
            return None, f"malformed {DEADLINE_HEADER} header {raw!r}"
        if seconds <= 0:
            return None, f"{DEADLINE_HEADER} must be positive, got {raw!r}"
        return self._loop.time() + seconds, None

    def _overloaded(self, kind: str, message: str) -> dict:
        self.shed += 1
        _SHEDS_TOTAL.labels(code="overloaded").inc()
        return to_dict(
            ErrorReply(
                code="overloaded",
                message=message,
                request_kind=kind,
                retry_after=self.config.retry_after,
            )
        )

    def _deadline_reply(self, kind: str) -> dict:
        self.shed += 1
        _SHEDS_TOTAL.labels(code="deadline_exceeded").inc()
        return to_dict(
            ErrorReply(
                code="deadline_exceeded",
                message="deadline expired before dispatch; the request "
                "was cancelled and had no effect",
                request_kind=kind,
            )
        )

    async def _admit_and_dispatch(self, request, kind, deadline) -> dict:
        if self._draining:
            return self._overloaded(kind, "the server is draining")
        if self._pending >= self.config.max_pending:
            return self._overloaded(
                kind, f"{self._pending} requests already pending"
            )
        tenant = getattr(request, "tenant", None)
        if self._tenant_pending.get(tenant, 0) >= self.config.tenant_pending:
            return self._overloaded(
                kind,
                f"tenant {tenant!r} already has "
                f"{self._tenant_pending[tenant]} requests pending",
            )
        entry = _Entry(request, kind, self._loop.create_future(), deadline)
        self._pending += 1
        _PENDING_GAUGE.set(self._pending)
        self._tenant_pending[tenant] = self._tenant_pending.get(tenant, 0) + 1
        entry.future.add_done_callback(lambda _f: self._release(tenant))
        self._queue.append(entry)
        if len(self._queue) >= self.config.max_batch:
            self._schedule_flush(now=True)
        elif self._flush_task is None:
            self._flush_task = self._loop.create_task(self._delayed_flush())
        return await self._await_entry(entry)

    def _release(self, tenant) -> None:
        self._pending -= 1
        _PENDING_GAUGE.set(self._pending)
        remaining = self._tenant_pending.get(tenant, 1) - 1
        if remaining <= 0:
            self._tenant_pending.pop(tenant, None)
        else:
            self._tenant_pending[tenant] = remaining

    async def _await_entry(self, entry: _Entry) -> dict:
        try:
            async with asyncio.timeout_at(entry.deadline):
                return await asyncio.shield(entry.future)
        except TimeoutError:
            # Not yet claimed by a batch: cancel before the fleet sees
            # it. Already claimed: the effect is (or is about to be)
            # durable, so wait and reply late with the truth.
            if not entry.claimed and not entry.future.done():
                entry.future.set_result(self._deadline_reply(entry.kind))
            return await entry.future

    def _schedule_flush(self, *, now: bool = False) -> None:
        if now and self._flush_task is not None:
            self._flush_task.cancel()
            self._flush_task = None
        if self._flush_task is None:
            coro = self._flush() if now else self._delayed_flush()
            self._flush_task = self._loop.create_task(coro)

    async def _delayed_flush(self) -> None:
        await asyncio.sleep(self.config.max_delay)
        await self._flush()

    async def _flush(self) -> None:
        self._flush_task = None
        async with self._flush_lock:
            batch, self._queue = self._queue, []
            now = self._loop.time()
            live: list[_Entry] = []
            for entry in batch:
                if entry.future.done():
                    continue  # deadline waiter already answered it
                if entry.deadline is not None and now >= entry.deadline:
                    entry.future.set_result(self._deadline_reply(entry.kind))
                    continue
                live.append(entry)
            if self.stall_hook is not None and live:
                await self.stall_hook([entry.request for entry in live])
                live = [e for e in live if not e.future.done()]
            if not live:
                return
            for entry in live:
                entry.claimed = True
            self.batches += 1
            _BATCH_SIZE.observe(len(live))
            try:
                replies = self.service.dispatch(
                    [entry.request for entry in live]
                )
                results = [to_dict(reply) for reply in replies]
            except Exception as exc:  # WAL I/O and friends: typed, per entry
                results = [
                    to_dict(ErrorReply.of(exc, request_kind=entry.kind))
                    for entry in live
                ]
            self.dispatched += len(live)
            wal = getattr(self.service, "_wal", None)
            if wal is not None and self.dispatched:
                _FSYNCS_PER_REQUEST.set(wal.fsyncs / self.dispatched)
            for entry, result in zip(live, results):
                if not entry.future.done():
                    entry.future.set_result(result)

    # --------------------------------------------------------- responses --

    def _health(self) -> dict:
        from repro import __version__  # deferred: repro imports gateway

        wal = getattr(self.service, "_wal", None)
        uptime = 0.0
        if self._loop is not None and self._started is not None:
            uptime = self._loop.time() - self._started
        return {
            "status": "draining" if self._draining else "ok",
            "version": __version__,
            "uptime_s": round(uptime, 6),
            "workers": getattr(self.service.fleet, "workers", 0),
            "pending": self._pending,
            "dispatched": self.dispatched,
            "shed": self.shed,
            "batches": self.batches,
            "fsyncs": getattr(wal, "fsyncs", 0),
            "wal_seq": getattr(wal, "last_seq", 0),
            "epoch": self.service.db.epoch,
        }

    async def _respond_error(
        self, writer, *, code, message, status, keep_alive, request_kind=""
    ) -> None:
        reply = to_dict(
            ErrorReply(code=code, message=message, request_kind=request_kind)
        )
        await self._write_response(
            writer, status, reply, keep_alive=keep_alive
        )

    async def _write_text(
        self, writer, status: int, text: str, *, keep_alive: bool
    ) -> None:
        body = text.encode()
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: text/plain; version=0.0.4; charset=utf-8",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        writer.write("\r\n".join(head).encode() + b"\r\n\r\n" + body)
        await writer.drain()

    async def _write_response(
        self, writer, status: int, payload: dict, *, keep_alive: bool
    ) -> None:
        body = json.dumps(payload).encode()
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        retry_after = payload.get("retry_after")
        if payload.get("code") == "overloaded" and retry_after:
            head.append(f"Retry-After: {retry_after}")
        writer.write("\r\n".join(head).encode() + b"\r\n\r\n" + body)
        await writer.drain()


def _status_of(reply: dict) -> int:
    if reply.get("kind") != "ErrorReply":
        return 200
    return HTTP_STATUS.get(reply.get("code"), 500)


class ServerThread:
    """A :class:`GatewayServer` on a private loop in a daemon thread.

    The blocking-world harness for tests, benchmarks, and the client:
    ``start()`` returns the bound address, ``stop()`` drains gracefully,
    ``kill()`` dies abruptly (the kill-9 stand-in — no drain, no
    checkpoint; recovery must cope, and does).
    """

    def __init__(self, service, config: ServerConfig | None = None, *, stall_hook=None):
        self.server = GatewayServer(service, config, stall_hook=stall_hook)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> tuple[str, int]:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="gateway-server", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            self.server.start(), self._loop
        )
        return future.result(timeout=10)

    def stop(self) -> None:
        """Graceful: drain (checkpointing a durable service), then exit.
        Idempotent — stopping a stopped thread is a no-op."""
        if self._loop is None or self._loop.is_closed():
            return
        asyncio.run_coroutine_threadsafe(
            self.server.drain(), self._loop
        ).result(timeout=30)
        self._shutdown()

    def kill(self) -> None:
        """Abrupt: connections reset, no drain, no checkpoint."""
        if self._loop is None or self._loop.is_closed():
            return
        self._loop.call_soon_threadsafe(self.server.abort)
        self._shutdown()

    def _shutdown(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        tasks = asyncio.all_tasks(self._loop)
        for task in tasks:
            task.cancel()
        if tasks:
            self._loop.run_until_complete(
                asyncio.gather(*tasks, return_exceptions=True)
            )
        self._loop.run_until_complete(self._loop.shutdown_asyncgens())
        self._loop.close()


async def serve(
    service, config: ServerConfig | None = None, *, ready=None
) -> GatewayServer:
    """Run a server until SIGTERM/SIGINT, then drain; the CLI entry.

    ``ready`` (optional callable) receives the bound ``(host, port)``
    once accepting — the CLI prints it, tests latch it.
    """
    server = GatewayServer(service, config)
    address = await server.start()
    if ready is not None:
        ready(address)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    try:
        await stop.wait()
    finally:
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.remove_signal_handler(sig)
    await server.drain()
    return server
