"""Wire codec for the public value objects.

Every value object the gateway can hand a tenant — :class:`ShapleyResult`,
the four mechanism outcomes, :class:`FleetReport`, :class:`SavingsQuote`,
:class:`QueryResult` — round-trips through plain JSON-able dictionaries:
``from_dict(to_dict(x)) == x`` holds exactly, including after a real
``json.dumps``/``json.loads`` hop (property-tested in
``tests/test_gateway.py``). The encoding is versioned with the envelope
protocol (:data:`repro.gateway.envelopes.API_VERSION`); every encoded
object carries a ``"type"`` tag naming its class.

Python values that JSON cannot represent natively travel tagged:

========== =====================================
tuple      ``{"tuple": [items...]}``
frozenset  ``{"frozenset": [items...]}`` (sorted for stable output)
mapping    ``{"map": [[key, value], ...]}`` (insertion order kept)
========== =====================================

Scalars (str/int/float/bool/None) pass through untouched. Anything else
is rejected with :class:`~repro.errors.ProtocolError` — the wire format
is intentionally closed over what the public API actually returns.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.advisor.log import QueryTemplate, TemplateUsage, WorkloadLog
from repro.cloudsim import events as _ev
from repro.cloudsim.ledger import BillingLedger
from repro.core.outcome import (
    AddOffOutcome,
    AddOnOutcome,
    ShapleyResult,
    SubstOffOutcome,
    SubstOnOutcome,
)
from repro.db.catalog import Catalog
from repro.db.costmodel import CostMeter
from repro.db.engine import QueryResult
from repro.db.index import HashIndex, SortedIndex
from repro.db.savings import SavingsQuote
from repro.db.schema import Column, Schema
from repro.db.stats import ColumnStats, TableStats
from repro.db.table import Table
from repro.db.view import MaterializedView
from repro.errors import ProtocolError, QueryError
from repro.fleet.engine import FleetReport

__all__ = ["encode", "decode", "encode_value", "decode_value", "CODECS"]


# ------------------------------------------------------------- primitives --

_SCALARS = (str, int, float, bool, type(None))


def encode_value(value):
    """One Python value -> its JSON-able form (tagged where needed)."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, int, float)):
        return value
    if isinstance(value, tuple):
        return {"tuple": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        items = sorted(value, key=lambda v: (str(type(v).__name__), str(v)))
        return {"frozenset": [encode_value(v) for v in items]}
    if isinstance(value, (dict, Mapping)):
        return {"map": [[encode_value(k), encode_value(v)] for k, v in value.items()]}
    if isinstance(value, list):
        return {"tuple": [encode_value(v) for v in value]}
    raise ProtocolError(
        f"value of type {type(value).__name__} has no wire encoding"
    )


def decode_value(value):
    """Inverse of :func:`encode_value` (lists decode to tuples)."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, list):
        return tuple(decode_value(v) for v in value)
    if isinstance(value, dict):
        if len(value) == 1:
            ((tag, payload),) = value.items()
            if tag == "tuple" and isinstance(payload, list):
                return tuple(decode_value(v) for v in payload)
            if tag == "frozenset" and isinstance(payload, list):
                return frozenset(decode_value(v) for v in payload)
            if tag == "map" and isinstance(payload, list):
                out = {}
                for pair in payload:
                    if not isinstance(pair, list) or len(pair) != 2:
                        raise ProtocolError(f"malformed map pair {pair!r}")
                    out[decode_value(pair[0])] = decode_value(pair[1])
                return out
        raise ProtocolError(f"unknown tagged value {sorted(value)!r}")
    raise ProtocolError(
        f"value of type {type(value).__name__} has no wire decoding"
    )


def _decoded_map(payload) -> dict:
    mapping = decode_value(payload)
    if not isinstance(mapping, dict):
        raise ProtocolError(f"expected an encoded map, got {type(mapping).__name__}")
    return mapping


def _field(d: dict, name: str):
    try:
        return d[name]
    except KeyError:
        raise ProtocolError(
            f"encoded {d.get('type', 'object')!r} is missing field {name!r}"
        ) from None


# ---------------------------------------------------------- value objects --


def _enc_shapley(r: ShapleyResult) -> dict:
    return {
        "serviced": encode_value(r.serviced),
        "price": r.price,
        "payments": encode_value(dict(r.payments)),
        "rounds": r.rounds,
    }


def _dec_shapley(d: dict) -> ShapleyResult:
    serviced = decode_value(_field(d, "serviced"))
    if not isinstance(serviced, frozenset):
        raise ProtocolError("'serviced' must decode to a frozenset")
    return ShapleyResult(
        serviced=serviced,
        price=float(_field(d, "price")),
        payments=_decoded_map(_field(d, "payments")),
        rounds=int(_field(d, "rounds")),
    )


def _enc_addoff(o: AddOffOutcome) -> dict:
    # Per-game results nest full encoded objects, so they travel as raw
    # [key, encoded-dict] pairs rather than through encode_value (which
    # would re-tag the already-encoded dictionaries as maps).
    return {
        "results": [[encode_value(j), encode(r)] for j, r in o.results.items()],
        "costs": encode_value(dict(o.costs)),
    }


def _dec_addoff(d: dict) -> AddOffOutcome:
    pairs = _field(d, "results")
    if not isinstance(pairs, list):
        raise ProtocolError("'results' must be a list of pairs")
    results = {}
    for pair in pairs:
        if not isinstance(pair, list) or len(pair) != 2:
            raise ProtocolError(f"malformed results pair {pair!r}")
        results[decode_value(pair[0])] = decode(pair[1])
    return AddOffOutcome(
        results=results,
        costs=_decoded_map(_field(d, "costs")),
    )


def _enc_addon(o: AddOnOutcome) -> dict:
    return {
        "cost": o.cost,
        "horizon": o.horizon,
        "serviced_by_slot": encode_value(o.serviced_by_slot),
        "cumulative_by_slot": encode_value(o.cumulative_by_slot),
        "price_by_slot": encode_value(o.price_by_slot),
        "payments": encode_value(dict(o.payments)),
        "implemented_at": o.implemented_at,
    }


def _dec_addon(d: dict) -> AddOnOutcome:
    implemented_at = _field(d, "implemented_at")
    return AddOnOutcome(
        cost=float(_field(d, "cost")),
        horizon=int(_field(d, "horizon")),
        serviced_by_slot=decode_value(_field(d, "serviced_by_slot")),
        cumulative_by_slot=decode_value(_field(d, "cumulative_by_slot")),
        price_by_slot=decode_value(_field(d, "price_by_slot")),
        payments=_decoded_map(_field(d, "payments")),
        implemented_at=None if implemented_at is None else int(implemented_at),
    )


def _enc_substoff(o: SubstOffOutcome) -> dict:
    return {
        "costs": encode_value(dict(o.costs)),
        "implemented": encode_value(o.implemented),
        "grants": encode_value(dict(o.grants)),
        "payments": encode_value(dict(o.payments)),
        "shares": encode_value(dict(o.shares)),
    }


def _dec_substoff(d: dict) -> SubstOffOutcome:
    return SubstOffOutcome(
        costs=_decoded_map(_field(d, "costs")),
        implemented=decode_value(_field(d, "implemented")),
        grants=_decoded_map(_field(d, "grants")),
        payments=_decoded_map(_field(d, "payments")),
        shares=_decoded_map(_field(d, "shares")),
    )


def _enc_subston(o: SubstOnOutcome) -> dict:
    return {
        "costs": encode_value(dict(o.costs)),
        "horizon": o.horizon,
        "grants": encode_value(dict(o.grants)),
        "granted_at": encode_value(dict(o.granted_at)),
        "implemented_at": encode_value(dict(o.implemented_at)),
        "payments": encode_value(dict(o.payments)),
        "shares_by_slot": encode_value(o.shares_by_slot),
    }


def _dec_subston(d: dict) -> SubstOnOutcome:
    return SubstOnOutcome(
        costs=_decoded_map(_field(d, "costs")),
        horizon=int(_field(d, "horizon")),
        grants=_decoded_map(_field(d, "grants")),
        granted_at=_decoded_map(_field(d, "granted_at")),
        implemented_at=_decoded_map(_field(d, "implemented_at")),
        payments=_decoded_map(_field(d, "payments")),
        shares_by_slot=decode_value(_field(d, "shares_by_slot")),
    )


def _enc_quote(q: SavingsQuote) -> dict:
    return {
        "view_rows": q.view_rows,
        "view_bytes": q.view_bytes,
        "build_units": q.build_units,
        "saving_units_per_run": q.saving_units_per_run,
        "kind": q.kind,
        "epoch": q.epoch,
    }


def _dec_quote(d: dict) -> SavingsQuote:
    epoch = d.get("epoch")
    return SavingsQuote(
        view_rows=int(_field(d, "view_rows")),
        view_bytes=float(_field(d, "view_bytes")),
        build_units=float(_field(d, "build_units")),
        saving_units_per_run=float(_field(d, "saving_units_per_run")),
        kind=str(_field(d, "kind")),
        epoch=None if epoch is None else int(epoch),
    )


def _enc_meter(m: CostMeter) -> dict:
    return {
        "scan_bytes": m.scan_bytes,
        "probe_count": m.probe_count,
        "rows_emitted": m.rows_emitted,
        "build_bytes": m.build_bytes,
        "counters": encode_value(dict(m.counters)),
    }


def _dec_meter(d: dict) -> CostMeter:
    return CostMeter(
        scan_bytes=float(_field(d, "scan_bytes")),
        probe_count=int(_field(d, "probe_count")),
        rows_emitted=int(_field(d, "rows_emitted")),
        build_bytes=float(_field(d, "build_bytes")),
        counters=_decoded_map(_field(d, "counters")),
    )


def _enc_query_result(r: QueryResult) -> dict:
    return {
        "rows": [encode_value(row) for row in r.rows],
        "meter": encode(r.meter),
        "source": r.source,
        "epoch": r.epoch,
    }


def _dec_query_result(d: dict) -> QueryResult:
    rows = _field(d, "rows")
    if not isinstance(rows, list):
        raise ProtocolError("'rows' must be a list")
    return QueryResult(
        rows=[decode_value(row) for row in rows],
        meter=decode(_field(d, "meter")),
        source=str(_field(d, "source")),
        epoch=int(d.get("epoch", 0)),
    )


def _enc_ledger(ledger: BillingLedger) -> dict:
    return {
        "entries": [
            {
                "slot": e.slot,
                "kind": e.kind,
                "party": encode_value(e.party),
                "amount": e.amount,
                "memo": e.memo,
            }
            for e in ledger.entries
        ]
    }


def _dec_ledger(d: dict) -> BillingLedger:
    ledger = BillingLedger()
    entries = _field(d, "entries")
    if not isinstance(entries, list):
        raise ProtocolError("'entries' must be a list")
    for raw in entries:
        if not isinstance(raw, dict):
            raise ProtocolError(f"malformed ledger entry {raw!r}")
        kind = _field(raw, "kind")
        slot = int(_field(raw, "slot"))
        party = decode_value(_field(raw, "party"))
        amount = float(_field(raw, "amount"))
        memo = str(_field(raw, "memo"))
        if kind == "invoice":
            ledger.invoice(slot, party, amount, memo)
        elif kind == "build":
            ledger.build_outlay(slot, party, -amount, memo)
        else:
            raise ProtocolError(f"unknown ledger entry kind {kind!r}")
    return ledger


#: Event classes that may appear in a serialized event log.
_EVENT_TYPES = {
    cls.__name__: cls
    for cls in (
        _ev.BidPlaced,
        _ev.BidRevised,
        _ev.UserGranted,
        _ev.OptimizationImplemented,
        _ev.UserDeparted,
        _ev.UserCharged,
    )
}


def _enc_events(log: _ev.EventLog) -> dict:
    encoded = []
    for event in log.all():
        fields = {
            name: encode_value(getattr(event, name))
            for name in event.__dataclass_fields__
        }
        encoded.append({"event": type(event).__name__, **fields})
    return {"events": encoded}


def _dec_events(d: dict) -> _ev.EventLog:
    log = _ev.EventLog()
    events = _field(d, "events")
    if not isinstance(events, list):
        raise ProtocolError("'events' must be a list")
    for raw in events:
        if not isinstance(raw, dict):
            raise ProtocolError(f"malformed event {raw!r}")
        cls = _EVENT_TYPES.get(raw.get("event"))
        if cls is None:
            raise ProtocolError(f"unknown event type {raw.get('event')!r}")
        kwargs = {
            name: decode_value(_field(raw, name))
            for name in cls.__dataclass_fields__
        }
        kwargs["slot"] = int(kwargs["slot"])
        log.record(cls(**kwargs))
    return log


def _enc_fleet_report(r: FleetReport) -> dict:
    return {
        "horizon": r.horizon,
        "games": encode_value(r.games),
        "ledger": encode(r.ledger),
        "events": encode(r.events),
        "implemented": encode_value(dict(r.implemented)),
        "granted_at": encode_value(dict(r.granted_at)),
        "payments": encode_value(dict(r.payments)),
        "game_revenue": encode_value(dict(r.game_revenue)),
        "epoch": r.epoch,
    }


def _dec_fleet_report(d: dict) -> FleetReport:
    return FleetReport(
        horizon=int(_field(d, "horizon")),
        games=decode_value(_field(d, "games")),
        ledger=decode(_field(d, "ledger")),
        events=decode(_field(d, "events")),
        implemented=_decoded_map(_field(d, "implemented")),
        granted_at=_decoded_map(_field(d, "granted_at")),
        payments=_decoded_map(_field(d, "payments")),
        game_revenue=_decoded_map(_field(d, "game_revenue")),
        epoch=int(d.get("epoch", 0)),
    )


# ------------------------------------------ durable state (checkpoints) --
#
# The Catalog and WorkloadLog codecs exist for the WAL checkpoint path
# (:mod:`repro.gateway.wal.checkpoint`): unlike the reply codecs above
# they serialize *internal* engine state, so decoding reconstructs the
# private structures directly instead of replaying mutations — replay
# would bump table versions and the catalog epoch, and a recovered
# service must report the exact epochs the crashed one did.


def _enc_table(t: Table) -> dict:
    return {
        "name": t.name,
        "schema": [[c.name, c.dtype] for c in t.schema.columns],
        "version": t.version,
        "rows": [list(row) for row in t.rows()],
    }


def _dec_table(d: dict) -> Table:
    raw_schema = _field(d, "schema")
    if not isinstance(raw_schema, list):
        raise ProtocolError("'schema' must be a list of [name, dtype] pairs")
    schema = Schema([Column(str(n), str(dt)) for n, dt in raw_schema])
    table = Table(str(_field(d, "name")), schema)
    rows = _field(d, "rows")
    if not isinstance(rows, list):
        raise ProtocolError("'rows' must be a list")
    table._rows = [schema.validate_row(row) for row in rows]
    table._version = int(_field(d, "version"))
    return table


def _unbuildable(name: str):
    def definition():
        raise QueryError(
            f"view {name!r} was restored without a rebuildable definition; "
            "it serves its materialized contents but cannot refresh"
        )

    return definition


def _enc_catalog(c: Catalog) -> dict:
    if c._batch_depth:
        raise ProtocolError(
            "cannot encode a catalog inside an open epoch_batch()"
        )
    views = []
    for name, view in c._views.items():
        spec = view.spec
        views.append(
            {
                "name": name,
                "depends_on": list(view.depends_on),
                "spec": None
                if spec is None
                else {
                    "table_name": spec.table_name,
                    "columns": list(spec.columns),
                    "excluded": [[col, val] for col, val in spec.excluded],
                },
                "build_cost_units": view.build_cost_units,
                "table": None if view.table is None else _enc_table(view.table),
            }
        )
    return {
        "epoch": c.epoch,
        "tables": [_enc_table(t) for t in c._tables.values()],
        "views": views,
        "hash_indexes": [
            [t, k, ix._covered_rows] for (t, k), ix in c._hash_indexes.items()
        ],
        "sorted_indexes": [
            [t, k, ix._covered_rows] for (t, k), ix in c._sorted_indexes.items()
        ],
        "stats": [
            {
                "table_name": s.table_name,
                "row_count": s.row_count,
                "row_width": s.row_width,
                "columns": [
                    {
                        "name": cs.name,
                        "distinct": cs.distinct,
                        "minimum": encode_value(cs.minimum),
                        "maximum": encode_value(cs.maximum),
                    }
                    for cs in s.columns.values()
                ],
            }
            for s in c._stats.values()
        ],
    }


def _dec_catalog(d: dict) -> Catalog:
    from repro.advisor.candidates import ViewSpec

    catalog = Catalog()
    tables = _field(d, "tables")
    views = _field(d, "views")
    if not isinstance(tables, list) or not isinstance(views, list):
        raise ProtocolError("'tables' and 'views' must be lists")
    for raw in tables:
        table = _dec_table(raw)
        catalog._tables[table.name] = table
        table._watchers.append(catalog._bump)
    for raw in views:
        if not isinstance(raw, dict):
            raise ProtocolError(f"malformed view entry {raw!r}")
        name = str(_field(raw, "name"))
        raw_spec = _field(raw, "spec")
        if raw_spec is not None:
            spec = ViewSpec(
                table_name=str(_field(raw_spec, "table_name")),
                columns=tuple(_field(raw_spec, "columns")),
                excluded=tuple(
                    (col, val) for col, val in _field(raw_spec, "excluded")
                ),
            )
            view = spec.build(catalog, name)
        else:
            view = MaterializedView(
                name,
                _unbuildable(name),
                depends_on=tuple(_field(raw, "depends_on")),
            )
        raw_table = _field(raw, "table")
        view.table = None if raw_table is None else _dec_table(raw_table)
        view.build_cost_units = float(_field(raw, "build_cost_units"))
        catalog._views[name] = view
    for field_name, cls, registry in (
        ("hash_indexes", HashIndex, catalog._hash_indexes),
        ("sorted_indexes", SortedIndex, catalog._sorted_indexes),
    ):
        entries = _field(d, field_name)
        if not isinstance(entries, list):
            raise ProtocolError(f"{field_name!r} must be a list")
        for entry in entries:
            if not isinstance(entry, list) or len(entry) != 3:
                raise ProtocolError(f"malformed index entry {entry!r}")
            table_name, key, covered = entry
            table = catalog._tables.get(table_name)
            if table is None:
                raise ProtocolError(
                    f"index over unknown table {table_name!r}"
                )
            covered = int(covered)
            if not 0 <= covered <= len(table):
                raise ProtocolError(
                    f"index over {table_name!r} claims to cover {covered} "
                    f"of {len(table)} rows"
                )
            registry[(str(table_name), str(key))] = cls(
                table, str(key), covered=covered
            )
    stats = _field(d, "stats")
    if not isinstance(stats, list):
        raise ProtocolError("'stats' must be a list")
    for raw in stats:
        if not isinstance(raw, dict):
            raise ProtocolError(f"malformed stats entry {raw!r}")
        columns = {
            str(_field(cs, "name")): ColumnStats(
                name=str(_field(cs, "name")),
                distinct=int(_field(cs, "distinct")),
                minimum=decode_value(_field(cs, "minimum")),
                maximum=decode_value(_field(cs, "maximum")),
            )
            for cs in _field(raw, "columns")
        }
        catalog._stats[str(_field(raw, "table_name"))] = TableStats(
            table_name=str(_field(raw, "table_name")),
            row_count=int(_field(raw, "row_count")),
            row_width=int(_field(raw, "row_width")),
            columns=columns,
        )
    catalog._epoch = int(_field(d, "epoch"))
    return catalog


def _enc_log(log: WorkloadLog) -> dict:
    return {
        "entries": [
            {
                "tenant": encode_value(tenant),
                "template": {
                    "kind": template.kind,
                    "table_name": template.table_name,
                    "columns": list(template.columns),
                    "key_column": template.key_column,
                    "excluded": [
                        [col, encode_value(val)]
                        for col, val in template.excluded
                    ],
                },
                "passes": usage.passes,
                "probes": usage.probes,
                "last_epoch": usage.last_epoch,
            }
            for tenant, template, usage in log.entries()
        ]
    }


def _dec_log(d: dict) -> WorkloadLog:
    log = WorkloadLog()
    entries = _field(d, "entries")
    if not isinstance(entries, list):
        raise ProtocolError("'entries' must be a list")
    for raw in entries:
        if not isinstance(raw, dict):
            raise ProtocolError(f"malformed workload entry {raw!r}")
        raw_template = _field(raw, "template")
        template = QueryTemplate(
            kind=str(_field(raw_template, "kind")),
            table_name=str(_field(raw_template, "table_name")),
            columns=tuple(_field(raw_template, "columns")),
            key_column=_field(raw_template, "key_column"),
            excluded=tuple(
                (col, decode_value(val))
                for col, val in _field(raw_template, "excluded")
            ),
        )
        last_epoch = _field(raw, "last_epoch")
        log._usage[(decode_value(_field(raw, "tenant")), template)] = (
            TemplateUsage(
                passes=float(_field(raw, "passes")),
                probes=float(_field(raw, "probes")),
                last_epoch=None if last_epoch is None else int(last_epoch),
            )
        )
    return log


# ------------------------------------------------------------- dispatch --

#: class -> (type tag, encoder, decoder). Order matters only for lookup by
#: isinstance below (exact class matches are tried first).
CODECS: dict[type, tuple[str, Callable, Callable]] = {
    ShapleyResult: ("ShapleyResult", _enc_shapley, _dec_shapley),
    AddOffOutcome: ("AddOffOutcome", _enc_addoff, _dec_addoff),
    AddOnOutcome: ("AddOnOutcome", _enc_addon, _dec_addon),
    SubstOffOutcome: ("SubstOffOutcome", _enc_substoff, _dec_substoff),
    SubstOnOutcome: ("SubstOnOutcome", _enc_subston, _dec_subston),
    SavingsQuote: ("SavingsQuote", _enc_quote, _dec_quote),
    CostMeter: ("CostMeter", _enc_meter, _dec_meter),
    QueryResult: ("QueryResult", _enc_query_result, _dec_query_result),
    BillingLedger: ("BillingLedger", _enc_ledger, _dec_ledger),
    _ev.EventLog: ("EventLog", _enc_events, _dec_events),
    FleetReport: ("FleetReport", _enc_fleet_report, _dec_fleet_report),
    Catalog: ("Catalog", _enc_catalog, _dec_catalog),
    WorkloadLog: ("WorkloadLog", _enc_log, _dec_log),
}

_BY_TAG = {tag: dec for _, (tag, _enc, dec) in CODECS.items()}


def encode(obj) -> dict:
    """One public value object -> its tagged JSON-able dictionary."""
    entry = CODECS.get(type(obj))
    if entry is None:
        raise ProtocolError(
            f"no wire codec for objects of type {type(obj).__name__}"
        )
    tag, enc, _dec = entry
    return {"type": tag, **enc(obj)}


def decode(d: dict):
    """Inverse of :func:`encode`; raises :class:`ProtocolError` on junk."""
    if not isinstance(d, dict):
        raise ProtocolError(f"expected an encoded object, got {type(d).__name__}")
    tag = d.get("type")
    dec = _BY_TAG.get(tag) if isinstance(tag, str) else None
    if dec is None:
        raise ProtocolError(f"unknown value-object type {tag!r}")
    try:
        return dec(d)
    except ProtocolError:
        raise
    except (KeyError, ValueError, TypeError, AttributeError) as exc:
        raise ProtocolError(f"malformed {tag} payload: {exc}") from exc
