"""The gateway facade: one service, every subsystem behind one surface.

:class:`PricingService` owns a :class:`~repro.fleet.engine.FleetEngine`
(the pricing games), a relational :class:`~repro.db.catalog.Catalog` with
its :class:`~repro.db.engine.QueryEngine` (the value-measurement
substrate), and an :class:`~repro.advisor.OptimizationAdvisor` wired to
the service's :class:`~repro.advisor.WorkloadLog` — and exposes exactly
one entry point over all of them: ``dispatch(request) -> reply`` on the
envelopes of :mod:`repro.gateway.envelopes`.

Contracts (tested in ``tests/test_gateway.py``):

* **Typed in, typed out.** ``dispatch`` never raises for request-shaped
  failures — every :class:`~repro.errors.ReproError` comes back as an
  :class:`~repro.gateway.envelopes.ErrorReply` with a structured code.
  ``dispatch_json`` is the wire-level twin (dicts in, dicts out) and
  additionally converts decode-time junk into error replies, so a JSONL
  transport never sees an exception at all.
* **The batched hot path survives the boundary.** ``dispatch`` of a
  request *sequence* groups consecutive pre-period :class:`SubmitBids`
  envelopes into
  columnar :class:`~repro.fleet.engine.FleetBatch` blocks — duration-major
  and request-ordered, exactly the layout
  :func:`repro.workloads.fleet.fleet_batches` emits — and bulk-ingests
  them, so gateway outcomes and metered costs are bit-identical to
  driving the :class:`FleetEngine` directly
  (``benchmarks/bench_gateway.py`` holds the dispatch overhead under
  15% at 50,000 users).
* **Slot-synchronized.** One :class:`AdvanceSlots` request moves every
  game in lock step; there is no per-game clock to drift.
* **Snapshot-isolated reads.** Every :class:`RunQuery` pins one catalog
  epoch (:meth:`~repro.db.catalog.Catalog.snapshot`) and runs a
  per-request engine against it: interleaved ``SubmitBids``/
  ``AdvanceSlots``/advice adoption cannot change a query mid-flight, the
  reply echoes the epoch served, and ``as_of`` re-reads a retained
  earlier epoch (``tests/test_snapshot_isolation.py``).
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.advisor import AdvisorConfig, OptimizationAdvisor, WorkloadLog
from repro.bids.additive import AdditiveBid
from repro.cloudsim.catalog import OptimizationCatalog
from repro.db.catalog import Catalog
from repro.db.costmodel import CostModel
from repro.db.engine import QueryEngine
from repro.db.snapshot import CatalogSnapshot
from repro.errors import (
    BidError,
    GameConfigError,
    MechanismError,
    ProtocolError,
    QueryError,
    RecoveryError,
    ReproError,
)
from repro import obs
from repro.fleet.engine import FleetBatch, FleetEngine, FleetReport
from repro.fleet.executor import FleetExecutor
from repro.gateway.envelopes import (
    QUERY_KINDS,
    AdvanceSlots,
    AdviseReply,
    AdviseRequest,
    BidsReply,
    ConfigReply,
    Configure,
    ErrorReply,
    LedgerQuery,
    LedgerReply,
    MetricsReply,
    MetricsRequest,
    QueryReply,
    Reply,
    Request,
    ReviseBid,
    ReviseReply,
    RunQuery,
    SlotReply,
    SubmitBids,
    request_from_dict,
    to_dict,
)

__all__ = ["PricingService", "TenantSession", "BulkAcks", "SNAPSHOT_RETENTION"]

#: Catalog snapshots the service retains for ``as_of`` time travel. Each
#: pinned epoch keeps its tables' buffers alive, so retention is bounded.
SNAPSHOT_RETENTION = 16

# Dispatch-level instrumentation (repro.obs). Label cardinality is
# bounded by construction: request kinds and query kinds are closed
# sets. Per DESIGN.md's conventions nothing below per-request
# granularity is metered here.
_DISPATCH_TOTAL = obs.REGISTRY.counter(
    "repro_dispatch_total",
    "Envelopes dispatched through PricingService, per request kind.",
    ("kind",),
)
_DISPATCH_SECONDS = obs.REGISTRY.histogram(
    "repro_dispatch_seconds",
    "PricingService dispatch latency per request kind.",
    ("kind",),
)
_QUERY_UNITS_TOTAL = obs.REGISTRY.counter(
    "repro_query_units_total",
    "Metered cost units charged through RunQuery, per query kind.",
    ("query",),
)
_CHECKPOINT_SECONDS = obs.REGISTRY.histogram(
    "repro_wal_checkpoint_seconds",
    "Wall time of one checkpoint (capture, write, rotation, GC).",
)


class BulkAcks(Sequence):
    """Lazily materialized acknowledgments of one bulk-ingested run.

    Bulk intake is all-or-nothing (one bad bid fails the whole run, like
    one bad row failing an ``ingest``), so the acks of a 50,000-envelope
    run carry one bit of news plus each request's own echo. Building
    50,000 reply objects eagerly would tax the hot path for information
    the client already holds; this sequence constructs each
    :class:`BidsReply` (or the run's shared :class:`ErrorReply`) only
    when it is actually read. ``failed`` answers the all-or-nothing
    verdict in O(1).
    """

    __slots__ = ("_requests", "_slot", "_error")

    def __init__(self, requests, slot: int, error) -> None:
        self._requests = requests
        self._slot = slot
        self._error = error

    @property
    def failed(self):
        """The run's shared :class:`ErrorReply`, or None on success."""
        return self._error

    def _make(self, request) -> Reply:
        if self._error is not None:
            return self._error
        # Same fast path as the facade: bypass the frozen dataclass's
        # per-field object.__setattr__; indistinguishable from __init__'s.
        reply = BidsReply.__new__(BidsReply)
        reply.__dict__.update(
            tenant=request.tenant, accepted=len(request.bids), slot=self._slot
        )
        return reply

    def __len__(self) -> int:
        return len(self._requests)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._make(r) for r in self._requests[index]]
        return self._make(self._requests[index])


class _ChainedReplies(Sequence):
    """Lazily concatenated reply segments of one mixed dispatch batch.

    Keeps :class:`BulkAcks` segments lazy instead of materializing them
    into one flat list — a 50k-envelope bulk run followed by a single
    ``AdvanceSlots`` should not pay per-reply construction it avoided in
    the pure-bulk case.
    """

    __slots__ = ("_parts", "_offsets")

    def __init__(self, parts) -> None:
        self._parts = parts
        offsets = [0]
        for part in parts:
            offsets.append(offsets[-1] + len(part))
        self._offsets = offsets

    def __len__(self) -> int:
        return self._offsets[-1]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        part = bisect_right(self._offsets, index) - 1
        return self._parts[part][index - self._offsets[part]]

    def __iter__(self):
        for part in self._parts:
            yield from part


class PricingService:
    """See the module docstring.

    Parameters
    ----------
    catalog:
        Optimization catalog (or a plain ``{opt_id: cost}`` mapping) to
        open the pricing period with. Omit it to start unconfigured and
        open the period later via a :class:`Configure` request.
    horizon:
        Slots in the period (required with ``catalog``).
    shards:
        Fleet shard count for the deterministic processing order.
    workers:
        Executor backend selector (:meth:`FleetEngine.build`): 0 or 1
        runs the period in-process, anything larger scatters it across a
        shared-nothing multi-process pool with bit-identical outcomes.
    db_catalog:
        The relational catalog queries run against (fresh and empty when
        omitted).
    cost_model:
        Cost model shared by the query engine and the advisor.
    engine_mode:
        Physical execution strategy of the query engine.
    fleet:
        Adopt an existing, not-yet-started engine instead of building one
        (the workload-to-bid pipeline hands its assembled fleet over this
        way; mutually exclusive with ``catalog``).
    """

    def __init__(
        self,
        catalog: OptimizationCatalog | Mapping | None = None,
        horizon: int | None = None,
        shards: int = 1,
        db_catalog: Catalog | None = None,
        cost_model: CostModel | None = None,
        engine_mode: str = "auto",
        advisor_config: AdvisorConfig | None = None,
        fleet: FleetExecutor | None = None,
        workers: int = 0,
    ) -> None:
        self.fleet: FleetExecutor | None = None
        self.db = db_catalog if db_catalog is not None else Catalog()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.log = WorkloadLog()
        self.engine = QueryEngine(
            self.db, self.cost_model, mode=engine_mode, log=self.log
        )
        self.advisor_config = (
            advisor_config if advisor_config is not None else AdvisorConfig()
        )
        self.last_advice = None  # full AdvisorOutcome of the latest round
        self._bulk_submitted: set = set()  # (tenant, rank) taken by bulk runs
        self._snapshots: dict[int, CatalogSnapshot] = {}  # epoch -> snapshot
        self._closed = False
        self._wal = None  # WalWriter once attach_wal()/recover() ran
        self._wal_dir: Path | None = None
        self._checkpoint_every: int | None = None
        self._retain_checkpoints: int | None = None
        self._records_since_checkpoint = 0
        # Ordered envelopes that rebuilt the current fleet; the checkpoint
        # serializes this (at capture time — appends stay O(1) so the bulk
        # hot path is untaxed) instead of the engine's internals. None
        # means the fleet arrived via attach_fleet and has no dispatch
        # history (such a service cannot be checkpointed).
        self._fleet_history: list | None = []
        self.wal_probe = None  # crash-injection seam (tests/crashpoints.py)
        if fleet is not None:
            if catalog is not None:
                raise GameConfigError(
                    "pass either a catalog to build a fleet or an existing "
                    "fleet, not both"
                )
            self.attach_fleet(fleet)
        elif catalog is not None:
            if horizon is None:
                raise GameConfigError("opening a period needs a horizon")
            self.configure(catalog, horizon, shards, workers=workers)

    # ------------------------------------------------------------- period --

    def configure(
        self,
        catalog: OptimizationCatalog | Mapping,
        horizon: int,
        shards: int = 1,
        workers: int = 0,
    ) -> FleetExecutor:
        """Open a (new) pricing period over ``catalog``.

        Reconfiguring replaces the fleet — the previous period's report
        stays reachable only if the caller kept it. ``workers`` picks the
        executor backend (:meth:`FleetEngine.build`); a replaced
        multi-process fleet has its worker pool reclaimed.
        """
        if not isinstance(catalog, OptimizationCatalog):
            catalog = OptimizationCatalog.from_costs(dict(catalog))
        if self.fleet is not None and getattr(self.fleet, "workers", 0) > 0:
            self.fleet.close()
        self.fleet = FleetEngine.build(
            catalog, horizon=horizon, shards=shards, workers=workers
        )
        self._bulk_submitted = set()
        # A new period resets the logical fleet history: this Configure
        # plus the later fleet mutations fully determine engine state.
        self._fleet_history = [
            {
                "request": Configure(
                    optimizations=tuple(
                        (j, catalog.get(j).cost) for j in catalog
                    ),
                    horizon=horizon,
                    shards=shards,
                    workers=workers,
                )
            }
        ]
        return self.fleet

    def attach_fleet(self, fleet: FleetExecutor) -> FleetExecutor:
        """Adopt an externally assembled engine as the current period.

        The duplicate guard is seeded with whatever bulk bids the engine
        already holds, so a gateway bulk run cannot double-schedule a
        pair the previous owner ingested. An adopted engine has no
        dispatch history, so a WAL-attached (durable) service refuses it:
        its state could never be checkpointed or recovered.
        """
        if self._wal is not None:
            raise GameConfigError(
                "a durable (WAL-attached) service must open periods via "
                "Configure; an externally assembled fleet has no dispatch "
                "history to checkpoint"
            )
        self.fleet = fleet
        self._bulk_submitted = set(fleet.bulk_keys())
        self._fleet_history = None
        return fleet

    def _require_fleet(self) -> FleetExecutor:
        if self.fleet is None:
            raise GameConfigError(
                "no pricing period is open; send a Configure request first"
            )
        return self.fleet

    @property
    def slot(self) -> int:
        """Last processed slot of the open period (0 before the first)."""
        return self._require_fleet().slot

    def session(self, tenant) -> "TenantSession":
        """A per-tenant handle that stamps ``tenant`` into every request."""
        return TenantSession(self, tenant)

    def report(self) -> FleetReport:
        """The open period's fleet report (complete once it is over)."""
        return self._require_fleet().report()

    def run_to_end(self) -> FleetReport:
        """Process every remaining slot and return the report.

        Routed through :meth:`dispatch` (one ``AdvanceSlots`` envelope
        covering the remaining slots) so a durable service logs the
        advance like any other state change; outcome-identical to
        :meth:`FleetEngine.run_to_end`, which advances the same slots
        then reports.
        """
        fleet = self._require_fleet()
        self._ensure_open()
        remaining = fleet.horizon - fleet.slot
        if remaining > 0:
            reply = self.dispatch(AdvanceSlots(slots=remaining))
            if isinstance(reply, ErrorReply):
                raise MechanismError(
                    f"run_to_end failed: [{reply.code}] {reply.message}"
                )
        return fleet.report()

    # ----------------------------------------------------------- dispatch --

    def dispatch(self, request_or_requests):
        """The one entry point: a request in, a reply out — or a request
        sequence in, a reply sequence out; errors come back as data.

        A single :class:`Request` dispatches alone. Any other (non-dict,
        non-string) iterable dispatches as a **batch**, preserving the
        fleet's columnar hot path and group-commit semantics (see
        :meth:`_dispatch_batch`). Wire-level dicts are not accepted here
        — they go through :meth:`dispatch_json` — and arrive back as a
        ``protocol``-coded :class:`ErrorReply` like every other
        request-shaped failure.

        On a durable service the envelope is fsync'd to the write-ahead
        log **before** any effect applies — a crash after the append
        replays the request on recovery; a crash before it means the
        request never happened. Failed dispatches are logged too: replay
        re-derives the same :class:`ErrorReply` deterministically.
        """
        if isinstance(request_or_requests, Request):
            return self._dispatch_one(request_or_requests, log=True)
        if isinstance(request_or_requests, Iterable) and not isinstance(
            request_or_requests, (Mapping, str, bytes)
        ):
            return self._dispatch_batch(list(request_or_requests))
        return ErrorReply.of(
            ProtocolError(
                "dispatch() takes one Request or an iterable of Requests; "
                "wire-level dicts go through dispatch_json()"
            ),
            request_kind=type(request_or_requests).__name__,
        )

    def _dispatch_one(self, request: Request, *, log: bool) -> Reply:
        """One dispatch; ``log=False`` when a batch record already covers
        the envelope (batched-:meth:`dispatch` group commit)."""
        kind = type(request).__name__
        _DISPATCH_TOTAL.labels(kind=kind).inc()
        with _DISPATCH_SECONDS.labels(kind=kind).time():
            try:
                self._ensure_open()
                if log and self._wal is not None:
                    self._wal.append_request(self.db.epoch, to_dict(request))
                    self._records_since_checkpoint += 1
                reply = self._handle(request)
            except ReproError as exc:
                reply = ErrorReply.of(exc, request_kind=kind)
        self._probe("apply:done")
        if log:
            self._maybe_checkpoint()
        return reply

    def _dispatch_batch(self, requests: list) -> Sequence[Reply]:
        """Dispatch a batch, preserving the fleet's columnar hot path.

        Runs of :class:`SubmitBids` envelopes arriving while bulk intake
        is still open (before the first slot) are ingested as
        :class:`FleetBatch` blocks instead of one
        :meth:`~repro.fleet.engine.FleetEngine.place_bid` call per bid.
        Like ``ingest`` itself, the bulk path trusts the batch: one bid
        per (tenant, optimization), no later revision. Replies come back
        in request order either way; bulk runs stay lazy
        (:class:`BulkAcks` segments, all-or-nothing) whether the batch
        is pure bulk or mixed with other requests.

        On a durable service the whole call is the **group-commit**
        boundary: one atomic WAL record (one fsync) covers every
        envelope, appended before any effect applies. Recovery replays
        the record through the batched dispatch path as a unit, so the
        partitioning below reruns deterministically and the
        :class:`BulkAcks` all-or-nothing contract holds across a crash
        at any boundary.
        """
        if self._closed:
            # No batching on a closed service: every envelope gets its
            # own "closed" ErrorReply, nothing touches the WAL.
            return [self.dispatch(request) for request in requests]
        requests = list(requests)
        if self._wal is not None and requests:
            self._wal.append_batch(
                self.db.epoch, [to_dict(r) for r in requests]
            )
            self._records_since_checkpoint += 1
        parts: list = []
        singles: list[Reply] = []
        pending: list[SubmitBids] = []
        pending_append = pending.append
        # Hoisted out of the loop: intake state only changes when a
        # non-SubmitBids request is dispatched (slot advance, reconfigure).
        bulk_open = self._bulk_open()
        for request in requests:
            if (
                bulk_open
                and isinstance(request, SubmitBids)
                and not request.revisable
            ):
                pending_append(request)
                continue
            if pending:
                if singles:
                    parts.append(singles)
                    singles = []
                parts.append(self._ingest_bulk(pending))
                self._probe("apply:done")
                pending = []
                pending_append = pending.append
            singles.append(self._dispatch_one(request, log=False))
            bulk_open = self._bulk_open()
        if pending:
            if singles:
                parts.append(singles)
                singles = []
            parts.append(self._ingest_bulk(pending))
            self._probe("apply:done")
        if singles:
            parts.append(singles)
        self._maybe_checkpoint()
        if not parts:
            return []
        if len(parts) == 1:
            return parts[0]
        return _ChainedReplies(parts)

    def dispatch_json(self, payload) -> dict:
        """Wire-level dispatch: JSON-able dict in, JSON-able dict out.

        Never raises for request-shaped failures — malformed envelopes
        decode into :class:`ErrorReply` dictionaries, which is what makes
        a JSONL transport total.
        """
        try:
            request = request_from_dict(payload)
        except ReproError as exc:
            kind = payload.get("kind") if isinstance(payload, Mapping) else None
            return to_dict(ErrorReply.of(exc, request_kind=str(kind or "")))
        return to_dict(self._dispatch_one(request, log=True))

    # The pre-1.5 entry points dispatch_many()/dispatch_dict() are gone:
    # API 1.5 unified them into dispatch()/dispatch_json() and kept
    # DeprecationWarning aliases for one release; API 1.6 removed them.

    # ----------------------------------------------------------- handlers --

    def _handle(self, request: Request) -> Reply:
        if isinstance(request, SubmitBids):
            return self._submit(request)
        if isinstance(request, ReviseBid):
            return self._revise(request)
        if isinstance(request, AdvanceSlots):
            return self._advance(request)
        if isinstance(request, RunQuery):
            return self._run_query(request)
        if isinstance(request, AdviseRequest):
            return self._advise(request)
        if isinstance(request, LedgerQuery):
            return self._ledger(request)
        if isinstance(request, MetricsRequest):
            # Reads the process-wide registry; deliberately stateless
            # (replaying one from a WAL is a no-op for service state).
            return MetricsReply(metrics=obs.REGISTRY.wire())
        if isinstance(request, Configure):
            costs: dict = {}
            for optimization, cost in request.optimizations:
                if optimization in costs:
                    # dict() would silently keep the last cost; a
                    # duplicated id in a trace must be loud, not a
                    # mispriced game.
                    raise GameConfigError(
                        f"optimization {optimization!r} listed twice"
                    )
                costs[optimization] = cost
            fleet = self.configure(
                costs, request.horizon, request.shards, request.workers
            )
            return ConfigReply(
                games=len(fleet.catalog),
                horizon=fleet.horizon,
                shards=len(fleet.shards),
                workers=getattr(fleet, "workers", 0),
            )
        raise ProtocolError(
            f"{type(request).__name__} is not a dispatchable request"
        )

    def _submit(self, request: SubmitBids) -> BidsReply:
        fleet = self._require_fleet()
        # Validate everything before placing anything: one bad bid must
        # not leave the envelope's earlier bids committed behind an
        # ErrorReply (the per-bid twin of the bulk path's all-or-nothing).
        checked = []
        seen: set = set()
        for optimization, start, values in request.bids:
            bid = AdditiveBid.over(start, values)
            rank = fleet.check_bid(request.tenant, optimization, bid)
            if rank in seen:
                raise GameConfigError(
                    f"user {request.tenant!r} bids twice on {optimization!r} "
                    "in one envelope"
                )
            seen.add(rank)
            checked.append((optimization, rank, bid))
        for optimization, rank, bid in checked:
            fleet.place_checked(request.tenant, rank, optimization, bid)
        self._note_fleet_mutation(request)
        return BidsReply(
            tenant=request.tenant, accepted=len(request.bids), slot=fleet.slot
        )

    def _revise(self, request: ReviseBid) -> ReviseReply:
        fleet = self._require_fleet()
        fleet.revise_bid(
            request.tenant, request.optimization, dict(request.new_values)
        )
        self._note_fleet_mutation(request)
        return ReviseReply(
            tenant=request.tenant,
            optimization=request.optimization,
            slot=fleet.slot,
        )

    def _advance(self, request: AdvanceSlots) -> SlotReply:
        fleet = self._require_fleet()
        if request.slots < 1:
            raise GameConfigError(
                f"must advance by >= 1 slot, got {request.slots}"
            )
        remaining = fleet.horizon - fleet.slot
        if request.slots > remaining:
            # Checked up front so an oversized advance moves nothing: an
            # ErrorReply must mean the clock did not move (the mutating
            # handlers are all-or-nothing).
            raise MechanismError(
                f"cannot advance {request.slots} slot(s); only {remaining} "
                f"remain before the horizon {fleet.horizon}"
            )
        fleet.advance_slots(request.slots)
        self._note_fleet_mutation(request)
        implemented = sorted(
            fleet.implemented.items(), key=lambda kv: str(kv[0])
        )
        return SlotReply(slot=fleet.slot, implemented=tuple(implemented))

    # -------------------------------------------------------- snapshots --

    def _pin_snapshot(self) -> CatalogSnapshot:
        """The current-epoch snapshot, cached so repeated reads share it."""
        epoch = self.db.epoch
        snap = self._snapshots.get(epoch)
        if snap is None:
            snap = self.db.snapshot()
            self._snapshots[epoch] = snap
            while len(self._snapshots) > SNAPSHOT_RETENTION:
                self._snapshots.pop(next(iter(self._snapshots)))
        return snap

    def _snapshot_for(self, as_of: int | None) -> CatalogSnapshot:
        """Resolve a request's ``as_of`` to a pinned snapshot.

        None (and the current epoch) read current state. An earlier epoch
        is served if the service still retains its snapshot — epochs are
        retained when a query pinned them, up to :data:`SNAPSHOT_RETENTION`
        — and rejected with a ``query``-coded error otherwise.
        """
        if as_of is None or as_of == self.db.epoch:
            return self._pin_snapshot()
        snap = self._snapshots.get(as_of)
        if snap is None:
            retained = sorted(self._snapshots)
            raise QueryError(
                f"epoch {as_of} is not retained (current epoch is "
                f"{self.db.epoch}; retained epochs: {retained})"
            )
        return snap

    def _run_query(self, request: RunQuery) -> QueryReply:
        if request.query not in QUERY_KINDS:
            raise ProtocolError(
                f"query must be one of {QUERY_KINDS}, got {request.query!r}"
            )
        snap = self._snapshot_for(request.as_of)
        # A per-request engine over the pinned snapshot: no shared mutable
        # engine state, so concurrent-style interleavings with mutating
        # requests cannot tear a query (and the log swap the shared engine
        # used to need is gone).
        engine = QueryEngine(
            snap,
            self.cost_model,
            mode=self.engine.mode,
            log=self.log if request.record else None,
        )
        with self.log.tenant(request.tenant):
            rows, units, source = self._execute_query(engine, request)
        _QUERY_UNITS_TOTAL.labels(query=request.query).inc(units)
        return QueryReply(
            tenant=request.tenant,
            query=request.query,
            rows=tuple(rows),
            units=units,
            source=source,
            epoch=snap.epoch,
        )

    def _execute_query(self, engine: QueryEngine, request: RunQuery):
        if request.query == "members":
            self._require_params(request, halo=True, table=True)
            result = engine.halo_members(request.table, request.halo)
            return result.rows, self.cost_model.units(result.meter), result.source
        if request.query == "histogram":
            self._require_params(request, table=True)
            result = engine.progenitor_histogram(request.table, request.pids)
            return result.rows, self.cost_model.units(result.meter), result.source
        if request.query == "top":
            self._require_params(request, halo=True, tables=2)
            top, meter = engine.top_contributor(
                request.tables[0], request.halo, request.tables[1]
            )
            return [(top,)], self.cost_model.units(meter), ""
        if request.query == "chain":
            self._require_params(request, halo=True, tables=1)
            chain, meter = engine.halo_chain(list(request.tables), request.halo)
            return [(h,) for h in chain], self.cost_model.units(meter), ""
        # "contributors": final table first, then the earlier snapshots.
        self._require_params(request, halo=True, tables=2)
        contributors, meter = engine.contributors_to(
            request.tables[0], request.halo, list(request.tables[1:])
        )
        rows = [(table, contributors[table]) for table in request.tables[1:]]
        return rows, self.cost_model.units(meter), ""

    @staticmethod
    def _require_params(
        request: RunQuery, halo: bool = False, table: bool = False, tables: int = 0
    ) -> None:
        if halo and request.halo is None:
            raise ProtocolError(f"{request.query!r} queries need 'halo'")
        if table and not request.table:
            raise ProtocolError(f"{request.query!r} queries need 'table'")
        if tables and len(request.tables) < tables:
            raise ProtocolError(
                f"{request.query!r} queries need >= {tables} 'tables', "
                f"got {len(request.tables)}"
            )

    def _advise(self, request: AdviseRequest) -> AdviseReply:
        base = self.advisor_config
        config = AdvisorConfig(
            horizon=(
                base.horizon if request.horizon is None else request.horizon
            ),
            dollars_per_byte=(
                base.dollars_per_byte
                if request.dollars_per_byte is None
                else request.dollars_per_byte
            ),
            runs_per_slot=(
                base.runs_per_slot
                if request.runs_per_slot is None
                else request.runs_per_slot
            ),
            shards=base.shards if request.shards is None else request.shards,
        )
        advisor = OptimizationAdvisor(self.db, self.cost_model, config)
        outcome = advisor.advise(self.log)
        self.last_advice = outcome
        return AdviseReply(
            candidates=tuple(c.name for c in outcome.candidates.candidates),
            funded=outcome.funded,
            adopted=outcome.adopted,
            build_units=self.cost_model.units(outcome.build_meter),
            epoch=self.db.epoch if outcome.epoch is None else outcome.epoch,
        )

    def _ledger(self, request: LedgerQuery) -> LedgerReply:
        fleet = self._require_fleet()
        statement = fleet.ledger.statement(request.tenant)
        return LedgerReply(
            tenant=request.tenant,
            invoices=tuple((e.slot, e.amount, e.memo) for e in statement),
            total=fleet.ledger.paid_by(request.tenant),
            cloud_balance=fleet.ledger.balance,
        )

    # --------------------------------------------------------- durability --

    def _ensure_open(self) -> None:
        if self._closed:
            raise ProtocolError(
                "the service is closed; no further requests are accepted"
            )

    def close(self) -> None:
        """Stop accepting requests and release the WAL (idempotent).

        Every further ``dispatch`` returns a ``protocol``-coded
        :class:`ErrorReply`; a closed durable service is recovered with
        :meth:`PricingService.recover`, not reused. A multi-process
        fleet's worker pool is reclaimed (reports stay readable).
        """
        self._closed = True
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        if self.fleet is not None and getattr(self.fleet, "workers", 0) > 0:
            self.fleet.close()

    def _probe(self, stage: str) -> None:
        if self.wal_probe is not None:
            self.wal_probe(stage)

    def _note_fleet_mutation(self, request: Request) -> None:
        if self._fleet_history is not None:
            self._fleet_history.append({"request": request})

    def attach_wal(
        self,
        directory,
        *,
        checkpoint_every: int | None = None,
        retain_checkpoints: int | None = None,
    ):
        """Make this service durable: every dispatch logs to ``directory``.

        Writes a base checkpoint of the *current* state (so state built
        before attaching — preloaded tables, an open period — is covered)
        and then appends every accepted envelope to ``wal.jsonl`` before
        its effects apply. ``checkpoint_every`` automatically checkpoints
        after that many WAL records. ``retain_checkpoints=N`` turns on
        log compaction: each checkpoint seals the active file into a
        rotation segment and deletes checkpoints beyond the newest ``N``
        plus every segment they made redundant
        (:mod:`repro.gateway.wal.rotate`). The directory must not already
        hold a WAL — recover an existing one with :meth:`recover`.
        """
        from repro.gateway.wal.records import WAL_FILENAME
        from repro.gateway.wal.writer import WalWriter

        self._ensure_open()
        if self._wal is not None:
            raise GameConfigError(
                f"a WAL is already attached at {self._wal_dir}"
            )
        if self.fleet is not None and self._fleet_history is None:
            raise RecoveryError(
                "cannot make this service durable: its fleet was attached "
                "externally and has no dispatch history to checkpoint"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        existing = [directory / WAL_FILENAME, *directory.glob("checkpoint-*.json")]
        present = [p.name for p in existing if p.exists()]
        if present:
            raise RecoveryError(
                f"{directory} already holds durable state ({present}); "
                "use PricingService.recover() instead of attaching a "
                "fresh WAL over it"
            )
        if retain_checkpoints is not None and int(retain_checkpoints) < 1:
            raise GameConfigError(
                f"retain_checkpoints must be >= 1, got {retain_checkpoints}"
            )
        self._wal = WalWriter(directory / WAL_FILENAME, probe=self._probe)
        self._wal_dir = directory
        self._checkpoint_every = checkpoint_every
        self._retain_checkpoints = retain_checkpoints
        self._records_since_checkpoint = 0
        self.checkpoint()
        return directory

    def checkpoint(self) -> Path:
        """Write a checkpoint covering everything logged so far.

        With ``retain_checkpoints`` set, the checkpoint fsync is followed
        by log rotation and garbage collection: the active file is sealed
        into a segment and history fully covered by an aged-out
        checkpoint is deleted. The order matters — the new checkpoint is
        durable before anything it replaces is touched.
        """
        from repro.gateway.wal.checkpoint import capture_state, write_checkpoint

        if self._wal is None:
            raise GameConfigError(
                "no WAL is attached; attach_wal() before checkpointing"
            )
        self._probe("checkpoint:begin")
        with _CHECKPOINT_SECONDS.time(), obs.SPANS.span("checkpoint"):
            state = capture_state(self, wal_seq=self._wal.last_seq)
            path = write_checkpoint(self._wal_dir, state, probe=self._probe)
            self._records_since_checkpoint = 0
            if self._retain_checkpoints is not None:
                self.wal_gc(self._retain_checkpoints)
        self._probe("checkpoint:done")
        return path

    def wal_gc(self, retain_checkpoints: int):
        """Rotate the active WAL file and garbage-collect covered history.

        Seals the active file into a range-named segment, then deletes
        checkpoints beyond the newest ``retain_checkpoints`` and every
        sealed segment fully covered by the oldest survivor. Returns the
        :class:`~repro.gateway.wal.rotate.GcReport` of what was removed.
        Nothing the surviving checkpoints might need is ever deleted, so
        this is safe to run at any point after a checkpoint.
        """
        from repro.gateway.wal.rotate import collect_garbage

        if self._wal is None:
            raise GameConfigError(
                "no WAL is attached; attach_wal() before compacting"
            )
        self._wal.rotate()
        return collect_garbage(self._wal_dir, retain_checkpoints)

    def _maybe_checkpoint(self) -> None:
        if (
            self._wal is not None
            and self._checkpoint_every is not None
            and self._records_since_checkpoint >= self._checkpoint_every
        ):
            self.checkpoint()

    @classmethod
    def recover(
        cls,
        directory,
        *,
        checkpoint_every: int | None = None,
        retain_checkpoints: int | None = None,
    ):
        """Rebuild the service persisted in ``directory`` after a crash.

        Restores the newest valid checkpoint, replays the WAL tail, and
        returns a live durable service bit-identical to the uncrashed
        one (see :mod:`repro.gateway.wal.recovery`).
        """
        from repro.gateway.wal.recovery import recover as _recover

        with obs.SPANS.span("recover"):
            return _recover(
                directory,
                checkpoint_every=checkpoint_every,
                retain_checkpoints=retain_checkpoints,
            )

    def _adopt_wal(
        self,
        directory,
        *,
        next_seq: int,
        checkpoint_every: int | None,
        records_since: int,
        file_first_seq: int | None = None,
        retain_checkpoints: int | None = None,
    ) -> None:
        """Re-attach the WAL of a just-recovered service (recovery only)."""
        from repro.gateway.wal.records import WAL_FILENAME
        from repro.gateway.wal.writer import WalWriter

        directory = Path(directory)
        self._wal = WalWriter(
            directory / WAL_FILENAME,
            next_seq=next_seq,
            file_first_seq=file_first_seq,
            probe=self._probe,
        )
        self._wal_dir = directory
        self._checkpoint_every = checkpoint_every
        self._retain_checkpoints = retain_checkpoints
        self._records_since_checkpoint = records_since

    # ---------------------------------------------------------- bulk path --

    def _bulk_open(self) -> bool:
        fleet = self.fleet
        return fleet is not None and fleet.bulk_intake_open

    def _ingest_bulk(self, requests: list[SubmitBids]) -> BulkAcks:
        """Bulk-ingest a run of SubmitBids as duration-major FleetBatches.

        The grouping reproduces :func:`repro.workloads.fleet.fleet_batches`
        exactly — one batch per bid duration, ascending, bids in request
        order within a batch — so the scheduled entries (and therefore
        every outcome and metered cost downstream) are bit-identical to
        handing the engine pre-built batches. The returned acks are lazy
        (:class:`BulkAcks`); the caller must not mutate ``requests``
        afterwards.
        """
        # One bulk counter bump for the whole run — per-request-kind
        # accounting without touching the per-bid hot loop below.
        _DISPATCH_TOTAL.labels(kind="SubmitBids").inc(len(requests))
        fleet = self._require_fleet()
        rank_get = fleet.rank_map.get
        # The gateway is an *untrusted* boundary over the engine's
        # trusting bulk path: duplicate (tenant, optimization) pairs —
        # within this run or against an earlier bulk run — must fail the
        # run, not silently double-schedule and double-invoice. The
        # engine itself still guards against handle-bid collisions.
        taken = self._bulk_submitted
        new_keys = []
        # duration -> parallel (tenants, ranks, starts, values) columns,
        # filled in one pass so 50k envelopes cost one tight loop.
        columns: dict[int, tuple] = {}
        columns_get = columns.get
        try:
            for request in requests:
                tenant = request.tenant
                for optimization, start, values in request.bids:
                    rank = rank_get(optimization)
                    if rank is None:
                        raise GameConfigError(
                            f"no optimization {optimization!r} in catalog"
                        )
                    # Bid-shape failures carry the same "bid" code the
                    # per-bid path's AdditiveBid construction yields.
                    if not values:
                        raise BidError("a slot schedule needs at least one slot")
                    if start < 1:
                        raise BidError(f"start slot must be >= 1, got {start}")
                    key = (tenant, rank)
                    if key in taken:
                        raise GameConfigError(
                            f"user {tenant!r} already bid on "
                            f"{optimization!r}; revise instead"
                        )
                    taken.add(key)
                    new_keys.append(key)
                    duration = len(values)
                    group = columns_get(duration)
                    if group is None:
                        group = columns[duration] = ([], [], [], [])
                    group[0].append(tenant)
                    group[1].append(rank)
                    group[2].append(start)
                    group[3].append(values)
            batches = []
            for duration in sorted(columns):
                tenants, ranks, starts, values = columns[duration]
                matrix = np.array(values, dtype=float)
                if not np.isfinite(matrix).all() or matrix.min() < 0:
                    raise BidError("slot values must be non-negative and finite")
                batches.append(
                    FleetBatch(
                        users=tuple(tenants),
                        opt_ranks=np.array(ranks, dtype=np.int64),
                        starts=np.array(starts, dtype=np.int64),
                        values=matrix,
                    )
                )
            fleet.ingest_many(batches)
        except ReproError as exc:
            # Bulk intake is all-or-nothing per run: ingest_many commits
            # nothing on failure, and the whole run shares the verdict.
            taken.difference_update(new_keys)
            return BulkAcks(
                requests, fleet.slot, ErrorReply.of(exc, request_kind="SubmitBids")
            )
        if self._fleet_history is not None:
            # The caller already must not mutate ``requests`` (the lazy
            # acks hold it too), so recording the run is one list append.
            self._fleet_history.append({"requests": requests})
        return BulkAcks(requests, fleet.slot, None)


class TenantSession:
    """Sugar over :meth:`PricingService.dispatch` with the tenant bound.

    Sessions are cheap views — create one per tenant, keep none of the
    state: everything lives in the service.
    """

    def __init__(self, service: PricingService, tenant) -> None:
        self.service = service
        self.tenant = tenant

    def submit_bids(self, bids: Iterable[tuple], revisable: bool = False) -> Reply:
        """Submit ``(optimization, start, values)`` triples."""
        return self.service.dispatch(
            SubmitBids(tenant=self.tenant, bids=tuple(bids), revisable=revisable)
        )

    def revise_bid(self, optimization, new_values) -> Reply:
        """Revise one bid upward (mapping or ``(slot, value)`` pairs)."""
        return self.service.dispatch(
            ReviseBid(
                tenant=self.tenant,
                optimization=optimization,
                new_values=new_values,
            )
        )

    def run_query(self, query: str, **params) -> Reply:
        """Execute one workload query under this tenant's log context."""
        return self.service.dispatch(
            RunQuery(tenant=self.tenant, query=query, **params)
        )

    def ledger(self) -> Reply:
        """This tenant's billing statement."""
        return self.service.dispatch(LedgerQuery(tenant=self.tenant))
