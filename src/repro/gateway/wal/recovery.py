"""Crash recovery: latest valid checkpoint plus the WAL tail.

:func:`recover` rebuilds a :class:`PricingService` whose observable state
is bit-identical to the uncrashed run: it restores the newest checkpoint
that verifies (falling back past corrupt ones), re-dispatches every WAL
record after the checkpoint's ``wal_seq`` in order, truncates a torn
final line, and hands the service a writer positioned at the next
sequence number.

The log may span several files: sealed, range-named segments from
rotation (:mod:`repro.gateway.wal.rotate`) plus the active
``wal.jsonl``. :func:`read_log` stitches them into one contiguous record
stream; :func:`read_wal` remains the single-file reader trace tooling
uses.

The failure policy is strict where it must be and tolerant where a crash
legitimately leaves debris:

- A **torn final line of the active file** (no trailing newline,
  unparsable or failing its CRC) is the signature of a crash mid-append;
  the record never became durable, so it is dropped and the file
  truncated back to the last valid prefix. Sealed segments get no such
  tolerance — they were fsync'd whole at rotation, so any flaw is
  corruption.
- **Anything wrong earlier in a file** — flipped bytes, duplicated or
  gapped sequence numbers, junk lines — means the log cannot be trusted
  and recovery refuses with :class:`~repro.errors.RecoveryError`.
- A checkpoint whose ``wal_seq`` points **past the end of the log** is
  also fatal: the log has lost durable records and replaying a shorter
  history would silently un-charge tenants. Symmetrically, a log whose
  first surviving record starts **after** ``wal_seq + 1`` (history
  garbage-collected past the checkpoint that needs it) is refused.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import RecoveryError, ReproError
from repro.gateway.envelopes import request_from_dict
from repro.gateway.wal.checkpoint import (
    CHECKPOINT_GLOB,
    load_checkpoint,
    restore_service,
)
from repro.gateway.wal.records import (
    WAL_FILENAME,
    WalRecord,
    decode_record,
    iter_jsonl,
)
from repro.gateway.wal.rotate import list_segments

__all__ = ["WalLog", "read_wal", "read_log", "recover"]


def _read_file(path, *, expect_first=None, torn_tail_ok=True):
    """Durable records of one WAL file plus the byte length they span.

    ``expect_first`` pins the sequence the file must start with
    (``None`` accepts any — the caller judges coverage separately);
    ``torn_tail_ok`` tolerates a crash-torn final line, which is only
    legitimate in the active file.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    records: list[WalRecord] = []
    valid_bytes = 0
    lines = list(iter_jsonl(path))
    for index, line in enumerate(lines):
        torn_ok = torn_tail_ok and index == len(lines) - 1 and not line.complete
        if line.error is not None:
            if torn_ok:
                break
            raise RecoveryError(
                f"{path.name} line {line.lineno} is corrupt: {line.error}"
            )
        try:
            record = decode_record(line.payload)
        except RecoveryError as exc:
            if torn_ok:
                break
            raise RecoveryError(
                f"{path.name} line {line.lineno}: {exc}"
            ) from None
        expected = records[-1].seq + 1 if records else expect_first
        if expected is not None and record.seq != expected:
            if record.seq == expected - 1 and records:
                raise RecoveryError(
                    f"{path.name} line {line.lineno} duplicates sequence "
                    f"number {record.seq}"
                )
            raise RecoveryError(
                f"{path.name} line {line.lineno} has sequence {record.seq}; "
                f"expected {expected} (gap or reordering)"
            )
        records.append(record)
        valid_bytes = line.end_offset
    return records, valid_bytes


def read_wal(path) -> tuple[list[WalRecord], int]:
    """All durable records of one WAL file plus the byte length they span.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the
    offset just past the last valid record — a torn final line (crash
    mid-append) sits beyond it and is tolerated; every other framing
    violation raises :class:`~repro.errors.RecoveryError`. The file must
    start at sequence 1; for rotated directories use :func:`read_log`.
    """
    return _read_file(path, expect_first=1, torn_tail_ok=True)


@dataclass
class WalLog:
    """One WAL directory's durable history, stitched across files."""

    records: list[WalRecord]
    segments: list[Path]
    active_first_seq: int  # first seq the active file holds (next_seq if none)
    active_valid_bytes: int  # offset past the active file's last valid record

    @property
    def first_seq(self) -> int:
        """Sequence of the oldest surviving record (0 when the log is empty)."""
        return self.records[0].seq if self.records else 0

    @property
    def last_seq(self) -> int:
        """Sequence of the newest surviving record (0 when the log is empty)."""
        return self.records[-1].seq if self.records else 0


def read_log(directory) -> WalLog:
    """Every durable record of a WAL directory: sealed segments in range
    order, then the active file, verified contiguous across the seams.

    A sealed segment must hold exactly the range its name claims; only
    the active file may end in a torn line. The stream may *start* at any
    sequence (garbage collection deletes from the oldest end) — whether a
    checkpoint bridges the discarded prefix is :func:`recover`'s call.
    """
    directory = Path(directory)
    records: list[WalRecord] = []
    segment_paths: list[Path] = []
    expected = None
    for first, last, path in list_segments(directory):
        if expected is not None and first != expected:
            raise RecoveryError(
                f"WAL segment {path.name} starts at sequence {first}; "
                f"expected {expected} (a middle segment is missing)"
            )
        seg_records, _ = _read_file(
            path, expect_first=first, torn_tail_ok=False
        )
        if not seg_records or seg_records[-1].seq != last:
            held = seg_records[-1].seq if seg_records else "none"
            raise RecoveryError(
                f"WAL segment {path.name} claims records {first}..{last} "
                f"but ends at {held}: a sealed segment was truncated"
            )
        records.extend(seg_records)
        segment_paths.append(path)
        expected = last + 1
    active_records, valid_bytes = _read_file(
        directory / WAL_FILENAME, expect_first=expected, torn_tail_ok=True
    )
    records.extend(active_records)
    if active_records:
        active_first = active_records[0].seq
    elif expected is not None:
        active_first = expected
    else:
        active_first = 0  # empty file, nothing to anchor; caller decides
    return WalLog(
        records=records,
        segments=segment_paths,
        active_first_seq=active_first,
        active_valid_bytes=valid_bytes,
    )


def _replay_record(service, record: WalRecord) -> None:
    """Re-dispatch one WAL record exactly as the crashed run did.

    Unlike checkpointed fleet history, the WAL also logs envelopes whose
    dispatch *failed* — dispatch is deterministic, so those replay to the
    same :class:`ErrorReply` and the same (unchanged) state; an error
    here is not divergence. What must not happen is the record failing to
    decode at all: that is framing-level corruption.
    """
    try:
        requests = [request_from_dict(raw) for raw in record.requests]
    except ReproError as exc:
        raise RecoveryError(
            f"WAL record seq {record.seq} does not decode: {exc}"
        ) from exc
    if record.batch:
        service.dispatch(requests)
    else:
        service.dispatch(requests[0])


def recover(
    directory,
    *,
    checkpoint_every: int | None = None,
    retain_checkpoints: int | None = None,
):
    """Rebuild the service persisted in ``directory`` after a crash.

    Loads the newest checkpoint that verifies, replays the WAL records
    past its ``wal_seq``, truncates any torn final line of the active
    file, and returns a live :class:`PricingService` with the WAL
    re-attached (appending at the next sequence number).
    ``checkpoint_every`` re-arms automatic checkpointing and
    ``retain_checkpoints`` re-arms rotation + garbage collection on the
    recovered service.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise RecoveryError(f"no WAL directory at {directory}")
    log = read_log(directory)
    last_seq = log.last_seq

    candidates = sorted(directory.glob(CHECKPOINT_GLOB), reverse=True)
    if not candidates:
        raise RecoveryError(
            f"no checkpoint in {directory}; a durable service always "
            "writes one at attach time, so this directory is not a WAL "
            "directory (or the checkpoint was deleted)"
        )
    failures: list[str] = []
    state = None
    for candidate in candidates:
        try:
            loaded = load_checkpoint(candidate)
        except RecoveryError as exc:
            failures.append(str(exc))
            continue
        if log.records and loaded["wal_seq"] > last_seq:
            raise RecoveryError(
                f"checkpoint {candidate.name} covers WAL sequence "
                f"{loaded['wal_seq']} but the log ends at {last_seq}: "
                "durable records are missing; refusing to serve a "
                "shorter history"
            )
        if not log.records and loaded["wal_seq"] > 0:
            # Post-GC steady state: everything the checkpoint covers was
            # compacted away. Legitimate only if rotation left its fresh
            # active file behind; a *missing* wal.jsonl means the log was
            # deleted out from under the checkpoint.
            if not (directory / WAL_FILENAME).exists():
                raise RecoveryError(
                    f"checkpoint {candidate.name} covers WAL sequence "
                    f"{loaded['wal_seq']} but {WAL_FILENAME} is missing: "
                    "durable records are missing; refusing to serve a "
                    "shorter history"
                )
        if log.records and loaded["wal_seq"] < log.first_seq - 1:
            failures.append(
                f"{candidate.name} covers WAL sequence {loaded['wal_seq']} "
                f"but the surviving log starts at {log.first_seq}: records "
                f"{loaded['wal_seq'] + 1}..{log.first_seq - 1} were "
                "garbage-collected past it"
            )
            continue
        state = loaded
        break
    if state is None:
        raise RecoveryError(
            "every checkpoint failed verification: " + "; ".join(failures)
        )

    service = restore_service(state)
    for record in log.records:
        if record.seq > state["wal_seq"]:
            _replay_record(service, record)

    wal_path = directory / WAL_FILENAME
    if wal_path.exists():
        size = wal_path.stat().st_size
        if log.active_valid_bytes < size:
            with open(wal_path, "rb+") as handle:
                handle.truncate(log.active_valid_bytes)
    next_seq = max(last_seq, state["wal_seq"]) + 1
    service._adopt_wal(
        directory,
        next_seq=next_seq,
        file_first_seq=log.active_first_seq or next_seq,
        checkpoint_every=checkpoint_every,
        retain_checkpoints=retain_checkpoints,
        records_since=max(last_seq - state["wal_seq"], 0),
    )
    return service
