"""Crash recovery: latest valid checkpoint plus the WAL tail.

:func:`recover` rebuilds a :class:`PricingService` whose observable state
is bit-identical to the uncrashed run: it restores the newest checkpoint
that verifies (falling back past corrupt ones), re-dispatches every WAL
record after the checkpoint's ``wal_seq`` in order, truncates a torn
final line, and hands the service a writer positioned at the next
sequence number.

The failure policy is strict where it must be and tolerant where a crash
legitimately leaves debris:

- A **torn final line** (no trailing newline, unparsable or failing its
  CRC) is the signature of a crash mid-append; the record never became
  durable, so it is dropped and the file truncated back to the last
  valid prefix.
- **Anything wrong earlier in the file** — flipped bytes, duplicated or
  gapped sequence numbers, junk lines — means the log cannot be trusted
  and recovery refuses with :class:`~repro.errors.RecoveryError`.
- A checkpoint whose ``wal_seq`` points **past the end of the WAL** is
  also fatal: the log has lost durable records and replaying a shorter
  history would silently un-charge tenants.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import RecoveryError, ReproError
from repro.gateway.envelopes import request_from_dict
from repro.gateway.wal.checkpoint import (
    CHECKPOINT_GLOB,
    load_checkpoint,
    restore_service,
)
from repro.gateway.wal.records import (
    WAL_FILENAME,
    WalRecord,
    decode_record,
    iter_jsonl,
)

__all__ = ["read_wal", "recover"]


def read_wal(path) -> tuple[list[WalRecord], int]:
    """All durable records of one WAL plus the byte length they span.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the
    offset just past the last valid record — a torn final line (crash
    mid-append) sits beyond it and is tolerated; every other framing
    violation raises :class:`~repro.errors.RecoveryError`.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    records: list[WalRecord] = []
    valid_bytes = 0
    lines = list(iter_jsonl(path))
    for index, line in enumerate(lines):
        torn_tail_ok = index == len(lines) - 1 and not line.complete
        if line.error is not None:
            if torn_tail_ok:
                break
            raise RecoveryError(
                f"WAL line {line.lineno} is corrupt: {line.error}"
            )
        try:
            record = decode_record(line.payload)
        except RecoveryError as exc:
            if torn_tail_ok:
                break
            raise RecoveryError(f"WAL line {line.lineno}: {exc}") from None
        expected = records[-1].seq + 1 if records else 1
        if record.seq == expected - 1 and records:
            raise RecoveryError(
                f"WAL line {line.lineno} duplicates sequence number "
                f"{record.seq}"
            )
        if record.seq != expected:
            raise RecoveryError(
                f"WAL line {line.lineno} has sequence {record.seq}; "
                f"expected {expected} (gap or reordering)"
            )
        records.append(record)
        valid_bytes = line.end_offset
    return records, valid_bytes


def _replay_record(service, record: WalRecord) -> None:
    """Re-dispatch one WAL record exactly as the crashed run did.

    Unlike checkpointed fleet history, the WAL also logs envelopes whose
    dispatch *failed* — dispatch is deterministic, so those replay to the
    same :class:`ErrorReply` and the same (unchanged) state; an error
    here is not divergence. What must not happen is the record failing to
    decode at all: that is framing-level corruption.
    """
    try:
        requests = [request_from_dict(raw) for raw in record.requests]
    except ReproError as exc:
        raise RecoveryError(
            f"WAL record seq {record.seq} does not decode: {exc}"
        ) from exc
    if record.batch:
        service.dispatch_many(requests)
    else:
        service.dispatch(requests[0])


def recover(directory, *, checkpoint_every: int | None = None):
    """Rebuild the service persisted in ``directory`` after a crash.

    Loads the newest checkpoint that verifies, replays the WAL records
    past its ``wal_seq``, truncates any torn final line, and returns a
    live :class:`PricingService` with the WAL re-attached (appending at
    the next sequence number). ``checkpoint_every`` re-arms automatic
    checkpointing on the recovered service.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise RecoveryError(f"no WAL directory at {directory}")
    wal_path = directory / WAL_FILENAME
    records, valid_bytes = read_wal(wal_path)
    last_seq = records[-1].seq if records else 0

    candidates = sorted(directory.glob(CHECKPOINT_GLOB), reverse=True)
    if not candidates:
        raise RecoveryError(
            f"no checkpoint in {directory}; a durable service always "
            "writes one at attach time, so this directory is not a WAL "
            "directory (or the checkpoint was deleted)"
        )
    failures: list[str] = []
    state = None
    for candidate in candidates:
        try:
            loaded = load_checkpoint(candidate)
        except RecoveryError as exc:
            failures.append(str(exc))
            continue
        if loaded["wal_seq"] > last_seq:
            raise RecoveryError(
                f"checkpoint {candidate.name} covers WAL sequence "
                f"{loaded['wal_seq']} but the log ends at {last_seq}: "
                "durable records are missing; refusing to serve a "
                "shorter history"
            )
        state = loaded
        break
    if state is None:
        raise RecoveryError(
            "every checkpoint failed verification: " + "; ".join(failures)
        )

    service = restore_service(state)
    for record in records:
        if record.seq > state["wal_seq"]:
            _replay_record(service, record)

    if wal_path.exists():
        size = wal_path.stat().st_size
        if valid_bytes < size:
            with open(wal_path, "rb+") as handle:
                handle.truncate(valid_bytes)
    service._adopt_wal(
        directory,
        next_seq=last_seq + 1,
        checkpoint_every=checkpoint_every,
        records_since=last_seq - state["wal_seq"],
    )
    return service
