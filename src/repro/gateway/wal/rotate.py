"""Log rotation and compaction: sealed WAL segments plus checkpoint GC.

Without rotation a durable service's ``wal.jsonl`` grows forever even
though every checkpoint makes the records before it redundant. With
``attach_wal(..., retain_checkpoints=N)`` the service rotates at every
checkpoint: the active file is sealed into an immutable *segment* named
for the sequence range it covers::

    wal-000000000001-000000000042.jsonl   (records 1..42, sealed)
    wal.jsonl                             (active, records 43..)

and :func:`collect_garbage` then deletes (a) checkpoints beyond the
newest ``N`` and (b) every sealed segment whose records are fully
covered by the *oldest retained* checkpoint — recovery can never need
them, because even its deepest fallback starts at that checkpoint.

Deletion is the only destructive operation in the WAL subsystem, so it
is guarded twice: the newest retained checkpoint must verify
(:func:`~repro.gateway.wal.checkpoint.load_checkpoint`) before anything
is removed, and a segment is only removed when its recorded range is
entirely at or below the retained floor. A directory that was never
rotated (one monolithic ``wal.jsonl``) gains nothing from GC and loses
nothing: the active file is never deleted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import RecoveryError

__all__ = [
    "SEGMENT_GLOB",
    "segment_path",
    "segment_range",
    "list_segments",
    "checkpoint_seq",
    "GcReport",
    "collect_garbage",
]

#: How sealed segments are named inside a WAL directory. The active file
#: (``wal.jsonl``) deliberately does not match.
SEGMENT_GLOB = "wal-*.jsonl"

_SEGMENT_RE = re.compile(r"^wal-(\d{12})-(\d{12})\.jsonl$")
_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{12})\.json$")


def segment_path(directory, first_seq: int, last_seq: int) -> Path:
    """Where the sealed segment covering ``first_seq..last_seq`` lives."""
    return Path(directory) / (
        f"wal-{int(first_seq):012d}-{int(last_seq):012d}.jsonl"
    )


def segment_range(path) -> tuple[int, int]:
    """The ``(first_seq, last_seq)`` a segment's name claims to cover."""
    match = _SEGMENT_RE.match(Path(path).name)
    if match is None:
        raise RecoveryError(
            f"{Path(path).name} is not a WAL segment name "
            "(expected wal-<first>-<last>.jsonl)"
        )
    first, last = int(match.group(1)), int(match.group(2))
    if first < 1 or last < first:
        raise RecoveryError(
            f"segment {Path(path).name} claims an impossible range "
            f"{first}..{last}"
        )
    return first, last


def list_segments(directory) -> list[tuple[int, int, Path]]:
    """Every sealed segment of a WAL directory, ordered by first seq.

    Overlapping ranges are a framing violation (two segments cannot both
    hold the same record) and raise :class:`~repro.errors.RecoveryError`;
    gaps are legal — GC deletes from the oldest end — and are judged by
    recovery against the checkpoint floor, not here.
    """
    segments = sorted(
        (*segment_range(path), path)
        for path in Path(directory).glob(SEGMENT_GLOB)
    )
    for (_, last, path), (first, _, nxt) in zip(segments, segments[1:]):
        if first <= last:
            raise RecoveryError(
                f"WAL segments {path.name} and {nxt.name} overlap"
            )
    return segments


def checkpoint_seq(path) -> int:
    """The WAL sequence a checkpoint's file name claims to cover."""
    match = _CHECKPOINT_RE.match(Path(path).name)
    if match is None:
        raise RecoveryError(
            f"{Path(path).name} is not a checkpoint name "
            "(expected checkpoint-<wal_seq>.json)"
        )
    return int(match.group(1))


@dataclass
class GcReport:
    """What one :func:`collect_garbage` pass removed and kept."""

    retained_checkpoints: list[Path] = field(default_factory=list)
    removed_checkpoints: list[Path] = field(default_factory=list)
    removed_segments: list[Path] = field(default_factory=list)
    floor: int = 0  # wal_seq of the oldest retained checkpoint

    @property
    def removed(self) -> int:
        return len(self.removed_checkpoints) + len(self.removed_segments)


def collect_garbage(directory, retain_checkpoints: int) -> GcReport:
    """Age out checkpoints beyond the newest ``retain_checkpoints`` and
    delete every sealed segment they made redundant.

    Refuses (:class:`~repro.errors.RecoveryError`) when the newest
    retained checkpoint does not verify — deleting history under a
    directory whose only good checkpoints are the aged ones would turn a
    recoverable service into an unrecoverable one.
    """
    from repro.gateway.wal.checkpoint import CHECKPOINT_GLOB, load_checkpoint

    retain = int(retain_checkpoints)
    if retain < 1:
        raise RecoveryError(
            f"retain_checkpoints must be >= 1, got {retain_checkpoints}"
        )
    directory = Path(directory)
    if not directory.is_dir():
        raise RecoveryError(f"no WAL directory at {directory}")
    checkpoints = sorted(directory.glob(CHECKPOINT_GLOB))
    report = GcReport()
    if not checkpoints:
        return report
    report.retained_checkpoints = checkpoints[-retain:]
    aged = checkpoints[: -retain or None] if len(checkpoints) > retain else []
    # The gate: the newest survivor must actually restore before anything
    # it supposedly covers is destroyed.
    load_checkpoint(report.retained_checkpoints[-1])
    report.floor = checkpoint_seq(report.retained_checkpoints[0])
    for path in aged:
        path.unlink()
        report.removed_checkpoints.append(path)
    for first, last, path in list_segments(directory):
        if last <= report.floor:
            path.unlink()
            report.removed_segments.append(path)
    return report
