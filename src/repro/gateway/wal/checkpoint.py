"""Checkpoints: the whole service state as one atomic JSON document.

A checkpoint serializes everything a :class:`PricingService` would need
to resume — relational catalog, workload log, cost model, advisor
config, and the open pricing period — through the existing
:mod:`repro.gateway.codec` round-trips, tagged with the WAL sequence it
covers (``wal_seq``): recovery loads the newest valid checkpoint and
replays only the WAL records past that sequence.

The fleet engine is checkpointed *logically*: its internal state (numpy
schedules, lazy game states) is never serialized. Instead the service
records the ordered history of fleet-mutating envelopes since the last
``Configure`` and the checkpoint stores that history plus codec-encoded
copies of the ledger, event log, slot, and epoch. Restore replays the
history through a fresh engine — dispatch is deterministic — and then
*verifies* the rebuilt ledger/events/slot/epoch against the stored
copies, refusing (:class:`~repro.errors.RecoveryError`) on any
divergence rather than serving a mispriced period.

Checkpoint files are written to a temp file, fsync'd, and renamed into
place, so a crash mid-checkpoint leaves at worst an ignorable ``*.tmp``;
each file carries a CRC32 over its canonical body and corrupt files make
recovery fall back to the previous checkpoint.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path

from repro.errors import RecoveryError, ReproError
from repro.gateway import codec
from repro.gateway.envelopes import (
    API_VERSION,
    ErrorReply,
    request_from_dict,
    to_dict,
)
from repro.gateway.wal.records import checksum

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_GLOB",
    "checkpoint_path",
    "capture_state",
    "write_checkpoint",
    "load_checkpoint",
    "restore_service",
]

#: Bumped on any incompatible change to the checkpoint document shape.
CHECKPOINT_FORMAT = 1

#: How finished checkpoints are named inside a WAL directory (the
#: ``*.tmp`` staging twin is deliberately not matched).
CHECKPOINT_GLOB = "checkpoint-*.json"


def checkpoint_path(directory, wal_seq: int) -> Path:
    """Where the checkpoint covering ``wal_seq`` lives (sortable name)."""
    return Path(directory) / f"checkpoint-{int(wal_seq):012d}.json"


# --------------------------------------------------------------- capture --


def capture_state(service, *, wal_seq: int) -> dict:
    """The service's full durable state as one JSON-able document."""
    if service.fleet is not None and service._fleet_history is None:
        raise RecoveryError(
            "the open period's fleet was attached externally; its "
            "construction is not in the gateway's dispatch history, so it "
            "cannot be checkpointed — open periods on a durable service "
            "with Configure instead"
        )
    state: dict = {
        "format": CHECKPOINT_FORMAT,
        "api": API_VERSION,
        "wal_seq": int(wal_seq),
        "engine_mode": service.engine.mode,
        "cost_model": asdict(service.cost_model),
        "advisor_config": asdict(service.advisor_config),
        "db": codec.encode(service.db),
        "log": codec.encode(service.log),
        "fleet": None,
    }
    if service.fleet is not None:
        # The in-memory history holds envelope objects (appends must stay
        # O(1) on the dispatch hot path); wire form is produced here, once
        # per checkpoint.
        state["fleet"] = {
            "history": [
                {"requests": [to_dict(r) for r in entry["requests"]]}
                if "requests" in entry
                else {"request": to_dict(entry["request"])}
                for entry in service._fleet_history
            ],
            "slot": service.fleet.slot,
            "epoch": service.fleet.epoch,
            "ledger": codec.encode(service.fleet.ledger),
            "events": codec.encode(service.fleet.events),
        }
    return state


def write_checkpoint(directory, state: dict, probe=None) -> Path:
    """Atomically persist one captured state; returns the final path.

    Write-to-temp, fsync, rename, fsync-the-directory: a crash at any
    point leaves either the previous checkpoint set intact (plus at most
    a stale ``*.tmp`` that recovery ignores) or the complete new file.
    """
    path = checkpoint_path(directory, state["wal_seq"])
    payload = dict(state)
    payload["crc"] = checksum(state)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    if probe is not None:
        probe("checkpoint:written")
    os.replace(tmp, path)
    directory_fd = os.open(Path(directory), os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)
    return path


# --------------------------------------------------------------- restore --


def load_checkpoint(path) -> dict:
    """Read and verify one checkpoint document (shape, version, CRC).

    Every failure mode — unreadable file, junk JSON, missing fields,
    format/API mismatch, checksum mismatch — is a structured
    :class:`~repro.errors.RecoveryError`.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError, UnicodeDecodeError) as exc:
        raise RecoveryError(
            f"checkpoint {path.name} is unreadable: {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise RecoveryError(f"checkpoint {path.name} is not a JSON object")
    crc = payload.get("crc")
    body = {key: value for key, value in payload.items() if key != "crc"}
    if isinstance(crc, bool) or not isinstance(crc, int) or crc != checksum(body):
        raise RecoveryError(
            f"checkpoint {path.name} fails its checksum (corrupt bytes)"
        )
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise RecoveryError(
            f"checkpoint {path.name} has format {payload.get('format')!r}; "
            f"this build reads format {CHECKPOINT_FORMAT}"
        )
    if payload.get("api") != API_VERSION:
        raise RecoveryError(
            f"checkpoint {path.name} speaks API {payload.get('api')!r}; "
            f"this gateway speaks {API_VERSION!r}"
        )
    wal_seq = payload.get("wal_seq")
    if isinstance(wal_seq, bool) or not isinstance(wal_seq, int) or wal_seq < 0:
        raise RecoveryError(
            f"checkpoint {path.name} carries a bad wal_seq {wal_seq!r}"
        )
    for field in ("engine_mode", "cost_model", "advisor_config", "db", "log"):
        if field not in payload:
            raise RecoveryError(
                f"checkpoint {path.name} is missing field {field!r}"
            )
    return payload


def replay_history_entry(service, entry) -> None:
    """Re-dispatch one fleet-history entry; divergence is an error.

    History entries only record envelopes that *succeeded* originally,
    so an :class:`ErrorReply` (or a failed bulk run) during replay means
    the checkpoint does not describe the engine it claims to.
    """
    if not isinstance(entry, dict) or ("request" in entry) == ("requests" in entry):
        raise RecoveryError(f"malformed fleet-history entry {entry!r}")
    try:
        if "requests" in entry:
            requests = [request_from_dict(raw) for raw in entry["requests"]]
            acks = service.dispatch(requests)
            failed = getattr(acks, "failed", None)
            if failed is None:
                failed = next(
                    (r for r in acks if isinstance(r, ErrorReply)), None
                )
            if failed is not None:
                raise RecoveryError(
                    f"fleet history replay failed: [{failed.code}] "
                    f"{failed.message}"
                )
        else:
            reply = service.dispatch(request_from_dict(entry["request"]))
            if isinstance(reply, ErrorReply):
                raise RecoveryError(
                    f"fleet history replay failed: [{reply.code}] "
                    f"{reply.message}"
                )
    except RecoveryError:
        raise
    except ReproError as exc:
        raise RecoveryError(f"fleet history entry does not decode: {exc}") from exc


def restore_service(state: dict):
    """A fresh :class:`PricingService` equal to the captured one.

    The relational catalog and workload log restore directly through
    their codecs; the fleet restores by replaying its logical history and
    is then verified bit-for-bit (ledger, events, slot, epoch) against
    the encoded copies stored in the checkpoint.
    """
    from repro.advisor import AdvisorConfig
    from repro.db.catalog import Catalog
    from repro.db.costmodel import CostModel
    from repro.gateway.service import PricingService

    try:
        db = codec.decode(state["db"])
        log = codec.decode(state["log"])
        cost_model = CostModel(**state["cost_model"])
        advisor_config = AdvisorConfig(**state["advisor_config"])
        service = PricingService(
            db_catalog=db,
            cost_model=cost_model,
            engine_mode=state["engine_mode"],
            advisor_config=advisor_config,
        )
    except RecoveryError:
        raise
    except (ReproError, TypeError, ValueError) as exc:
        raise RecoveryError(f"checkpoint does not restore: {exc}") from exc
    if not isinstance(db, Catalog):
        raise RecoveryError(
            f"checkpoint 'db' decodes to {type(db).__name__}, not a Catalog"
        )
    # The service built its own empty log/engine pair; swap the restored
    # log in everywhere the service references it.
    service.log = log
    service.engine.log = log

    fleet_state = state.get("fleet")
    if fleet_state is not None:
        if not isinstance(fleet_state, dict) or not isinstance(
            fleet_state.get("history"), list
        ):
            raise RecoveryError("checkpoint 'fleet' section is malformed")
        # History replay re-runs Configure + every fleet mutation through
        # the normal dispatch path (no WAL is attached yet, so nothing is
        # re-logged); the catalog epoch moves only via the db section, so
        # pin it across the replay.
        db_epoch = db.epoch
        for entry in fleet_state["history"]:
            replay_history_entry(service, entry)
        db._epoch = db_epoch
        rebuilt = {
            "slot": None if service.fleet is None else service.fleet.slot,
            "epoch": None if service.fleet is None else service.fleet.epoch,
        }
        expected = {
            "slot": fleet_state.get("slot"),
            "epoch": fleet_state.get("epoch"),
        }
        if rebuilt != expected:
            raise RecoveryError(
                f"fleet history replay diverged from the checkpoint: "
                f"rebuilt {rebuilt}, checkpoint says {expected}"
            )
        if service.fleet is None:
            raise RecoveryError(
                "checkpoint records an open period but its history holds "
                "no Configure"
            )
        if codec.encode(service.fleet.ledger) != fleet_state.get("ledger"):
            raise RecoveryError(
                "fleet history replay diverged from the checkpoint: the "
                "rebuilt billing ledger does not match the stored copy"
            )
        if codec.encode(service.fleet.events) != fleet_state.get("events"):
            raise RecoveryError(
                "fleet history replay diverged from the checkpoint: the "
                "rebuilt event log does not match the stored copy"
            )
    return service
