"""WAL record framing plus the shared JSONL line reader.

One WAL record is one JSON line (the same line discipline
:mod:`repro.gateway.trace` uses for request traces — :func:`iter_jsonl`
is the single reader both consume). A record wraps either one request
envelope in wire form or one atomic bulk run of them::

    {"seq": 7, "epoch": 3, "request": {"api": "1.6", "kind": ...}, "crc": ...}
    {"seq": 8, "epoch": 3, "requests": [{...}, {...}], "crc": ...}

``seq`` is the contiguous per-log sequence number (first record is 1),
``epoch`` the catalog epoch the service held when the record was
appended, and ``crc`` a CRC32 over the canonical JSON serialization of
the record without its ``crc`` key. The nested envelope dictionaries are
exactly trace lines: stripping the framing turns a WAL into a replayable
trace.

Framing violations decode to :class:`~repro.errors.RecoveryError`, never
a bare ``KeyError``/``json.JSONDecodeError`` — recovery decides what is
tolerable (a torn final line) and what is not (corruption mid-file).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import RecoveryError

__all__ = [
    "WAL_FILENAME",
    "JsonlLine",
    "iter_jsonl",
    "WalRecord",
    "encode_record",
    "decode_record",
    "checksum",
]

#: File the write-ahead log lives in, inside a service's WAL directory.
WAL_FILENAME = "wal.jsonl"


# ------------------------------------------------------ shared JSONL reader --


@dataclass(frozen=True)
class JsonlLine:
    """One physical line of a JSONL file, parsed as far as possible.

    ``payload`` is the decoded JSON value (``None`` with ``error`` set
    when the line is not UTF-8 or not JSON); ``complete`` records whether
    the line carried its trailing newline — a torn final append does not —
    and ``end_offset`` is the byte offset just past the line, which lets
    recovery truncate a log back to its last valid prefix.
    """

    lineno: int
    payload: object
    error: str | None
    complete: bool
    end_offset: int


def iter_jsonl(path) -> Iterator[JsonlLine]:
    """Yield every non-blank line of ``path`` as a :class:`JsonlLine`.

    Never raises for line-level junk: undecodable bytes and malformed
    JSON come back as lines with ``error`` set, so consumers (trace
    replay, WAL recovery) choose their own failure policy per line.
    """
    data = Path(path).read_bytes()
    offset = 0
    lineno = 0
    length = len(data)
    while offset < length:
        newline = data.find(b"\n", offset)
        complete = newline != -1
        end = newline + 1 if complete else length
        raw = data[offset : newline if complete else length]
        offset = end
        lineno += 1
        if not raw.strip():
            continue
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            yield JsonlLine(lineno, None, f"not valid UTF-8: {exc}", complete, end)
            continue
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            yield JsonlLine(lineno, None, str(exc), complete, end)
            continue
        yield JsonlLine(lineno, payload, None, complete, end)


# ------------------------------------------------------------- WAL records --


def _canonical(payload) -> str:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


def checksum(payload) -> int:
    """CRC32 over the canonical JSON serialization of ``payload``."""
    return zlib.crc32(_canonical(payload).encode("utf-8")) & 0xFFFFFFFF


@dataclass(frozen=True)
class WalRecord:
    """One durably logged dispatch: a single envelope or an atomic run.

    ``requests`` holds the wire dictionaries (trace-shaped); ``batch``
    marks an all-or-nothing batched-``dispatch`` group commit — recovery
    re-dispatches it as one batch so the
    :class:`BulkAcks` contract survives a crash between the append and
    the apply.
    """

    seq: int
    epoch: int
    requests: tuple
    batch: bool


def encode_record(record: WalRecord) -> str:
    """One record -> its JSONL line (trailing newline included).

    The body is serialized exactly once: the line *is* the canonical
    form the checksum covers, with the ``crc`` field spliced onto the
    end — a bulk record at 50k users is megabytes of JSON, and a second
    ``dumps`` pass for the checksum would double the append cost.
    """
    body: dict = {"seq": record.seq, "epoch": record.epoch}
    if record.batch:
        body["requests"] = list(record.requests)
    else:
        body["request"] = record.requests[0]
    canonical = _canonical(body)
    crc = zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF
    return f'{canonical[:-1]},"crc":{crc}}}\n'


def _int_field(payload: dict, name: str) -> int:
    value = payload.get(name)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RecoveryError(
            f"WAL record field {name!r} must be an integer, got {value!r}"
        )
    return value


def decode_record(payload) -> WalRecord:
    """Inverse of :func:`encode_record`; checksum and shape verified.

    Raises :class:`~repro.errors.RecoveryError` on any framing violation:
    non-object lines, missing or badly typed fields, an envelope body
    that is not exactly one of ``request``/``requests``, or a CRC
    mismatch (flipped bytes anywhere in the record).
    """
    if not isinstance(payload, dict):
        raise RecoveryError(
            f"a WAL record must be a JSON object, got {type(payload).__name__}"
        )
    seq = _int_field(payload, "seq")
    epoch = _int_field(payload, "epoch")
    crc = _int_field(payload, "crc")
    has_single = "request" in payload
    has_batch = "requests" in payload
    if has_single == has_batch:
        raise RecoveryError(
            "a WAL record carries exactly one of 'request'/'requests'"
        )
    extra = set(payload) - {"seq", "epoch", "crc", "request", "requests"}
    if extra:
        raise RecoveryError(f"WAL record carries unknown fields {sorted(extra)}")
    body = {key: value for key, value in payload.items() if key != "crc"}
    expected = checksum(body)
    if crc != expected:
        raise RecoveryError(
            f"checksum mismatch on WAL record seq {seq}: stored {crc}, "
            f"computed {expected} (corrupt bytes)"
        )
    if has_batch:
        requests = payload["requests"]
        if not isinstance(requests, list) or not all(
            isinstance(r, dict) for r in requests
        ):
            raise RecoveryError(
                f"WAL record seq {seq}: 'requests' must be a list of envelopes"
            )
        return WalRecord(seq=seq, epoch=epoch, requests=tuple(requests), batch=True)
    request = payload["request"]
    if not isinstance(request, dict):
        raise RecoveryError(
            f"WAL record seq {seq}: 'request' must be an envelope object"
        )
    return WalRecord(seq=seq, epoch=epoch, requests=(request,), batch=False)
