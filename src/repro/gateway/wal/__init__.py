"""Write-ahead log and checkpointed recovery for the pricing gateway.

The durability story in one sentence: every envelope the service accepts
is fsync'd to ``wal.jsonl`` *before* its effects apply, checkpoints
periodically capture the whole service state tagged with the WAL
sequence they cover, and :func:`~repro.gateway.wal.recovery.recover`
rebuilds a bit-identical service from the latest valid checkpoint plus
the WAL tail.

Modules:

- :mod:`~repro.gateway.wal.records` — JSONL framing, sequence numbers,
  CRC32 checksums, and the shared line reader trace replay also uses.
- :mod:`~repro.gateway.wal.writer` — the fsync'd appender with crash
  probes.
- :mod:`~repro.gateway.wal.checkpoint` — atomic full-state snapshots
  through the gateway codec.
- :mod:`~repro.gateway.wal.recovery` — checkpoint + tail replay, torn
  line truncation, corruption refusal.
- :mod:`~repro.gateway.wal.rotate` — segment rotation at checkpoint
  time and retain-N garbage collection of aged checkpoints/segments.

``PricingService.attach_wal`` / ``PricingService.recover`` are the
user-facing entry points; see API.md's "Durability and recovery".
"""

from repro.gateway.wal.checkpoint import (
    CHECKPOINT_FORMAT,
    capture_state,
    checkpoint_path,
    load_checkpoint,
    restore_service,
    write_checkpoint,
)
from repro.gateway.wal.records import (
    WAL_FILENAME,
    JsonlLine,
    WalRecord,
    checksum,
    decode_record,
    encode_record,
    iter_jsonl,
)
from repro.gateway.wal.recovery import WalLog, read_log, read_wal, recover
from repro.gateway.wal.rotate import (
    SEGMENT_GLOB,
    GcReport,
    collect_garbage,
    list_segments,
    segment_path,
    segment_range,
)
from repro.gateway.wal.writer import WalWriter

__all__ = [
    "WAL_FILENAME",
    "JsonlLine",
    "iter_jsonl",
    "WalRecord",
    "encode_record",
    "decode_record",
    "checksum",
    "WalWriter",
    "CHECKPOINT_FORMAT",
    "checkpoint_path",
    "capture_state",
    "write_checkpoint",
    "load_checkpoint",
    "restore_service",
    "read_wal",
    "read_log",
    "WalLog",
    "recover",
    "SEGMENT_GLOB",
    "segment_path",
    "segment_range",
    "list_segments",
    "GcReport",
    "collect_garbage",
]
