"""Durable append: the write-ahead log's write side.

Every accepted envelope is framed (:mod:`repro.gateway.wal.records`),
appended, flushed, and fsync'd **before** its effects apply — the fsync
is the durability point, so a crash leaves either a fully durable record
or (at worst) a torn final line that recovery truncates away. One bulk
``dispatch_many`` run is one record and therefore one fsync, which is
what keeps the steady-state dispatch overhead low
(``benchmarks/bench_recovery.py`` gates it).

The optional ``probe`` callable is the crash-injection seam: it fires
with ``"wal:append"`` just before the bytes are written and
``"wal:appended"`` once they are durable (see ``tests/crashpoints.py``).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.gateway.wal.records import WalRecord, encode_record

__all__ = ["WalWriter"]


class WalWriter:
    """Sequenced, fsync'd appender over one ``wal.jsonl`` file."""

    def __init__(self, path, *, next_seq: int = 1, probe=None) -> None:
        self.path = Path(path)
        self._next_seq = int(next_seq)
        self._probe = probe
        self._handle = open(self.path, "a", encoding="utf-8")

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record (0 if none)."""
        return self._next_seq - 1

    @property
    def closed(self) -> bool:
        return self._handle is None

    def append_request(self, epoch: int, request: dict) -> int:
        """Durably log one envelope (wire form); returns its sequence."""
        return self._append(
            WalRecord(
                seq=self._next_seq, epoch=epoch, requests=(request,), batch=False
            )
        )

    def append_batch(self, epoch: int, requests: list) -> int:
        """Durably log one atomic bulk run as a single record/fsync."""
        return self._append(
            WalRecord(
                seq=self._next_seq,
                epoch=epoch,
                requests=tuple(requests),
                batch=True,
            )
        )

    def _append(self, record: WalRecord) -> int:
        line = encode_record(record)
        if self._probe is not None:
            self._probe("wal:append")
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._next_seq = record.seq + 1
        if self._probe is not None:
            self._probe("wal:appended")
        return record.seq

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
