"""Durable append: the write-ahead log's write side.

Every accepted envelope is framed (:mod:`repro.gateway.wal.records`),
appended, flushed, and fsync'd **before** its effects apply — the fsync
is the durability point, so a crash leaves either a fully durable record
or (at worst) a torn final line that recovery truncates away. One bulk
batched ``dispatch`` run is one record and therefore one fsync, which is
what keeps the steady-state dispatch overhead low
(``benchmarks/bench_recovery.py`` gates it).

The optional ``probe`` callable is the crash-injection seam: it fires
with ``"wal:append"`` just before the bytes are written and
``"wal:appended"`` once they are durable (see ``tests/crashpoints.py``).

:meth:`WalWriter.rotate` supports log compaction: it seals the active
file into an immutable range-named segment (``wal-<first>-<last>.jsonl``)
and starts a fresh active file, so checkpoint-time garbage collection
(:mod:`repro.gateway.wal.rotate`) can delete whole segments instead of
rewriting the log in place.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro import obs
from repro.gateway.wal.records import WalRecord, encode_record

__all__ = ["WalWriter"]

_APPEND_SECONDS = obs.REGISTRY.histogram(
    "repro_wal_append_seconds",
    "Wall time of one durable append (write + flush + fsync).",
)
_FSYNC_SECONDS = obs.REGISTRY.histogram(
    "repro_wal_fsync_seconds",
    "Wall time of the fsync alone (the durability point).",
)
_BYTES_TOTAL = obs.REGISTRY.counter(
    "repro_wal_bytes_total",
    "Bytes appended to the active WAL file (records are ASCII JSONL).",
)
_ROTATIONS_TOTAL = obs.REGISTRY.counter(
    "repro_wal_rotations_total",
    "Active-file rotations into sealed segments.",
)


class WalWriter:
    """Sequenced, fsync'd appender over one active ``wal.jsonl`` file."""

    def __init__(
        self, path, *, next_seq: int = 1, file_first_seq=None, probe=None
    ) -> None:
        self.path = Path(path)
        self._next_seq = int(next_seq)
        # First sequence number held by the *active* file — what the
        # sealed segment's range-name starts with at rotation. A fresh
        # file starts at next_seq; recovery passes the true first seq of
        # the surviving active file instead.
        self._file_first_seq = int(
            next_seq if file_first_seq is None else file_first_seq
        )
        self._probe = probe
        self._handle = open(self.path, "a", encoding="utf-8")
        self.fsyncs = 0  # benchmarks gate fsyncs/request on this

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record (0 if none)."""
        return self._next_seq - 1

    @property
    def closed(self) -> bool:
        return self._handle is None

    def append_request(self, epoch: int, request: dict) -> int:
        """Durably log one envelope (wire form); returns its sequence."""
        return self._append(
            WalRecord(
                seq=self._next_seq, epoch=epoch, requests=(request,), batch=False
            )
        )

    def append_batch(self, epoch: int, requests: list) -> int:
        """Durably log one atomic bulk run as a single record/fsync."""
        return self._append(
            WalRecord(
                seq=self._next_seq,
                epoch=epoch,
                requests=tuple(requests),
                batch=True,
            )
        )

    def _append(self, record: WalRecord) -> int:
        line = encode_record(record)
        if self._probe is not None:
            self._probe("wal:append")
        with _APPEND_SECONDS.time():
            self._handle.write(line)
            self._handle.flush()
            with _FSYNC_SECONDS.time():
                os.fsync(self._handle.fileno())
        self.fsyncs += 1
        _BYTES_TOTAL.inc(len(line))
        self._next_seq = record.seq + 1
        if self._probe is not None:
            self._probe("wal:appended")
        return record.seq

    def rotate(self):
        """Seal the active file into a range-named segment and start fresh.

        The active file is fsync'd, renamed to
        ``wal-<first>-<last>.jsonl`` (``os.replace`` — atomic on POSIX),
        the directory entry is fsync'd so the rename is durable, and a
        new empty active file takes its place. Returns the segment path,
        or ``None`` when the active file holds no records (rotating an
        empty file would mint a nonsense range).
        """
        from repro.gateway.wal.rotate import segment_path

        if self._handle is None:
            raise ValueError("cannot rotate a closed WAL writer")
        if self.last_seq < self._file_first_seq:
            return None
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        sealed = segment_path(
            self.path.parent, self._file_first_seq, self.last_seq
        )
        os.replace(self.path, sealed)
        dir_fd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._file_first_seq = self._next_seq
        _ROTATIONS_TOTAL.inc()
        return sealed

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
