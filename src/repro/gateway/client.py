"""Blocking HTTP client for the gateway server, with disciplined retries.

:class:`GatewayClient` is the reference consumer of
:mod:`repro.gateway.server`: stdlib ``http.client`` over one keep-alive
connection, envelopes in, envelopes out. Its retry policy is the part
worth copying:

- An :class:`ErrorReply` is retried **only** when it says so
  (``retryable: true`` — the ``overloaded`` and ``deadline_exceeded``
  codes, where the server guarantees the request never reached the
  pricing core). A rejected bid or malformed envelope is a verdict, not
  a transient — retrying it could double-submit; it is returned as-is.
- Transport failures are retried only when they cannot have half-applied
  a mutation: a refused connection (the request never left) always
  retries; a *fresh* connection that died mid-exchange retries only for
  read-only kinds (``RunQuery``, ``AdviseRequest``, ``LedgerQuery``,
  ``MetricsRequest``) —
  a mutating envelope may or may not have been committed, and the
  caller, not this client, must decide. A **reused** keep-alive
  connection that closes without a response is the idle-timeout race
  (the server guarantees a response before closing any connection whose
  request it processed), so that one retries freshly for every kind.
- Backoff is capped exponential with **full jitter** (decorrelates a
  thundering herd after a shed) and never waits less than the server's
  own ``retry_after`` hint.

When transport-level retries are exhausted the client raises
:class:`GatewayUnavailable`. A *typed* shed that outlives its retries
(the server kept answering ``overloaded``) is returned as the final
:class:`ErrorReply` instead — errors travel as data here, same as
everywhere else in the gateway.
"""

from __future__ import annotations

import http.client
import json
import random
import time

from repro import obs
from repro.errors import ReproError
from repro.gateway.envelopes import (
    Reply,
    Request,
    reply_from_dict,
    to_dict,
)
from repro.gateway.server import (
    DEADLINE_HEADER,
    HEALTH_PATH,
    METRICS_PATH,
    path_for_kind,
)

__all__ = ["GatewayClient", "GatewayUnavailable", "READ_ONLY_KINDS"]

#: Request kinds with no durable effect: safe to retry after a torn
#: exchange, because replaying them cannot double-charge anyone.
READ_ONLY_KINDS = frozenset(
    {"RunQuery", "AdviseRequest", "LedgerQuery", "MetricsRequest"}
)

_RETRIES_TOTAL = obs.REGISTRY.counter(
    "repro_client_retries_total",
    "Request attempts beyond the first, by request kind.",
    ("kind",),
)
_BACKOFF_SECONDS = obs.REGISTRY.counter(
    "repro_client_backoff_seconds_total",
    "Total time spent sleeping between retries.",
)


class GatewayUnavailable(ReproError):
    """Retries exhausted (or retrying would risk a duplicated effect)."""


class GatewayClient:
    """One keep-alive connection to a gateway server.

    ``max_attempts`` bounds tries per request (first try included);
    ``base_delay``/``max_delay`` shape the capped-exponential backoff;
    ``rng`` injects determinism into the jitter for tests. Not
    thread-safe — one client per thread, like the underlying
    ``http.client`` connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 10.0,
        max_attempts: int = 5,
        base_delay: float = 0.02,
        max_delay: float = 1.0,
        rng: random.Random | None = None,
        sleep=time.sleep,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self._rng = rng or random.Random()
        self._sleep = sleep
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------ public --

    def request(self, request: Request, *, deadline: float | None = None) -> Reply:
        """Send one envelope, honoring the retry policy; returns the
        decoded reply. ``deadline`` (seconds) is forwarded as the
        ``X-Repro-Deadline`` header."""
        payload = to_dict(request)
        path = path_for_kind(payload["kind"])
        read_only = payload["kind"] in READ_ONLY_KINDS
        body = json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"}
        if deadline is not None:
            headers[DEADLINE_HEADER] = repr(float(deadline))

        last_failure = ""
        last_shed: Reply | None = None
        for attempt in range(self.max_attempts):
            if attempt:
                _RETRIES_TOTAL.labels(kind=payload["kind"]).inc()
            sent = False
            fresh = False
            try:
                conn, fresh = self._connection()
                sent = True  # past here a mutation may have landed
                conn.request("POST", path, body=body, headers=headers)
                raw = self._read_response(conn)
            except ConnectionRefusedError as exc:
                # Nothing listening: the request never left this process.
                self._drop_connection()
                last_failure = f"connection refused: {exc}"
            except (OSError, http.client.HTTPException) as exc:
                self._drop_connection()
                if sent and not read_only and fresh:
                    raise GatewayUnavailable(
                        f"connection to {self.host}:{self.port} died "
                        f"mid-exchange on a mutating {payload['kind']}; "
                        "the server may or may not have committed it — "
                        "not retrying"
                    ) from exc
                last_failure = f"transport failure: {exc}"
            else:
                reply = reply_from_dict(raw)
                if not getattr(reply, "retryable", False):
                    return reply
                last_shed = reply  # typed shed; worth another try
                hint = getattr(reply, "retry_after", 0.0)
                self._backoff(attempt, floor=hint)
                continue
            self._backoff(attempt)
        if last_shed is not None:
            return last_shed  # still typed data, not an exception
        raise GatewayUnavailable(
            f"{self.max_attempts} attempts to {self.host}:{self.port}"
            f"{path} all failed; last: {last_failure}"
        )

    def health(self) -> dict:
        """One GET of ``/v1/healthz`` (raw counters dict); retried only
        across the stale keep-alive race, never on a fresh connection."""
        while True:
            conn, fresh = self._connection()
            try:
                conn.request("GET", HEALTH_PATH)
                return self._read_response(conn)
            except (OSError, http.client.HTTPException):
                self._drop_connection()
                if fresh:
                    raise

    def metrics_text(self) -> str:
        """One GET of ``/v1/metrics`` (the server's Prometheus text
        exposition); same retry stance as :meth:`health`."""
        while True:
            conn, fresh = self._connection()
            try:
                conn.request("GET", METRICS_PATH)
                response = conn.getresponse()
                body = response.read()
                if response.will_close:
                    self._drop_connection()
                return body.decode("utf-8")
            except (OSError, http.client.HTTPException):
                self._drop_connection()
                if fresh:
                    raise

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # ----------------------------------------------------------- innards --

    def _connection(self) -> tuple[http.client.HTTPConnection, bool]:
        """The keep-alive connection plus whether it was opened just now
        (a reused one may have been idle-closed by the server)."""
        if self._conn is not None:
            return self._conn, False
        self._conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        self._conn.connect()
        return self._conn, True

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def _read_response(self, conn) -> dict:
        response = conn.getresponse()
        body = response.read()
        if response.will_close:
            self._drop_connection()
        return json.loads(body)

    def _backoff(self, attempt: int, *, floor: float = 0.0) -> None:
        """Capped exponential with full jitter, never below ``floor``."""
        if attempt >= self.max_attempts - 1:
            return  # no point sleeping before giving up
        ceiling = min(self.max_delay, self.base_delay * (2**attempt))
        delay = max(self._rng.uniform(0, ceiling), floor)
        _BACKOFF_SECONDS.inc(delay)
        self._sleep(delay)
