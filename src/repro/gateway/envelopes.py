"""Versioned request/response envelopes of the tenant gateway.

Every interaction with the :class:`~repro.gateway.service.PricingService`
facade is one *request envelope* in, one *reply envelope* out. Envelopes
are frozen dataclasses that round-trip through plain JSON-able
dictionaries — ``request_from_dict(to_dict(req)) == req`` holds exactly,
including after a ``json.dumps``/``json.loads`` hop — so the same
protocol works in-process today and over any wire transport later.

Wire shape
----------
A serialized envelope is a flat JSON object::

    {"api": "1.6", "kind": "SubmitBids", "tenant": "ann", "bids": [...]}

``api`` is :data:`API_VERSION` (checked on decode; a mismatch raises
:class:`~repro.errors.ProtocolError` with code ``"version"``), ``kind``
names the envelope class, and the remaining keys are its fields. Anything
malformed — unknown kind, missing or badly-typed fields — raises
:class:`~repro.errors.ProtocolError`; nothing in this module ever lets a
bare ``KeyError``/``ValueError`` escape (fuzz-tested in
``tests/test_gateway.py``).

Errors travel as data: :meth:`ErrorReply.of` maps the
:class:`~repro.errors.ReproError` hierarchy onto stable structured codes
(:data:`ERROR_CODES`) so remote callers can dispatch on ``code`` without
importing this package's exception classes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Mapping

from repro.errors import (
    BidError,
    DeadlineError,
    GameConfigError,
    MechanismError,
    OverloadedError,
    ProtocolError,
    QueryError,
    RecoveryError,
    ReproError,
    RevisionError,
    SchemaError,
)

__all__ = [
    "API_VERSION",
    "Request",
    "Reply",
    "Configure",
    "SubmitBids",
    "ReviseBid",
    "AdvanceSlots",
    "RunQuery",
    "AdviseRequest",
    "LedgerQuery",
    "MetricsRequest",
    "ConfigReply",
    "BidsReply",
    "ReviseReply",
    "SlotReply",
    "QueryReply",
    "AdviseReply",
    "LedgerReply",
    "MetricsReply",
    "ErrorReply",
    "ERROR_CODES",
    "RETRYABLE_CODES",
    "error_code",
    "to_dict",
    "request_from_dict",
    "reply_from_dict",
    "envelope_from_dict",
]

#: Protocol version every envelope carries. Bumped on any incompatible
#: change to an envelope's fields or semantics; decode rejects mismatches.
#: 1.3 added epoch plumbing: ``RunQuery.as_of`` and the ``epoch`` field on
#: :class:`QueryReply` and :class:`AdviseReply`. 1.4 added the serving
#: layer's load-shedding surface: the ``overloaded``/``deadline_exceeded``
#: error codes and the ``retryable``/``retry_after`` fields on
#: :class:`ErrorReply`. 1.5 added the executor seam: ``Configure.workers``
#: picks the fleet backend (0/1 in-process, N > 1 a shared-nothing
#: multi-process pool) and :class:`ConfigReply` echoes the worker count.
#: 1.6 added the observability surface — the :class:`MetricsRequest`/
#: :class:`MetricsReply` pair reading the process-wide
#: :mod:`repro.obs` registry — and removed the deprecated
#: ``dispatch_many``/``dispatch_dict`` aliases API 1.5 had kept as
#: warning shims.
API_VERSION = "1.6"

#: Query kinds :class:`RunQuery` accepts (the astronomy workload surface).
QUERY_KINDS = ("members", "histogram", "top", "chain", "contributors")


def _require_hashable(value, what: str):
    """Tenant and optimization ids key dicts all the way down; rejecting
    unhashables at envelope construction keeps that failure as data
    (ProtocolError -> ErrorReply) instead of a mid-dispatch TypeError."""
    try:
        hash(value)
    except TypeError:
        raise ProtocolError(
            f"{what} must be hashable, got {type(value).__name__}"
        ) from None
    return value


class _Normalized:
    """Shared coercion harness: subclasses normalize in ``_normalize``.

    Coercion failures (bad types, short tuples) become
    :class:`ProtocolError` so no public construction path — in-process
    ``TenantSession`` calls included — leaks a bare
    ``ValueError``/``TypeError`` for request-shaped mistakes.
    """

    def __post_init__(self) -> None:
        try:
            self._normalize()
        except ProtocolError:
            raise
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed {type(self).__name__} envelope: {exc}"
            ) from exc

    def _normalize(self) -> None:
        """Coerce and validate fields; overridden per envelope."""


@dataclass(frozen=True)
class Request(_Normalized):
    """Marker base for request envelopes."""


@dataclass(frozen=True)
class Reply(_Normalized):
    """Marker base for reply envelopes."""


# ------------------------------------------------------------- requests --


@dataclass(frozen=True)
class Configure(Request):
    """(Re)open a pricing period: catalog of optimizations plus horizon.

    ``optimizations`` is a tuple of ``(opt_id, cost)`` pairs. Traces start
    with one of these so a replay is fully self-contained.
    """

    optimizations: tuple
    horizon: int
    shards: int = 1
    workers: int = 0

    def _normalize(self) -> None:
        # Coercion doubles as wire-side type checking: a badly-typed
        # field raises here, which the decoder turns into ProtocolError.
        object.__setattr__(
            self,
            "optimizations",
            tuple(
                (_require_hashable(opt, "an optimization id"), float(cost))
                for opt, cost in self.optimizations
            ),
        )
        object.__setattr__(self, "horizon", int(self.horizon))
        object.__setattr__(self, "shards", int(self.shards))
        object.__setattr__(self, "workers", int(self.workers))


@dataclass(frozen=True)
class SubmitBids(Request):
    """One tenant's additive bids: ``(optimization, start, values)`` triples.

    ``values`` is the per-slot value schedule from ``start`` on — exactly
    an :class:`~repro.bids.AdditiveBid`'s constructor arguments.
    ``revisable`` opts out of columnar bulk intake: bulk-ingested bids
    cannot be revised later (the fleet's bulk path trades handles for
    throughput), so a bid a later :class:`ReviseBid` will touch must be
    submitted with ``revisable=True``.
    """

    tenant: object
    bids: tuple
    revisable: bool = False

    def _normalize(self) -> None:
        _require_hashable(self.tenant, "a tenant id")
        object.__setattr__(
            self,
            "bids",
            tuple(
                (
                    _require_hashable(opt, "an optimization id"),
                    int(start),
                    tuple(float(v) for v in values),
                )
                for opt, start, values in self.bids
            ),
        )
        object.__setattr__(self, "revisable", bool(self.revisable))


@dataclass(frozen=True)
class ReviseBid(Request):
    """Upward revision of one previously submitted bid.

    ``new_values`` is a tuple of ``(slot, value)`` pairs (a mapping is
    accepted and normalized).
    """

    tenant: object
    optimization: object
    new_values: tuple

    def _normalize(self) -> None:
        _require_hashable(self.tenant, "a tenant id")
        _require_hashable(self.optimization, "an optimization id")
        values = self.new_values
        if isinstance(values, Mapping):
            values = tuple(values.items())
        object.__setattr__(
            self,
            "new_values",
            tuple((int(slot), float(value)) for slot, value in values),
        )


@dataclass(frozen=True)
class AdvanceSlots(Request):
    """Advance the shared pricing clock by ``slots`` slots."""

    slots: int = 1

    def _normalize(self) -> None:
        object.__setattr__(self, "slots", int(self.slots))


@dataclass(frozen=True)
class RunQuery(Request):
    """Execute one workload query against the service's relational catalog.

    ``query`` is one of :data:`QUERY_KINDS`; ``table``/``tables``/``halo``/
    ``pids`` parameterize it (see
    :meth:`repro.gateway.service.PricingService.dispatch`). ``record``
    controls whether the execution feeds the advisor's workload log.
    ``as_of`` pins the query to an earlier catalog epoch the service still
    retains (None — the default — reads the current state); the reply
    echoes the epoch actually served.
    """

    tenant: object
    query: str
    table: str = ""
    tables: tuple = ()
    halo: int | None = None
    pids: tuple = ()
    record: bool = True
    as_of: int | None = None

    def _normalize(self) -> None:
        _require_hashable(self.tenant, "a tenant id")
        object.__setattr__(self, "query", str(self.query))
        object.__setattr__(self, "table", str(self.table))
        object.__setattr__(self, "tables", tuple(str(t) for t in self.tables))
        if self.halo is not None:
            object.__setattr__(self, "halo", int(self.halo))
        object.__setattr__(self, "pids", tuple(int(p) for p in self.pids))
        object.__setattr__(self, "record", bool(self.record))
        if self.as_of is not None:
            object.__setattr__(self, "as_of", int(self.as_of))


@dataclass(frozen=True)
class AdviseRequest(Request):
    """Run one closed advising round over the accumulated workload log.

    ``None`` fields fall back to the service's advisor defaults.
    """

    horizon: int | None = None
    dollars_per_byte: float | None = None
    runs_per_slot: float | None = None
    shards: int | None = None

    def _normalize(self) -> None:
        for name, cast in (
            ("horizon", int),
            ("dollars_per_byte", float),
            ("runs_per_slot", float),
            ("shards", int),
        ):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, cast(value))


@dataclass(frozen=True)
class LedgerQuery(Request):
    """One tenant's billing statement for the current period."""

    tenant: object

    def _normalize(self) -> None:
        _require_hashable(self.tenant, "a tenant id")


@dataclass(frozen=True)
class MetricsRequest(Request):
    """Read the process-wide :mod:`repro.obs` metrics registry.

    Carries no parameters: the reply is one deterministic dump of every
    family (API 1.6). Read-only — dispatching it never touches service
    state, so it is always safe to retry.
    """


# --------------------------------------------------------------- replies --


@dataclass(frozen=True)
class ConfigReply(Reply):
    """The period is open: game count, horizon, and the executor shape
    (``workers == 0`` means the in-process engine) echoed back."""

    games: int
    horizon: int
    shards: int
    workers: int = 0


@dataclass(frozen=True)
class BidsReply(Reply):
    """Bids accepted into their games."""

    tenant: object
    accepted: int
    slot: int


@dataclass(frozen=True)
class ReviseReply(Reply):
    """A revision was applied."""

    tenant: object
    optimization: object
    slot: int


@dataclass(frozen=True)
class SlotReply(Reply):
    """The clock advanced; ``implemented`` is the cumulative
    ``(optimization, slot built)`` set, sorted by optimization."""

    slot: int
    implemented: tuple

    def _normalize(self) -> None:
        object.__setattr__(
            self,
            "implemented",
            tuple((opt, int(slot)) for opt, slot in self.implemented),
        )


@dataclass(frozen=True)
class QueryReply(Reply):
    """Rows plus the metered cost units of producing them.

    ``epoch`` is the catalog epoch the query was served at — the snapshot
    all of its rows reflect.
    """

    tenant: object
    query: str
    rows: tuple
    units: float
    source: str = ""
    epoch: int = 0

    def _normalize(self) -> None:
        object.__setattr__(self, "rows", tuple(tuple(r) for r in self.rows))
        object.__setattr__(self, "epoch", int(self.epoch))


@dataclass(frozen=True)
class AdviseReply(Reply):
    """One advising round's verdict.

    ``epoch`` is the catalog epoch after adoption — queries from this
    epoch on can see the newly funded designs.
    """

    candidates: tuple
    funded: tuple
    adopted: tuple
    build_units: float
    epoch: int = 0

    def _normalize(self) -> None:
        object.__setattr__(self, "candidates", tuple(self.candidates))
        object.__setattr__(self, "funded", tuple(self.funded))
        object.__setattr__(self, "adopted", tuple(self.adopted))
        object.__setattr__(self, "epoch", int(self.epoch))


@dataclass(frozen=True)
class LedgerReply(Reply):
    """One tenant's statement: ``(slot, amount, memo)`` invoice lines."""

    tenant: object
    invoices: tuple
    total: float
    cloud_balance: float

    def _normalize(self) -> None:
        object.__setattr__(
            self,
            "invoices",
            tuple(
                (int(slot), float(amount), str(memo))
                for slot, amount, memo in self.invoices
            ),
        )


def _deep_tuple(value):
    """Lists and tuples -> nested tuples (hashable, wire-normal)."""
    if isinstance(value, (list, tuple)):
        return tuple(_deep_tuple(v) for v in value)
    return value


@dataclass(frozen=True)
class MetricsReply(Reply):
    """One deterministic dump of the metrics registry.

    ``metrics`` is :meth:`repro.obs.MetricsRegistry.wire`'s flat tuple
    form — ``(name, kind, ((label, value), ...), value)`` per series,
    histogram values as ``(buckets, counts, sum, count)`` — tuples and
    JSON scalars only, so the envelope round-trips exactly like every
    other one.
    """

    metrics: tuple = ()

    def _normalize(self) -> None:
        object.__setattr__(self, "metrics", _deep_tuple(self.metrics))


#: Exception class -> structured wire code, most-derived first. The scan
#: order matters: ``RevisionError`` must map to ``"revision"`` although it
#: is also a ``BidError``.
ERROR_CODES: tuple = (
    (RevisionError, "revision"),
    (BidError, "bid"),
    (MechanismError, "mechanism"),
    (GameConfigError, "game-config"),
    (SchemaError, "schema"),
    (QueryError, "query"),
    (ProtocolError, "protocol"),
    (RecoveryError, "recovery"),
    (OverloadedError, "overloaded"),
    (DeadlineError, "deadline_exceeded"),
    (ReproError, "internal"),
)

#: Codes a client may retry without risking a duplicated effect: the
#: request was shed *before* it reached the pricing core. Everything else
#: (a rejected bid, a malformed envelope, a failed query) is a verdict on
#: the request itself — retrying a non-idempotent rejected bid could
#: double-schedule it, so those codes never mark themselves retryable.
RETRYABLE_CODES = frozenset({"overloaded", "deadline_exceeded"})


def error_code(exc: BaseException) -> str:
    """The structured code for one exception (``"internal"`` fallback)."""
    if isinstance(exc, ProtocolError):
        return exc.code
    for cls, code in ERROR_CODES:
        if isinstance(exc, cls):
            return code
    return "internal"


@dataclass(frozen=True)
class ErrorReply(Reply):
    """A request failed; ``code`` is stable across releases, ``message``
    is human-oriented and free to change.

    ``retryable`` is *derived* from the code (:data:`RETRYABLE_CODES`) at
    construction — the wire field exists so remote clients can branch on
    one boolean without carrying the code table, but a decoded envelope
    always agrees with its code; a forged mismatch is normalized away.
    ``retry_after`` is the server's back-off hint in seconds (0 when it
    has none), only meaningful on retryable codes.
    """

    code: str
    message: str
    request_kind: str = ""
    retryable: bool = False
    retry_after: float = 0.0

    def _normalize(self) -> None:
        object.__setattr__(self, "code", str(self.code))
        object.__setattr__(self, "retryable", self.code in RETRYABLE_CODES)
        object.__setattr__(self, "retry_after", float(self.retry_after))

    @classmethod
    def of(cls, exc: BaseException, request_kind: str = "") -> "ErrorReply":
        """Map one exception onto its wire reply."""
        return cls(
            code=error_code(exc),
            message=str(exc),
            request_kind=request_kind,
            retry_after=getattr(exc, "retry_after", 0.0),
        )


# --------------------------------------------------------- wire encoding --

_REQUESTS = {
    cls.__name__: cls
    for cls in (
        Configure,
        SubmitBids,
        ReviseBid,
        AdvanceSlots,
        RunQuery,
        AdviseRequest,
        LedgerQuery,
        MetricsRequest,
    )
}

_REPLIES = {
    cls.__name__: cls
    for cls in (
        ConfigReply,
        BidsReply,
        ReviseReply,
        SlotReply,
        QueryReply,
        AdviseReply,
        LedgerReply,
        MetricsReply,
        ErrorReply,
    )
}


def _jsonable(value):
    """Envelope field -> JSON-able (tuples nest as lists)."""
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


def _tupled(value):
    """JSON field -> envelope-normal form (lists nest as tuples)."""
    if isinstance(value, list):
        return tuple(_tupled(v) for v in value)
    return value


def to_dict(envelope) -> dict:
    """One envelope -> its flat JSON-able dictionary."""
    cls = type(envelope)
    if cls.__name__ not in _REQUESTS and cls.__name__ not in _REPLIES:
        raise ProtocolError(f"{cls.__name__} is not a gateway envelope")
    out = {"api": API_VERSION, "kind": cls.__name__}
    for field in fields(envelope):
        out[field.name] = _jsonable(getattr(envelope, field.name))
    return out


def _from_dict(d, registry: dict, expected: str):
    if not isinstance(d, Mapping):
        raise ProtocolError(
            f"an envelope must be a JSON object, got {type(d).__name__}"
        )
    api = d.get("api")
    if api != API_VERSION:
        raise ProtocolError(
            f"envelope speaks API {api!r}; this gateway speaks {API_VERSION!r}",
            code="version",
        )
    kind = d.get("kind")
    # Only string tags can name a class; anything else (including
    # unhashable junk) is malformed, not merely unknown.
    cls = registry.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise ProtocolError(f"unknown {expected} kind {kind!r}")
    names = {field.name for field in fields(cls)}
    extra = set(d) - names - {"api", "kind"}
    if extra:
        raise ProtocolError(
            f"{kind} envelope carries unknown fields {sorted(extra)}"
        )
    kwargs = {}
    for field in fields(cls):
        if field.name in d:
            kwargs[field.name] = _tupled(d[field.name])
    try:
        return cls(**kwargs)
    except ProtocolError:
        raise
    except ReproError:
        raise
    except (TypeError, ValueError, KeyError) as exc:
        raise ProtocolError(f"malformed {kind} envelope: {exc}") from exc


def request_from_dict(d) -> Request:
    """Decode one request envelope; raises :class:`ProtocolError` on junk."""
    return _from_dict(d, _REQUESTS, "request")


def reply_from_dict(d) -> Reply:
    """Decode one reply envelope; raises :class:`ProtocolError` on junk."""
    return _from_dict(d, _REPLIES, "reply")


def envelope_from_dict(d):
    """Decode either direction (requests tried first)."""
    if isinstance(d, Mapping):
        kind = d.get("kind")
        if isinstance(kind, str) and kind in _REPLIES:
            return reply_from_dict(d)
    return request_from_dict(d)
