"""JSONL request traces: record, replay, and drive multi-tenant scenarios.

A trace is one request envelope per line, in wire form (see
:mod:`repro.gateway.envelopes`). The first line is normally a
``Configure`` envelope so the trace is self-contained::

    {"api": "1.6", "kind": "Configure", "optimizations": [["idx", 40.0]], "horizon": 4, "shards": 1}
    {"api": "1.6", "kind": "SubmitBids", "tenant": "ann", "bids": [["idx", 1, [30.0, 30.0]]]}
    {"api": "1.6", "kind": "AdvanceSlots", "slots": 4}
    {"api": "1.6", "kind": "LedgerQuery", "tenant": "ann"}

:func:`replay` feeds every line through
:meth:`~repro.gateway.service.PricingService.dispatch_json` — runs of
``SubmitBids`` lines take the columnar bulk path via batched dispatch,
so replaying a fleet-scale trace costs what driving the engine directly
costs. Malformed lines become ``ErrorReply`` entries, never exceptions:
a replay always finishes and always yields one reply per request line.
The ``replay`` CLI command (``python -m repro replay trace.jsonl``) wraps
this module; new multi-tenant scenarios are a trace file away.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ProtocolError, ReproError
from repro.gateway.envelopes import (
    ErrorReply,
    Request,
    SubmitBids,
    request_from_dict,
    to_dict,
)
from repro.gateway.service import PricingService
from repro.gateway.wal.records import iter_jsonl

__all__ = ["ReplayResult", "iter_trace", "write_trace", "replay", "replay_path"]


@dataclass(frozen=True)
class ReplayResult:
    """One replayed trace: wire replies plus the service that served it."""

    replies: tuple
    service: PricingService

    @property
    def errors(self) -> tuple:
        """The ``ErrorReply`` dictionaries, in trace order."""
        return tuple(r for r in self.replies if r.get("kind") == "ErrorReply")

    def counts(self) -> dict:
        """``{reply kind: count}`` over the whole replay."""
        out: dict = {}
        for reply in self.replies:
            kind = reply.get("kind", "?")
            out[kind] = out.get(kind, 0) + 1
        return out


def write_trace(path, requests: Iterable[Request]) -> int:
    """Serialize requests to one JSONL file; returns the line count."""
    lines = [json.dumps(to_dict(request)) for request in requests]
    Path(path).write_text(
        "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
    )
    return len(lines)


def iter_trace(path) -> Iterator[dict]:
    """Yield one raw JSON object per non-blank trace line.

    Unparseable lines — junk bytes that are not UTF-8 just as much as
    text that is not JSON — yield a synthetic ``{"kind": "<unparseable>"}``
    marker instead of raising, so a replay reports them as protocol
    errors in position rather than dying mid-file. The line discipline is
    :func:`repro.gateway.wal.records.iter_jsonl`, shared with the
    write-ahead log.
    """
    for line in iter_jsonl(path):
        if line.error is not None:
            yield {"kind": "<unparseable>", "error": line.error}
        else:
            yield line.payload


def replay(
    payloads: Iterable[dict], service: PricingService | None = None
) -> ReplayResult:
    """Dispatch raw envelope dictionaries in order; never raises per line.

    Consecutive ``SubmitBids`` lines are batched through
    one batched :meth:`PricingService.dispatch` to keep the fleet's columnar
    intake path; everything else dispatches one by one.
    """
    if service is None:
        service = PricingService()
    replies: list[dict] = []
    bulk: list[SubmitBids] = []

    def flush() -> None:
        if bulk:
            replies.extend(
                to_dict(reply) for reply in service.dispatch(list(bulk))
            )
            bulk.clear()

    for payload in payloads:
        try:
            request = request_from_dict(payload)
        except ReproError as exc:
            flush()
            kind = payload.get("kind") if isinstance(payload, dict) else None
            if isinstance(payload, dict) and "error" in payload and kind == "<unparseable>":
                exc = ProtocolError(f"unparseable trace line: {payload['error']}")
            replies.append(
                to_dict(ErrorReply.of(exc, request_kind=str(kind or "")))
            )
            continue
        if isinstance(request, SubmitBids) and not request.revisable:
            bulk.append(request)
            continue
        flush()
        replies.append(to_dict(service.dispatch(request)))
    flush()
    return ReplayResult(replies=tuple(replies), service=service)


def replay_path(
    path, service: PricingService | None = None
) -> ReplayResult:
    """Replay one JSONL trace file."""
    return replay(iter_trace(path), service=service)
