"""Substitutable optimizations: an index or a view, but not both.

Three tenants of a shared analytics cluster each want their scans faster.
For each of them, several physical designs are interchangeable (a B-tree
index, a materialized aggregate, a column projection): any one yields the
speedup, a second adds nothing. SubstOff/SubstOn pick which designs to
build, who shares which, and what everyone pays — and nobody can gain by
lying about values or wanted sets (paper Section 6).

Run:  python examples/substitutable_views.py
"""

from repro import SubstitutableBid, run_substoff, run_subston


def main() -> None:
    costs = {
        "btree-on-orders.date": 60.0,
        "mv-daily-revenue": 180.0,
        "projection-orders-narrow": 100.0,
    }
    print("available physical designs:")
    for name, cost in costs.items():
        print(f"  {name:<28} ${cost:.2f}")

    # Offline game (paper Example 5): one billing period, everyone present.
    offline_bids = {
        "etl-team": {"btree-on-orders.date": 100.0, "mv-daily-revenue": 100.0},
        "bi-team": {"projection-orders-narrow": 101.0},
        "ml-team": {
            "btree-on-orders.date": 60.0,
            "mv-daily-revenue": 60.0,
            "projection-orders-narrow": 60.0,
        },
        "ops-team": {"mv-daily-revenue": 70.0},
    }
    outcome = run_substoff(costs, offline_bids)
    print("\nSubstOff outcome (offline game):")
    for opt in outcome.implemented:
        users = sorted(outcome.serviced(opt))
        print(f"  build {opt}: serves {users} at ${outcome.shares[opt]:.2f} each")
    unserved = set(offline_bids) - set(outcome.grants)
    print(f"  unserved: {sorted(unserved)} (their bids never covered a share)")
    print(f"  payments cover builds exactly: ${outcome.total_payment:.2f} "
          f"vs ${outcome.total_cost:.2f}")

    # Online game (paper Example 8): tenants come and go over three slots.
    online_costs = {"idx-a": 60.0, "mv-b": 100.0, "proj-c": 50.0}
    online_bids = {
        "tenant-1": SubstitutableBid.over(1, [50.0, 50.0], {"idx-a", "mv-b"}),
        "tenant-2": SubstitutableBid.over(2, [50.0, 50.0], {"idx-a", "mv-b", "proj-c"}),
        "tenant-3": SubstitutableBid.over(3, [100.0], {"proj-c"}),
    }
    online = run_subston(online_costs, online_bids)
    print("\nSubstOn outcome (online game, three slots):")
    for user, opt in sorted(online.grants.items()):
        print(
            f"  {user} granted {opt} at slot {online.granted_at[user]}, "
            f"pays ${online.payment(user):.2f} on departure"
        )
    print(
        "  tenant-2 joins tenant-1's idx-a at slot 2 (halving both shares)\n"
        "  and is locked there: she may not defect to proj-c at slot 3 —\n"
        "  allowing the switch would make hiding wanted sets profitable."
    )
    print(f"  cloud balance: ${online.total_payment - online.total_cost:+.2f}")


if __name__ == "__main__":
    main()
