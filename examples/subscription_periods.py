"""Extensions: chained pricing periods and replication tiers.

Two scenarios beyond the paper's single-period, binary-optimization core:

1. Section 5's service model over a whole year — four monthly periods;
   the index is built once (build + maintenance recovered), then kept
   alive by maintenance-only games, dropped when nobody pays, and rebuilt
   at full price later.
2. Replication degree as tiers (1x/2x/3x), the paper's excluded
   continuous optimization discretized into a substitutable family.

Run:  python examples/subscription_periods.py
"""

from repro import AdditiveBid
from repro.extensions import (
    PeriodSpec,
    TierSpec,
    run_multi_period_addon,
    run_tiered_game,
)


def main() -> None:
    print("=== chained pricing periods (Section 5's model, run for real) ===")
    month = PeriodSpec(horizon=4, build_cost=80.0, maintenance_cost=20.0)
    periods = [month, month, month, month]
    bids_per_period = [
        # Month 1: a burst of analysts funds the build.
        {
            "ann": AdditiveBid.over(1, [60.0, 20.0, 0.0, 0.0]),
            "bob": AdditiveBid.over(1, [45.0, 15.0, 0.0, 0.0]),
        },
        # Month 2: lighter usage still covers maintenance.
        {"carol": AdditiveBid.over(1, [12.0, 12.0, 0.0, 0.0])},
        # Month 3: nobody shows up; the index is dropped.
        {},
        # Month 4: a newcomer has to fund a full rebuild.
        {"dave": AdditiveBid.over(1, [70.0, 40.0, 0.0, 0.0])},
    ]
    chain = run_multi_period_addon(periods, bids_per_period)
    for k, (outcome, cost) in enumerate(zip(chain.outcomes, chain.charged_costs)):
        status = "built/kept" if outcome.implemented else "not built / dropped"
        payments = {
            u: round(p, 2) for u, p in outcome.payments.items() if p > 0
        }
        print(f"  month {k + 1}: offered at ${cost:.0f} -> {status}; "
              f"payments {payments or '{}'}")
    print(f"  year total: collected ${chain.total_payment:.2f} against "
          f"${chain.total_cost:.2f} of costs (balance "
          f"${chain.cloud_balance:+.2f})")

    print("\n=== replication tiers (discretized continuous optimization) ===")
    tiers = [
        TierSpec("replicas-1x", 1, 30.0),
        TierSpec("replicas-2x", 2, 70.0),
        TierSpec("replicas-3x", 3, 150.0),
    ]
    values = {
        "latency-sensitive-1": {"replicas-3x": 80.0, "replicas-2x": 45.0},
        "latency-sensitive-2": {"replicas-3x": 80.0, "replicas-2x": 45.0},
        "batch-tenant": {"replicas-1x": 31.0},
        "small-tenant": {"replicas-1x": 12.0},
    }
    outcome = run_tiered_game(tiers, values)
    for tier_id in outcome.outcome.implemented:
        users = sorted(outcome.outcome.serviced(tier_id))
        share = outcome.outcome.shares[tier_id]
        print(f"  build {tier_id}: serves {users} at ${share:.2f} each")
    unserved = sorted(set(values) - set(outcome.outcome.grants))
    print(f"  unserved: {unserved}")
    print(
        f"  payments ${outcome.outcome.total_payment:.2f} cover "
        f"${outcome.outcome.total_cost:.2f} exactly\n"
        "  (note: tier games reuse SubstOff's machinery; the paper's\n"
        "   truthfulness proof covers equal-value substitutes only)"
    )


if __name__ == "__main__":
    main()
