"""An index OR a view: substitutable pricing from real engine numbers.

For the final snapshot, the cloud could build a (pid, halo) materialized
view or a hash index on halo — either speeds up the astronomers' halo
membership queries, and nobody needs both (Section 6's motivating case).
This example derives each option's savings and storage cost from the
relational engine, then lets SubstOff decide what to build and how to
split the bill.

Run:  python examples/index_or_view.py   (~10 s)
"""

from repro import run_substoff
from repro.astro import UniverseConfig, UseCaseConfig, build_use_case
from repro.astro.alternatives import build_index_or_view_game


def main() -> None:
    print("building the astronomy substrate (scaled-down config)...")
    use_case = build_use_case(
        UseCaseConfig(
            universe=UniverseConfig(
                particles=1200, halos=16, snapshots=10, min_halo_members=8
            ),
            halos_per_group=3,
        )
    )
    game = build_index_or_view_game(use_case, executions=60)

    print(f"\ntwo interchangeable optimizations for {game.table_name}:")
    for opt, cost in game.costs.items():
        print(f"  {opt:<22} build+store cost ${cost:.2f}")
    print("\nper-astronomer savings (minutes/execution) and period value:")
    print(f"  {'user':<6} {'via view':>9} {'via index':>10} {'value ($, 60 exec)':>19}")
    for user, value in sorted(game.values.items()):
        print(
            f"  {user:<6} {game.view_saving_min[user]:>9.2f} "
            f"{game.index_saving_min[user]:>10.2f} {value:>19.2f}"
        )
    print("  (the substitutable model needs one value per user; we take the")
    print("   conservative minimum of the two savings)")

    outcome = run_substoff(game.costs, game.bids)
    print("\nSubstOff outcome:")
    if not outcome.implemented:
        print("  nothing affordable: no optimization is built")
    for opt in outcome.implemented:
        users = sorted(outcome.serviced(opt))
        print(
            f"  build {opt}: serves users {users} at "
            f"${outcome.shares[opt]:.2f} each"
        )
    not_served = sorted(set(game.bids) - set(outcome.grants))
    if not_served:
        print(f"  unserved users: {not_served}")
    print(
        f"  payments ${outcome.total_payment:.2f} cover builds "
        f"${outcome.total_cost:.2f} exactly; the cheaper-per-share option"
        f" wins the phase loop"
    )


if __name__ == "__main__":
    main()
