"""The paper's motivating use-case, end to end (Section 2 / 7.2).

Builds a small synthetic universe, detects halos with friends-of-friends,
loads the snapshots into the mini relational engine, measures each
astronomer's merger-tree workload, prices the 27 (here: 10) materialized
views, and runs one AddOn pricing round so the collaboration shares the
view costs.

Run:  python examples/astronomy_collaboration.py   (~10 s)
"""

from repro import AdditiveBid, run_addon
from repro.astro import UniverseConfig, UseCaseConfig, build_use_case
from repro.core import accounting


def main() -> None:
    print("building a synthetic universe + engine (scaled-down config)...")
    use_case = build_use_case(
        UseCaseConfig(
            universe=UniverseConfig(
                particles=1200, halos=16, snapshots=10, min_halo_members=8
            ),
            halos_per_group=3,
        )
    )

    print("\nastronomer workloads (runtimes on the relational engine,")
    print("calibrated so the first runs the paper's 81 minutes):")
    for k, workload in enumerate(use_case.workloads):
        print(
            f"  {workload.name:<30} {use_case.runtimes_min[k]:6.1f} min, "
            f"${use_case.baseline_dollars(k):.3f}/execution unoptimized"
        )

    final_view = use_case.view_names[-1]
    print(f"\nmost valuable optimization: {final_view} "
          f"(the final snapshot is re-read for every merger-tree step)")
    for k, workload in enumerate(use_case.workloads):
        saved = use_case.savings_min.get((k, final_view), 0.0)
        print(f"  saves {workload.name:<30} {saved:5.1f} min "
              f"(${use_case.value_dollars(k, final_view):.3f}/execution)")

    # One quarter of shared usage: everyone executes 60 times.
    executions = 60
    cost = use_case.view_costs[final_view]
    bids = {
        k: AdditiveBid.single_slot(
            1, executions * use_case.value_dollars(k, final_view)
        )
        for k in range(len(use_case.workloads))
    }
    outcome = run_addon(cost, bids, horizon=1)
    print(f"\npricing {final_view} (cost ${cost:.2f}) for one quarter "
          f"at {executions} executions/user with AddOn:")
    for k in sorted(outcome.cumulative(1)):
        utility = accounting.addon_user_utility(outcome, k, bids[k])
        print(
            f"  astronomer {k} pays ${outcome.payment(k):.2f} "
            f"for ${bids[k].total():.2f} of savings (utility ${utility:+.2f})"
        )
    left_out = set(bids) - set(outcome.cumulative(1))
    if left_out:
        print(f"  excluded (share exceeds their value): {sorted(left_out)}")
    print(f"  cloud recovers ${outcome.total_payment:.2f} == cost, exactly")


if __name__ == "__main__":
    main()
