"""Quickstart: price one shared optimization with the Shapley mechanism.

A cloud hosts a shared dataset. Building a covering index costs $120 for
the coming month. Four analysts would each save some money from faster
queries. Who gets access, and who pays what?

Run:  python examples/quickstart.py
"""

from repro import run_addoff, run_shapley


def main() -> None:
    index_cost = 120.0
    declared_savings = {
        "ann": 80.0,   # heavy dashboard user
        "bob": 45.0,   # nightly batch jobs
        "carol": 42.0, # ad-hoc analytics
        "dave": 9.0,   # rarely queries this table
    }

    print("One optimization, four selfish bidders")
    print(f"  index cost: ${index_cost:.2f}")
    for user, value in declared_savings.items():
        print(f"  {user:>6} bids ${value:.2f}")

    result = run_shapley(index_cost, declared_savings)
    print("\nShapley Value Mechanism outcome:")
    if not result.implemented:
        print("  nobody can jointly afford the index; it is not built")
    else:
        print(f"  serviced: {sorted(result.serviced)}")
        print(f"  everyone pays the same share: ${result.price:.2f}")
        print(f"  collected ${result.revenue:.2f} == cost (exact recovery)")
    print(
        "  dave bid below every share he was offered, so he is excluded —\n"
        "  and because the mechanism is truthful, inflating his bid would\n"
        "  only buy him an overpriced grant."
    )

    # Several independent (additive) optimizations at once: AddOff.
    costs = {"covering-index": 120.0, "monthly-rollup-view": 60.0}
    bids = {
        "covering-index": declared_savings,
        "monthly-rollup-view": {"ann": 22.0, "bob": 25.0, "carol": 25.0},
    }
    outcome = run_addoff(costs, bids)
    print("\nAddOff over two additive optimizations:")
    for opt in costs:
        serviced = sorted(outcome.serviced(opt))
        print(f"  {opt}: implemented={bool(serviced)}, serviced={serviced}")
    for user in declared_savings:
        print(f"  {user:>6} owes ${outcome.payment(user):.2f} in total")
    print(f"  cloud collects ${outcome.total_payment:.2f} "
          f"for ${outcome.total_cost:.2f} of builds")


if __name__ == "__main__":
    main()
