"""Why lying does not pay: strategy agents vs the mechanisms.

Pits every manipulation the paper analyzes against truthful play on the
same games: value shading, value inflation, free-riding by hiding early
slots (Example 2), sybil identities (Alice, Section 5.2), and substitute-
set lies (Example 7). The mechanisms price each of them to a loss or a
wash; only the benign sybil play gains, and it provably hurts no one.

Run:  python examples/strategic_bidding.py
"""

from repro import AdditiveBid, SubstitutableBid, run_addon, run_subston
from repro.agents import (
    OverBidder,
    SetLiar,
    SybilSplitter,
    TimeShifter,
    TruthfulAdditive,
    TruthfulSubstitutable,
    UnderBidder,
)


def play(cost, agents, horizon):
    bids = {}
    for agent in agents:
        bids.update(agent.declarations())
    outcome = run_addon(cost, bids, horizon=horizon)
    return {agent.user: agent.utility(outcome) for agent in agents}


def main() -> None:
    cost = 100.0
    others = [
        TruthfulAdditive("rival-1", AdditiveBid.over(1, [60.0])),
        TruthfulAdditive("rival-2", AdditiveBid.over(1, [45.0, 15.0])),
    ]
    truth = AdditiveBid.over(1, [30.0, 25.0])

    print(f"one optimization, cost ${cost:.0f}; our user truly values "
          f"$30 (slot 1) + $25 (slot 2)\n")
    strategies = [
        ("truthful", TruthfulAdditive("me", truth)),
        ("underbid 50%", UnderBidder("me", truth, factor=0.5)),
        ("overbid 3x", OverBidder("me", truth, factor=3.0)),
        ("hide slot 1", TimeShifter("me", truth, delay=1)),
    ]
    print(f"{'strategy':<16} {'true utility':>12}")
    baseline = None
    for name, agent in strategies:
        utility = play(cost, others + [agent], horizon=2)["me"]
        baseline = utility if baseline is None else baseline
        marker = "" if utility >= baseline - 1e-9 else "  <- worse than truth"
        print(f"{name:<16} {utility:>12.2f}{marker}")

    print("\nAlice's sybils (Section 5.2): 99 users worth $1, Alice worth $101,")
    print(f"optimization cost $101:")
    crowd = [
        TruthfulAdditive(f"u{k}", AdditiveBid.single_slot(1, 1.0)) for k in range(99)
    ]
    alice_truth = AdditiveBid.single_slot(1, 101.0)
    solo = play(101.0, crowd + [TruthfulAdditive("alice", alice_truth)], 1)
    dual = play(101.0, crowd + [SybilSplitter("alice", alice_truth, identities=2)], 1)
    print(f"  one account : alice utility {solo['alice']:.2f}, u0 utility {solo['u0']:.2f}")
    print(f"  two accounts: alice utility {dual['alice']:.2f}, u0 utility {dual['u0']:.2f}")
    print("  her gain services 99 previously excluded users — nobody loses"
          " (Proposition 2)")

    print("\nsubstitute-set lie (Example 7):")
    costs = {1: 60.0, 2: 180.0, 3: 100.0}
    rivals = [
        TruthfulSubstitutable(1, SubstitutableBid.single_slot(1, 100.0, {1, 2})),
        TruthfulSubstitutable(2, SubstitutableBid.single_slot(1, 101.0, {3})),
        TruthfulSubstitutable(4, SubstitutableBid.single_slot(1, 70.0, {2})),
    ]
    truth_3 = SubstitutableBid.single_slot(1, 60.0, {1, 2, 3})
    for name, agent in [
        ("truthful sets", TruthfulSubstitutable(3, truth_3)),
        ("drop option 1", SetLiar(3, truth_3, {2, 3})),
    ]:
        bids = {}
        for a in rivals + [agent]:
            bids.update(a.declarations())
        outcome = run_subston(costs, bids, horizon=1)
        print(f"  {name:<14} -> utility {agent.utility(outcome):.2f}")


if __name__ == "__main__":
    main()
