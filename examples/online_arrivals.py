"""A live month of the cloud service: arrivals, revisions, departures.

Replays the paper's Example 3 plus an upward bid revision through the
:mod:`repro.cloudsim` service loop, printing the event log and the ledger.
Watch the cost-share fall from $100 to $25 as later users join, and the
cloud end the month with a surplus (it over-recovers; it never loses).

Run:  python examples/online_arrivals.py
"""

from repro import AdditiveBid
from repro.cloudsim import CloudService, OptimizationCatalog


def main() -> None:
    catalog = OptimizationCatalog.from_costs({"hot-partition-index": 100.0})
    service = CloudService(catalog, horizon=3, mode="additive")

    print("slot 0: two users sign up for the coming month")
    service.place_additive_bid(
        "ursula", "hot-partition-index", AdditiveBid.over(1, [101.0])
    )
    service.place_additive_bid(
        "victor", "hot-partition-index", AdditiveBid.over(1, [16.0, 16.0, 16.0])
    )

    service.advance_slot()
    print("slot 1 processed: only ursula's residual covers the cost;"
          " she departs paying $100")

    print("slot 1: two more users arrive for slot 2, and victor revises"
          " his slot-3 value upward")
    service.place_additive_bid(
        "wanda", "hot-partition-index", AdditiveBid.over(2, [26.0])
    )
    service.place_additive_bid(
        "xavier", "hot-partition-index", AdditiveBid.over(2, [26.0])
    )
    service.revise_additive_bid("victor", "hot-partition-index", {3: 20.0})

    report = service.run_to_end()

    print("\nEvent log:")
    for event in report.events.all():
        print(f"  t={event.slot}: {type(event).__name__} {event}")

    print("\nLedger:")
    for entry in report.ledger.entries:
        sign = "+" if entry.amount >= 0 else "-"
        print(
            f"  t={entry.slot} {entry.kind:<8} {str(entry.party):<22} "
            f"{sign}${abs(entry.amount):.2f} {entry.memo}"
        )
    print(f"\ncloud revenue ${report.ledger.revenue:.2f} "
          f"against ${report.ledger.outlays:.2f} of builds "
          f"-> balance ${report.cloud_balance:+.2f} (never negative)")
    for user in ("ursula", "victor", "wanda", "xavier"):
        print(f"  {user:>7} paid ${report.payments.get(user, 0.0):.2f}")


if __name__ == "__main__":
    main()
