"""Unit tests for AddOff (offline additive mechanism)."""

from __future__ import annotations

import pytest

from repro import MechanismError, run_addoff
from repro.core import accounting


@pytest.fixture()
def game():
    costs = {"idx": 100.0, "view": 60.0, "replica": 500.0}
    bids = {
        "idx": {1: 60.0, 2: 60.0, 3: 10.0},
        "view": {1: 20.0, 2: 25.0, 3: 30.0},
        "replica": {1: 100.0, 2: 100.0},
    }
    return costs, bids


class TestOutcome:
    def test_independent_per_optimization(self, game):
        costs, bids = game
        outcome = run_addoff(costs, bids)
        assert outcome.serviced("idx") == frozenset({1, 2})
        assert outcome.serviced("view") == frozenset({1, 2, 3})
        assert outcome.serviced("replica") == frozenset()
        assert outcome.implemented == frozenset({"idx", "view"})

    def test_grants(self, game):
        costs, bids = game
        outcome = run_addoff(costs, bids)
        assert (1, "idx") in outcome.grants
        assert (3, "idx") not in outcome.grants
        assert (3, "view") in outcome.grants

    def test_payments_sum_per_user(self, game):
        costs, bids = game
        outcome = run_addoff(costs, bids)
        assert outcome.payment(1) == pytest.approx(50.0 + 20.0)
        assert outcome.payment(3) == pytest.approx(20.0)
        assert outcome.payment_for(2, "idx") == pytest.approx(50.0)

    def test_cost_recovery(self, game):
        costs, bids = game
        outcome = run_addoff(costs, bids)
        assert outcome.total_payment == pytest.approx(outcome.total_cost)
        assert outcome.total_cost == pytest.approx(160.0)

    def test_total_utility_truthful(self, game):
        costs, bids = game
        outcome = run_addoff(costs, bids)
        # Value: idx 60+60, view 20+25+30; cost 160.
        assert accounting.addoff_total_utility(outcome, bids) == pytest.approx(35.0)

    def test_user_utility(self, game):
        costs, bids = game
        outcome = run_addoff(costs, bids)
        # User 1: values 60 + 20, pays 50 + 20.
        assert accounting.addoff_user_utility(outcome, 1, bids) == pytest.approx(10.0)
        # User 3: value 30 on view, pays 20.
        assert accounting.addoff_user_utility(outcome, 3, bids) == pytest.approx(10.0)


class TestEdges:
    def test_optimization_without_bids(self):
        outcome = run_addoff({"a": 10.0}, {})
        assert outcome.implemented == frozenset()
        assert outcome.total_payment == 0.0

    def test_unknown_optimization_in_bids_rejected(self):
        with pytest.raises(MechanismError):
            run_addoff({"a": 10.0}, {"b": {1: 5.0}})

    def test_empty_game(self):
        outcome = run_addoff({}, {})
        assert outcome.implemented == frozenset()
        assert outcome.total_cost == 0.0

    def test_missing_user_defaults_to_no_bid(self, game):
        costs, bids = game
        outcome = run_addoff(costs, bids)
        # User 3 never bid on replica: pays nothing there.
        assert outcome.payment_for(3, "replica") == 0.0
