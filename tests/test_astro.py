"""Tests for the astronomy substrate: simulator, halo finder, use case."""

from __future__ import annotations

import numpy as np
import pytest

from repro.astro import (
    Ec2Pricing,
    UniverseConfig,
    UniverseSimulator,
    friends_of_friends,
)
from repro.errors import GameConfigError


class TestFriendsOfFriends:
    def test_two_clear_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.5, size=(40, 3)) + np.array([10.0, 10, 10])
        b = rng.normal(0.0, 0.5, size=(30, 3)) + np.array([40.0, 40, 40])
        positions = np.vstack([a, b])
        labels = friends_of_friends(positions, linking_length=2.0, min_members=5)
        assert set(labels) == {0, 1}
        # Label 0 is the bigger cluster.
        assert np.sum(labels == 0) == 40
        assert np.sum(labels == 1) == 30

    def test_isolated_points_unclustered(self):
        positions = np.array([[0.0, 0, 0], [100.0, 0, 0], [0.0, 100, 0]])
        labels = friends_of_friends(positions, linking_length=1.0, min_members=2)
        assert list(labels) == [-1, -1, -1]

    def test_min_members_threshold(self):
        positions = np.array([[0.0, 0, 0], [0.5, 0, 0], [1.0, 0, 0]])
        labels = friends_of_friends(positions, linking_length=0.8, min_members=4)
        assert list(labels) == [-1, -1, -1]
        labels = friends_of_friends(positions, linking_length=0.8, min_members=3)
        assert list(labels) == [0, 0, 0]

    def test_chain_merging_across_cells(self):
        # A chain of points, each within linking length of the next, spans
        # several grid cells but forms one cluster.
        positions = np.array([[float(i) * 0.9, 0.0, 0.0] for i in range(10)])
        labels = friends_of_friends(positions, linking_length=1.0, min_members=2)
        assert set(labels) == {0}

    def test_empty_input(self):
        assert len(friends_of_friends(np.empty((0, 3)), 1.0)) == 0

    def test_invalid_parameters(self):
        positions = np.zeros((2, 3))
        with pytest.raises(GameConfigError):
            friends_of_friends(positions, linking_length=0.0)
        with pytest.raises(GameConfigError):
            friends_of_friends(positions, linking_length=1.0, min_members=0)


SMALL_UNIVERSE = UniverseConfig(
    particles=500, halos=10, snapshots=6, min_halo_members=6
)


class TestSimulator:
    def test_snapshot_count_and_shapes(self):
        snapshots = UniverseSimulator(SMALL_UNIVERSE, rng=1).run()
        assert len(snapshots) == 6
        for s in snapshots:
            assert len(s) == 500
            assert s.positions.shape == (500, 3)

    def test_halos_detected(self):
        snapshots = UniverseSimulator(SMALL_UNIVERSE, rng=1).run()
        final = snapshots[-1]
        assert final.clustered_fraction() > 0.5
        assert final.halo.max() >= 1  # at least two halos

    def test_detected_halos_align_with_truth(self):
        """Most particles sharing a detected halo share a true halo."""
        snapshots = UniverseSimulator(SMALL_UNIVERSE, rng=1).run()
        final = snapshots[-1]
        agreements = 0
        total = 0
        for label in set(final.halo[final.halo >= 0]):
            mask = final.halo == label
            truths = final.true_halo[mask]
            values, counts = np.unique(truths, return_counts=True)
            agreements += counts.max()
            total += counts.sum()
        assert agreements / total > 0.9

    def test_deterministic_given_seed(self):
        a = UniverseSimulator(SMALL_UNIVERSE, rng=7).run()
        b = UniverseSimulator(SMALL_UNIVERSE, rng=7).run()
        assert np.array_equal(a[-1].halo, b[-1].halo)
        assert np.array_equal(a[-1].positions, b[-1].positions)

    def test_mergers_reduce_live_halos(self):
        cfg = UniverseConfig(
            particles=500, halos=12, snapshots=12, merge_probability=1.0,
            merge_distance=1e9, min_halo_members=6,
        )
        snapshots = UniverseSimulator(cfg, rng=3).run()
        first_truth = len(set(snapshots[0].true_halo[snapshots[0].true_halo >= 0]))
        last_truth = len(set(snapshots[-1].true_halo[snapshots[-1].true_halo >= 0]))
        assert last_truth < first_truth

    def test_table_conversion(self):
        snapshots = UniverseSimulator(SMALL_UNIVERSE, rng=1).run()
        table = snapshots[0].to_table()
        assert len(table) == 500
        assert table.schema.row_width == 72
        assert table.name == "snap_01"

    def test_config_validation(self):
        with pytest.raises(GameConfigError):
            UniverseConfig(particles=5, halos=10)


class TestPricing:
    def test_compute_dollars(self):
        pricing = Ec2Pricing(hourly_rate=0.25)
        assert pricing.compute_dollars(60.0) == pytest.approx(0.25)
        # The paper's anchor: 44 minutes ~ 18 cents.
        assert pricing.compute_dollars(44.0) == pytest.approx(0.1833, abs=1e-3)

    def test_mean_view_cost_normalization(self):
        pricing = Ec2Pricing().with_mean_view_cost([100, 200, 300], 2.31)
        costs = [pricing.view_dollars(s) for s in (100, 200, 300)]
        assert sum(costs) / 3 == pytest.approx(2.31)
        assert costs[2] == pytest.approx(3 * costs[0])

    def test_validation(self):
        with pytest.raises(GameConfigError):
            Ec2Pricing(hourly_rate=0.0)
        with pytest.raises(GameConfigError):
            Ec2Pricing().with_mean_view_cost([], 2.31)


class TestUseCase:
    """Runs against the shared session fixture from conftest.py."""

    def test_six_workloads_with_strides(self, small_use_case):
        strides = [w.stride for w in small_use_case.workloads]
        assert strides == [1, 2, 4, 1, 2, 4]

    def test_halo_groups_disjoint(self, small_use_case):
        g1 = set(small_use_case.workloads[0].final_halos)
        g2 = set(small_use_case.workloads[3].final_halos)
        assert g1 and g2
        assert not (g1 & g2)

    def test_calibrated_runtime(self, small_use_case):
        assert small_use_case.runtimes_min[0] == pytest.approx(81.0)
        # Strided workloads are cheaper.
        assert small_use_case.runtimes_min[1] < small_use_case.runtimes_min[0]
        assert small_use_case.runtimes_min[2] < small_use_case.runtimes_min[1]

    def test_view_costs_mean_normalized(self, small_use_case):
        costs = list(small_use_case.view_costs.values())
        assert sum(costs) / len(costs) == pytest.approx(2.31)

    def test_final_view_most_valuable(self, small_use_case):
        uc = small_use_case
        final_view = uc.view_names[-1]
        for user in range(6):
            final_saving = uc.savings_min.get((user, final_view), 0.0)
            others = [
                uc.savings_min.get((user, v), 0.0) for v in uc.view_names[:-1]
            ]
            assert final_saving > max(others)

    def test_savings_do_not_exceed_runtime(self, small_use_case):
        uc = small_use_case
        for user in range(6):
            total_saving = sum(
                uc.savings_min.get((user, v), 0.0) for v in uc.view_names
            )
            assert total_saving < uc.runtimes_min[user]

    def test_strided_user_untouched_views_worthless(self, small_use_case):
        uc = small_use_case
        # User 2 (stride 4, 8 snapshots) touches snapshots 8 and 4 only.
        touched = {t for t in uc.workloads[2].snapshot_tables(uc.table_names)}
        for table, view in zip(uc.table_names, uc.view_names):
            saving = uc.savings_min.get((2, view), 0.0)
            if table in touched:
                assert saving > 0
            else:
                assert saving == 0.0

    def test_analytic_savings_match_actual_execution(self, small_use_case):
        """The what-if identity: measured = baseline - sum(per-view savings)."""
        uc = small_use_case
        baseline = uc.run_workload_minutes(0, with_views=())
        assert baseline == pytest.approx(uc.runtimes_min[0], rel=1e-9)
        with_all = uc.run_workload_minutes(0, with_views=uc.view_names)
        analytic = uc.runtimes_min[0] - sum(
            uc.savings_min.get((0, v), 0.0) for v in uc.view_names
        )
        assert with_all == pytest.approx(analytic, rel=1e-6)

    def test_single_view_savings_match(self, small_use_case):
        uc = small_use_case
        final_view = uc.view_names[-1]
        with_one = uc.run_workload_minutes(0, with_views=[final_view])
        expected = uc.runtimes_min[0] - uc.savings_min[(0, final_view)]
        assert with_one == pytest.approx(expected, rel=1e-6)
        # Leave the catalog clean for other tests.
        uc.run_workload_minutes(0, with_views=())

    def test_values_priced_at_hourly_rate(self, small_use_case):
        uc = small_use_case
        final_view = uc.view_names[-1]
        minutes = uc.savings_min[(0, final_view)]
        assert uc.value_dollars(0, final_view) == pytest.approx(
            minutes / 60.0 * uc.pricing.hourly_rate
        )
