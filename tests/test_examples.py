"""Every example script must run cleanly and print its key conclusions."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


def test_examples_directory_contents():
    names = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in names
    assert len(names) >= 3


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Shapley Value Mechanism outcome" in out
    assert "everyone pays the same share: $40.00" in out
    assert "exact recovery" in out


def test_online_arrivals():
    out = run_example("online_arrivals.py")
    assert "balance $+75.00" in out
    assert "ursula paid $100.00" in out
    assert "wanda paid $25.00" in out


def test_substitutable_views():
    out = run_example("substitutable_views.py")
    assert "build btree-on-orders.date: serves ['etl-team', 'ml-team'] at $30.00" in out
    assert "tenant-2 granted idx-a at slot 2" in out
    assert "cloud balance: $+0.00" in out


def test_strategic_bidding():
    out = run_example("strategic_bidding.py")
    assert "truthful" in out
    assert "worse than truth" in out
    assert "alice utility 99.00" in out


def test_subscription_periods():
    out = run_example("subscription_periods.py")
    assert "offered at $20 -> built/kept" in out
    assert "balance $+0.00" in out
    assert "replicas-2x" in out


@pytest.mark.slow
def test_astronomy_collaboration():
    out = run_example("astronomy_collaboration.py")
    assert "81.0 min" in out
    assert "most valuable optimization" in out
    assert "cloud recovers" in out


@pytest.mark.slow
def test_index_or_view():
    out = run_example("index_or_view.py")
    assert "two interchangeable optimizations" in out
    assert "SubstOff outcome" in out
    assert "cover builds" in out
