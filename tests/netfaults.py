"""Deterministic network-fault injection for the gateway server.

Where ``tests/crashpoints.py`` kills the *service* at WAL boundaries,
this module breaks the *network* around a live
:class:`~repro.gateway.server.GatewayServer`: clients that dribble bytes
(slow-loris), vanish mid-body, or tear the connection down before
reading their reply, and handlers stalled at the pre-dispatch seam. Each
fault is a plain blocking function against ``(host, port)``, so property
tests can interleave them at exact points of a sequential workload and
still compare final state bit-for-bit against a serial, fault-free run
(:func:`serial_fingerprint`).

The invariant every fault must preserve: a request the server never
fully received (or cancelled before dispatch) has **no** effect, and a
request the server dispatched has **exactly** its serial effect —
regardless of what the network did afterwards.

This module is a helper library for ``tests/test_netfaults.py``, not a
test module itself.
"""

from __future__ import annotations

import json
import socket
import time

from crashpoints import fingerprint
from repro.gateway.envelopes import (
    AdvanceSlots,
    Configure,
    LedgerQuery,
    SubmitBids,
    to_dict,
)
from repro.gateway.service import PricingService

__all__ = [
    "workload",
    "serial_fingerprint",
    "drive",
    "slow_loris",
    "mid_body_disconnect",
    "torn_write",
    "Stall",
    "wait_for_dispatched",
]


def workload(tenants: int = 3, opts: int = 4, horizon: int = 6) -> list:
    """A small deterministic multi-tenant scenario (requests, in order)."""
    steps: list = [
        Configure(
            optimizations=tuple((f"opt{i}", 4.0) for i in range(opts)),
            horizon=horizon,
        )
    ]
    for index in range(tenants * opts):
        tenant = f"t{index % tenants}"
        opt = f"opt{index % opts}"
        steps.append(
            SubmitBids(
                tenant=tenant,
                bids=((opt, 1, (5.0 + index, 5.0 + index)),),
            )
        )
    steps.append(AdvanceSlots(slots=2))
    for index in range(tenants):
        steps.append(LedgerQuery(tenant=f"t{index}"))
    steps.append(AdvanceSlots(slots=1))
    return steps


def serial_fingerprint(steps) -> dict:
    """Final-state fingerprint of a serial, fault-free, network-free run.

    Drives the batched dispatch path one envelope at a time — the same facade
    entry the server's group commit uses — so the comparison isolates
    what the *fault layer* did, not scalar-vs-columnar intake (whose
    equivalence ``tests/test_gateway.py`` covers separately).
    """
    service = PricingService()
    for step in steps:
        service.dispatch([step])
    return fingerprint(service)


def drive(client, steps) -> list:
    """Send every step through one blocking client; returns the replies."""
    return [client.request(step) for step in steps]


def _connect(host: str, port: int) -> socket.socket:
    sock = socket.create_connection((host, port), timeout=10)
    sock.settimeout(10)
    return sock


def _read_all(sock: socket.socket) -> bytes:
    chunks = []
    try:
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    except OSError:
        pass
    return b"".join(chunks)


def slow_loris(host: str, port: int) -> bytes:
    """Dribble half a request head and stall until the server cuts us off.

    Returns the raw response bytes — the server must answer with a typed
    ``deadline_exceeded`` 408, never leave the connection hanging.
    """
    sock = _connect(host, port)
    try:
        sock.sendall(b"POST /v1/bids HTTP/1.1\r\nContent-Le")
        return _read_all(sock)
    finally:
        sock.close()


def mid_body_disconnect(host: str, port: int, request=None) -> None:
    """Promise a body, send half of it, vanish.

    The envelope (a mutating one by default) must never dispatch: the
    server cannot know how it would have ended.
    """
    if request is None:
        request = SubmitBids(tenant="ghost", bids=(("opt0", 1, (99.0,)),))
    body = json.dumps(to_dict(request)).encode()
    head = (
        f"POST /v1/bids HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
    ).encode()
    sock = _connect(host, port)
    try:
        sock.sendall(head + body[: len(body) // 2])
    finally:
        sock.close()


def torn_write(host: str, port: int, request) -> None:
    """Send a complete valid request, then vanish before the reply.

    The write side tears instead of the read side: the server dispatched
    the envelope (it fully arrived), discovers the dead peer only when
    responding, and must absorb that quietly. The effect **is** durable —
    serial baselines must include this envelope.
    """
    payload = to_dict(request)
    body = json.dumps(payload).encode()
    path = "/v1/bids" if payload["kind"] in ("SubmitBids", "ReviseBid") else "/v1/slots"
    head = (
        f"POST {path} HTTP/1.1\r\nContent-Length: {len(body)}\r\n\r\n"
    ).encode()
    sock = _connect(host, port)
    try:
        sock.sendall(head + body)
        # Abort with RST (SO_LINGER 0) instead of a graceful FIN so the
        # server's response write genuinely fails.
        sock.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            b"\x01\x00\x00\x00\x00\x00\x00\x00",
        )
    finally:
        sock.close()


class Stall:
    """A ``stall_hook`` that sleeps before chosen batches (loop-side).

    ``delays`` maps batch index (0-based, in flush order) to seconds of
    stall. Everything the server claims *after* the stall must re-check
    for deadline-cancelled entries — that re-check is exactly what this
    seam exists to exercise.
    """

    def __init__(self, delays: dict) -> None:
        self.delays = dict(delays)
        self.batches = 0
        self.seen: list[list] = []

    async def __call__(self, requests: list) -> None:
        import asyncio

        index = self.batches
        self.batches += 1
        self.seen.append(list(requests))
        delay = self.delays.get(index, 0.0)
        if delay:
            await asyncio.sleep(delay)


def wait_for_dispatched(client, count: int, *, timeout: float = 5.0) -> dict:
    """Poll ``/v1/healthz`` until ``dispatched`` reaches ``count``.

    Faults like :func:`torn_write` get no reply to synchronize on; the
    health counters are the observable truth of what reached the core.
    """
    deadline = time.monotonic() + timeout
    while True:
        health = client.health()
        if health["dispatched"] >= count:
            return health
        if time.monotonic() > deadline:
            raise AssertionError(
                f"server never dispatched {count} envelopes: {health}"
            )
        time.sleep(0.005)
