"""Integration tests for the cloud-service simulation layer."""

from __future__ import annotations

import pytest

from repro import AdditiveBid, GameConfigError, MechanismError, SubstitutableBid
from repro.cloudsim import (
    BillingLedger,
    CloudService,
    EventLog,
    OptimizationCatalog,
    OptimizationImplemented,
    OptimizationSpec,
    UserCharged,
    UserGranted,
)


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = OptimizationCatalog()
        catalog.register(OptimizationSpec("idx", 10.0, kind="index"))
        assert "idx" in catalog
        assert catalog.get("idx").cost == 10.0
        assert len(catalog) == 1

    def test_from_costs(self):
        catalog = OptimizationCatalog.from_costs({"a": 1.0, "b": 2.0})
        assert catalog.costs == {"a": 1.0, "b": 2.0}

    def test_duplicate_rejected(self):
        catalog = OptimizationCatalog.from_costs({"a": 1.0})
        with pytest.raises(GameConfigError):
            catalog.register(OptimizationSpec("a", 2.0))

    def test_nonpositive_cost_rejected(self):
        with pytest.raises(GameConfigError):
            OptimizationSpec("a", 0.0)

    def test_unknown_lookup(self):
        with pytest.raises(GameConfigError):
            OptimizationCatalog().get("ghost")


class TestLedger:
    def test_balance(self):
        ledger = BillingLedger()
        ledger.build_outlay(1, "idx", 100.0)
        ledger.invoice(1, "ann", 60.0)
        ledger.invoice(2, "bob", 50.0)
        assert ledger.revenue == pytest.approx(110.0)
        assert ledger.outlays == pytest.approx(100.0)
        assert ledger.balance == pytest.approx(10.0)

    def test_statement(self):
        ledger = BillingLedger()
        ledger.invoice(1, "ann", 10.0, memo="a")
        ledger.invoice(2, "ann", 20.0, memo="b")
        ledger.invoice(2, "bob", 5.0)
        assert ledger.paid_by("ann") == pytest.approx(30.0)
        assert [e.memo for e in ledger.statement("ann")] == ["a", "b"]

    def test_validation(self):
        ledger = BillingLedger()
        with pytest.raises(GameConfigError):
            ledger.invoice(1, "ann", -1.0)
        with pytest.raises(GameConfigError):
            ledger.build_outlay(1, "idx", 0.0)


class TestAdditiveService:
    """Replays paper Example 3 through the live service."""

    def make_service(self):
        catalog = OptimizationCatalog.from_costs({"opt": 100.0})
        service = CloudService(catalog, horizon=3, mode="additive")
        service.place_additive_bid(1, "opt", AdditiveBid.over(1, [101.0]))
        service.place_additive_bid(2, "opt", AdditiveBid.over(1, [16.0, 16.0, 16.0]))
        return service

    def test_example_3_trace(self):
        service = self.make_service()
        service.advance_slot()  # t=1: only user 1 serviced, pays 100
        assert service.report().payments.get(1) == pytest.approx(100.0)
        # Users 3 and 4 arrive before slot 2.
        service.place_additive_bid(3, "opt", AdditiveBid.over(2, [26.0]))
        service.place_additive_bid(4, "opt", AdditiveBid.over(2, [26.0]))
        report = service.run_to_end()
        assert report.payments[2] == pytest.approx(25.0)
        assert report.payments[3] == pytest.approx(25.0)
        assert report.payments[4] == pytest.approx(25.0)
        assert report.ledger.revenue == pytest.approx(175.0)
        assert report.cloud_balance == pytest.approx(75.0)
        assert report.implemented == {"opt": 1}

    def test_events_recorded(self):
        service = self.make_service()
        report = service.run_to_end()
        implemented = list(report.events.of_type(OptimizationImplemented))
        assert len(implemented) == 1
        assert implemented[0].slot == 1
        granted = list(report.events.of_type(UserGranted))
        assert {(e.user, e.slot) for e in granted} == {(1, 1)}
        charged = list(report.events.of_type(UserCharged))
        assert len(charged) == 1  # user 2's share never fits; only 1 pays

    def test_grant_slots_and_realized_value(self):
        service = self.make_service()
        service.advance_slot()
        service.place_additive_bid(3, "opt", AdditiveBid.over(2, [26.0]))
        service.place_additive_bid(4, "opt", AdditiveBid.over(2, [26.0]))
        report = service.run_to_end()
        assert report.grant_slot(2, "opt") == 2
        truth_2 = AdditiveBid.over(1, [16.0, 16.0, 16.0])
        assert report.realized_value(2, "opt", truth_2) == pytest.approx(32.0)

    def test_retroactive_bid_rejected(self):
        service = self.make_service()
        service.advance_slot()
        with pytest.raises(GameConfigError):
            service.place_additive_bid(9, "opt", AdditiveBid.over(1, [50.0]))

    def test_bid_beyond_horizon_rejected(self):
        service = self.make_service()
        with pytest.raises(GameConfigError):
            service.place_additive_bid(9, "opt", AdditiveBid.over(3, [1.0, 1.0]))

    def test_upward_revision_through_service(self):
        catalog = OptimizationCatalog.from_costs({"opt": 100.0})
        service = CloudService(catalog, horizon=2, mode="additive")
        service.place_additive_bid(1, "opt", AdditiveBid.over(1, [40.0, 40.0]))
        service.advance_slot()  # 80 < 100: not implemented
        assert service.report().implemented == {}
        service.revise_additive_bid(1, "opt", {2: 120.0})
        report = service.run_to_end()
        assert report.implemented == {"opt": 2}
        assert report.payments[1] == pytest.approx(100.0)

    def test_downward_revision_rejected(self):
        catalog = OptimizationCatalog.from_costs({"opt": 100.0})
        service = CloudService(catalog, horizon=2, mode="additive")
        service.place_additive_bid(1, "opt", AdditiveBid.over(1, [40.0, 40.0]))
        with pytest.raises(Exception):
            service.revise_additive_bid(1, "opt", {2: 10.0})

    def test_advance_past_horizon_rejected(self):
        service = self.make_service()
        service.run_to_end()
        with pytest.raises(MechanismError):
            service.advance_slot()

    def test_mode_enforcement(self):
        service = self.make_service()
        with pytest.raises(GameConfigError):
            service.place_substitutable_bid(
                9, SubstitutableBid.single_slot(1, 5.0, {"opt"})
            )


class TestSubstitutableService:
    """Replays paper Example 8 through the live service."""

    def test_example_8_trace(self):
        catalog = OptimizationCatalog.from_costs(
            {1: 60.0, 2: 100.0, 3: 50.0}, kind="view"
        )
        service = CloudService(catalog, horizon=3, mode="substitutable")
        service.place_substitutable_bid(
            1, SubstitutableBid.over(1, [50.0, 50.0], {1, 2})
        )
        service.advance_slot()
        service.place_substitutable_bid(
            2, SubstitutableBid.over(2, [50.0, 50.0], {1, 2, 3})
        )
        service.advance_slot()
        service.place_substitutable_bid(
            3, SubstitutableBid.over(3, [100.0], {3})
        )
        report = service.run_to_end()
        assert report.implemented == {1: 1, 3: 3}
        assert report.payments[1] == pytest.approx(30.0)
        assert report.payments[2] == pytest.approx(30.0)
        assert report.payments[3] == pytest.approx(50.0)
        assert report.cloud_balance == pytest.approx(0.0)
        assert report.grant_slot(2, 1) == 2

    def test_duplicate_bid_rejected(self):
        catalog = OptimizationCatalog.from_costs({1: 60.0})
        service = CloudService(catalog, horizon=2, mode="substitutable")
        service.place_substitutable_bid(1, SubstitutableBid.single_slot(1, 70.0, {1}))
        with pytest.raises(GameConfigError):
            service.place_substitutable_bid(
                1, SubstitutableBid.single_slot(2, 70.0, {1})
            )

    def test_unknown_substitute_rejected(self):
        catalog = OptimizationCatalog.from_costs({1: 60.0})
        service = CloudService(catalog, horizon=2, mode="substitutable")
        with pytest.raises(GameConfigError):
            service.place_substitutable_bid(
                1, SubstitutableBid.single_slot(1, 70.0, {"ghost"})
            )


class TestServiceConfig:
    def test_bad_horizon(self):
        with pytest.raises(GameConfigError):
            CloudService(OptimizationCatalog.from_costs({"a": 1.0}), horizon=0)

    def test_bad_mode(self):
        with pytest.raises(GameConfigError):
            CloudService(
                OptimizationCatalog.from_costs({"a": 1.0}), horizon=1, mode="hybrid"
            )

    def test_empty_catalog(self):
        with pytest.raises(GameConfigError):
            CloudService(OptimizationCatalog(), horizon=1)

    def test_event_log_filters(self):
        log = EventLog()
        log.record(UserCharged(1, "ann", 5.0))
        log.record(UserCharged(2, "bob", 5.0))
        assert len(log) == 2
        assert len(list(log.of_type(UserCharged))) == 2
        assert len(list(log.in_slot(1))) == 1
