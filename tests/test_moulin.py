"""Tests for the general Moulin mechanism (Section 8's framing)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MechanismError, run_shapley
from repro.core.moulin import equal_shares, run_moulin, weighted_shares

values = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
costs = st.floats(min_value=0.5, max_value=120.0, allow_nan=False)
bid_maps = st.dictionaries(st.integers(0, 7), values, min_size=1, max_size=8)


class TestEqualSharesRecoverShapley:
    @settings(max_examples=200)
    @given(cost=costs, bids=bid_maps)
    def test_equivalence(self, cost, bids):
        moulin = run_moulin(equal_shares(cost), bids)
        shapley = run_shapley(cost, bids)
        assert moulin.serviced == shapley.serviced
        for user in moulin.serviced:
            assert moulin.payment(user) == pytest.approx(shapley.payment(user))


class TestWeightedShares:
    def test_heavy_user_pays_more(self):
        share_fn = weighted_shares(90.0, {1: 2.0, 2: 1.0})
        result = run_moulin(share_fn, {1: 100.0, 2: 100.0})
        assert result.payment(1) == pytest.approx(60.0)
        assert result.payment(2) == pytest.approx(30.0)

    def test_eviction_reflows_shares(self):
        # User 2's 25 < her weighted share 30; after eviction user 1 owes
        # everything.
        share_fn = weighted_shares(90.0, {1: 2.0, 2: 1.0})
        result = run_moulin(share_fn, {1: 95.0, 2: 25.0})
        assert result.serviced == frozenset({1})
        assert result.payment(1) == pytest.approx(90.0)

    def test_collapse(self):
        share_fn = weighted_shares(90.0, {1: 2.0, 2: 1.0})
        result = run_moulin(share_fn, {1: 80.0, 2: 25.0})
        assert not result.implemented

    def test_infinite_bid_forced(self):
        share_fn = weighted_shares(90.0, {1: 1.0, 2: 1.0})
        result = run_moulin(share_fn, {1: math.inf, 2: 1.0})
        assert result.serviced == frozenset({1})

    def test_validation(self):
        with pytest.raises(MechanismError):
            weighted_shares(0.0, {1: 1.0})
        with pytest.raises(MechanismError):
            weighted_shares(10.0, {1: 0.0})
        with pytest.raises(MechanismError):
            equal_shares(math.nan)
        with pytest.raises(MechanismError):
            run_moulin(equal_shares(10.0), {1: -1.0})

    def test_non_convergent_share_fn_detected(self):
        # A pathological share that grows with |S| (anti-cross-monotonic
        # enough to oscillate forever at the limit check).
        calls = {"n": 0}

        def bad_share(user, serviced):
            calls["n"] += 1
            return 1.0 if calls["n"] % 2 else 100.0

        with pytest.raises(MechanismError):
            run_moulin(bad_share, {k: 50.0 for k in range(3)}, max_rounds=2)


class TestMoulinProperties:
    @settings(max_examples=200)
    @given(cost=costs, bids=bid_maps, data=st.data())
    def test_weighted_budget_balance(self, cost, bids, data):
        weights = {
            user: data.draw(st.floats(0.1, 5.0, allow_nan=False)) for user in bids
        }
        result = run_moulin(weighted_shares(cost, weights), bids)
        if result.implemented:
            assert result.revenue == pytest.approx(cost)

    @settings(max_examples=200)
    @given(cost=costs, bids=bid_maps, data=st.data())
    def test_weighted_shares_cross_monotonic(self, cost, bids, data):
        """Built-in share families satisfy the Moulin precondition."""
        weights = {
            user: data.draw(st.floats(0.1, 5.0, allow_nan=False)) for user in bids
        }
        share_fn = weighted_shares(cost, weights)
        users = list(bids)
        subset = frozenset(
            data.draw(st.sets(st.sampled_from(users), min_size=1))
        )
        superset = frozenset(users)
        for user in subset:
            assert share_fn(user, subset) >= share_fn(user, superset) - 1e-9

    @settings(max_examples=200)
    @given(cost=costs, bids=bid_maps, lie=values, data=st.data())
    def test_weighted_moulin_truthful(self, cost, bids, lie, data):
        """No unilateral value lie improves utility under weighted shares."""
        weights = {
            user: data.draw(st.floats(0.1, 5.0, allow_nan=False)) for user in bids
        }
        share_fn = weighted_shares(cost, weights)
        target = sorted(bids, key=repr)[0]
        truth = bids[target]

        def utility(profile):
            result = run_moulin(share_fn, profile)
            if target not in result.serviced:
                return 0.0
            return truth - result.payment(target)

        honest = utility(bids)
        deviated = dict(bids)
        deviated[target] = lie
        assert utility(deviated) <= honest + 1e-6
