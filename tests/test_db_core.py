"""Unit tests for the mini database engine: schema, tables, expressions."""

from __future__ import annotations

import pytest

from repro import SchemaError
from repro.db import Col, Column, Const, Eq, Ge, In, Not, Or, And, Lt, Schema, Table


class TestSchema:
    def test_of_shorthand(self):
        schema = Schema.of(pid="int", x="float", name="str")
        assert schema.names == ("pid", "x", "name")
        assert len(schema) == 3

    def test_row_width(self):
        schema = Schema.of(pid="int", x="float", name="str")
        assert schema.row_width == 8 + 8 + 24

    def test_position(self):
        schema = Schema.of(a="int", b="int")
        assert schema.position("b") == 1
        with pytest.raises(SchemaError):
            schema.position("zzz")

    def test_contains(self):
        schema = Schema.of(a="int")
        assert "a" in schema
        assert "b" not in schema

    def test_project(self):
        schema = Schema.of(a="int", b="float", c="str")
        sub = schema.project(["c", "a"])
        assert sub.names == ("c", "a")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", "int"), Column("a", "float")])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_bad_dtype_rejected(self):
        with pytest.raises(SchemaError):
            Column("a", "blob")

    def test_validate_row_coerces_int_to_float(self):
        schema = Schema.of(x="float")
        assert schema.validate_row((3,)) == (3.0,)

    def test_validate_row_rejects_wrong_arity(self):
        schema = Schema.of(a="int", b="int")
        with pytest.raises(SchemaError):
            schema.validate_row((1,))

    def test_validate_row_rejects_wrong_type(self):
        schema = Schema.of(a="int")
        with pytest.raises(SchemaError):
            schema.validate_row(("hello",))
        with pytest.raises(SchemaError):
            schema.validate_row((True,))


class TestTable:
    def test_insert_and_len(self):
        table = Table("t", Schema.of(a="int"))
        rid = table.insert((1,))
        assert rid == 0
        assert len(table) == 1

    def test_extend_and_rows(self):
        table = Table("t", Schema.of(a="int", b="float"))
        table.extend([(1, 1.0), (2, 2.0)])
        assert list(table.rows()) == [(1, 1.0), (2, 2.0)]

    def test_column_values(self):
        table = Table("t", Schema.of(a="int", b="int"))
        table.extend([(1, 10), (2, 20)])
        assert table.column_values("b") == [10, 20]

    def test_byte_size(self):
        table = Table("t", Schema.of(a="int", b="int"))
        table.extend([(1, 2)] * 5)
        assert table.byte_size == 5 * 16

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Table("", Schema.of(a="int"))


class TestExpressions:
    SCHEMA = Schema.of(a="int", b="float", s="str")
    ROW = (3, 1.5, "x")

    def check(self, expr, expected):
        assert expr.compile_(self.SCHEMA)(self.ROW) == expected

    def test_col_const(self):
        self.check(Col("a"), 3)
        self.check(Const(42), 42)

    def test_comparisons(self):
        self.check(Eq(Col("a"), Const(3)), True)
        self.check(Eq(Col("a"), Const(4)), False)
        self.check(Lt(Col("b"), Const(2.0)), True)
        self.check(Ge(Col("a"), Const(3)), True)

    def test_in(self):
        self.check(In(Col("a"), {1, 2, 3}), True)
        self.check(In(Col("a"), {4}), False)

    def test_boolean_combinators(self):
        self.check(And(Eq(Col("a"), Const(3)), Eq(Col("s"), Const("x"))), True)
        self.check(Or(Eq(Col("a"), Const(9)), Eq(Col("s"), Const("x"))), True)
        self.check(Not(Eq(Col("a"), Const(3))), False)

    def test_compile_binds_positions_once(self):
        predicate = Eq(Col("a"), Const(3)).compile_(self.SCHEMA)
        assert predicate((3, 0.0, "")) is True
        assert predicate((4, 0.0, "")) is False
