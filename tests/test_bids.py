"""Unit tests for the bid model (schedules, additive/substitutable, revision)."""

from __future__ import annotations

import pytest

from repro import (
    AdditiveBid,
    BidError,
    RevisableBid,
    RevisionError,
    SlotValues,
    SubstitutableBid,
)


class TestSlotValues:
    def test_end_is_start_plus_length(self):
        sv = SlotValues(3, (1.0, 2.0, 3.0))
        assert sv.end == 5

    def test_value_at_inside_and_outside(self):
        sv = SlotValues(2, (10.0, 20.0))
        assert sv.value_at(1) == 0.0
        assert sv.value_at(2) == 10.0
        assert sv.value_at(3) == 20.0
        assert sv.value_at(4) == 0.0

    def test_residual(self):
        sv = SlotValues(1, (5.0, 6.0, 7.0))
        assert sv.residual(1) == pytest.approx(18.0)
        assert sv.residual(2) == pytest.approx(13.0)
        assert sv.residual(3) == pytest.approx(7.0)
        assert sv.residual(4) == 0.0

    def test_residual_before_start_is_total(self):
        sv = SlotValues(5, (1.0, 1.0))
        assert sv.residual(1) == pytest.approx(2.0)

    def test_total(self):
        assert SlotValues(1, (1.0, 2.0)).total() == pytest.approx(3.0)

    def test_slots_iteration(self):
        assert list(SlotValues(4, (0.0, 0.0, 0.0)).slots()) == [4, 5, 6]

    def test_from_mapping_fills_gaps(self):
        sv = SlotValues.from_mapping({2: 1.0, 5: 4.0})
        assert sv.start == 2
        assert sv.end == 5
        assert sv.value_at(3) == 0.0
        assert sv.value_at(5) == 4.0

    def test_scaled(self):
        sv = SlotValues(1, (2.0, 4.0)).scaled(0.5)
        assert sv.values == (1.0, 2.0)

    def test_rejects_bad_start(self):
        with pytest.raises(BidError):
            SlotValues(0, (1.0,))

    def test_rejects_empty(self):
        with pytest.raises(BidError):
            SlotValues(1, ())

    def test_rejects_negative_value(self):
        with pytest.raises(BidError):
            SlotValues(1, (1.0, -0.1))

    def test_rejects_empty_mapping(self):
        with pytest.raises(BidError):
            SlotValues.from_mapping({})


class TestAdditiveBid:
    def test_single_slot(self):
        bid = AdditiveBid.single_slot(3, 42.0)
        assert bid.start == 3
        assert bid.end == 3
        assert bid.total() == pytest.approx(42.0)

    def test_over(self):
        bid = AdditiveBid.over(2, [1.0, 2.0, 3.0])
        assert (bid.start, bid.end) == (2, 4)
        assert bid.residual(3) == pytest.approx(5.0)

    def test_from_mapping(self):
        bid = AdditiveBid.from_mapping({1: 3.0, 3: 4.0})
        assert bid.value_at(2) == 0.0
        assert bid.total() == pytest.approx(7.0)


class TestSubstitutableBid:
    def test_wants(self):
        bid = SubstitutableBid.single_slot(1, 9.0, {"a", "b"})
        assert bid.wants("a")
        assert not bid.wants("c")

    def test_requires_substitutes(self):
        with pytest.raises(BidError):
            SubstitutableBid.single_slot(1, 9.0, set())

    def test_matrix_row_uses_residual(self):
        bid = SubstitutableBid.over(1, [4.0, 6.0], {"a"})
        row = bid.matrix_row(["a", "b"], t=2)
        assert row == {"a": 6.0, "b": 0.0}

    def test_substitutes_frozen(self):
        bid = SubstitutableBid.single_slot(1, 9.0, {"a"})
        assert isinstance(bid.substitutes, frozenset)


class TestRevisableBid:
    def test_initial_view(self):
        bid = RevisableBid(AdditiveBid.over(1, [10.0, 10.0]))
        assert bid.as_of(1).total() == pytest.approx(20.0)
        assert bid.declared_at == 1

    def test_upward_revision_visible_after_placement(self):
        bid = RevisableBid(AdditiveBid.over(1, [10.0, 10.0, 10.0]))
        bid.revise(2, {2: 20.0})
        assert bid.as_of(1).value_at(2) == pytest.approx(10.0)
        assert bid.as_of(2).value_at(2) == pytest.approx(20.0)
        assert bid.as_of(3).value_at(2) == pytest.approx(20.0)

    def test_paper_example_revision(self):
        """Section 5.1: bid (1,3,[10,10,10]); at t=2 revise b(2)=20."""
        bid = RevisableBid(AdditiveBid.over(1, [10.0, 10.0, 10.0]))
        bid.revise(2, {2: 20.0, 3: 10.0})
        view = bid.as_of(2)
        assert view.value_at(2) == pytest.approx(20.0)
        assert view.value_at(3) == pytest.approx(10.0)

    def test_extension_grows_end(self):
        bid = RevisableBid(AdditiveBid.over(1, [5.0]))
        bid.revise(1, {2: 3.0})
        assert bid.current.end == 2
        assert bid.current.residual(1) == pytest.approx(8.0)

    def test_downward_revision_rejected(self):
        bid = RevisableBid(AdditiveBid.over(1, [10.0, 10.0]))
        with pytest.raises(RevisionError):
            bid.revise(2, {2: 5.0})

    def test_retroactive_revision_rejected(self):
        bid = RevisableBid(AdditiveBid.over(1, [10.0, 10.0]))
        with pytest.raises(RevisionError):
            bid.revise(2, {1: 50.0})

    def test_retroactive_declaration_rejected(self):
        with pytest.raises(RevisionError):
            RevisableBid(AdditiveBid.over(1, [10.0]), declared_at=2)

    def test_out_of_order_revision_rejected(self):
        bid = RevisableBid(AdditiveBid.over(1, [1.0, 1.0, 1.0]))
        bid.revise(3, {3: 2.0})
        with pytest.raises(RevisionError):
            bid.revise(2, {2: 2.0})

    def test_empty_revision_rejected(self):
        bid = RevisableBid(AdditiveBid.over(1, [1.0]))
        with pytest.raises(RevisionError):
            bid.revise(1, {})

    def test_as_of_before_declaration_raises(self):
        bid = RevisableBid(AdditiveBid.over(3, [1.0]), declared_at=2)
        with pytest.raises(RevisionError):
            bid.as_of(1)
