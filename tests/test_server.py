"""Tier-1 tests for the asyncio serving layer and its blocking client.

Everything here runs an in-process :class:`ServerThread` on an ephemeral
port (``port=0``) — no fixed ports, no subprocesses, fast enough for the
tier-1 suite. The long fault grids live in ``tests/test_netfaults.py``;
this file covers the contracts one at a time:

- every endpoint speaks its envelope kinds and nothing else;
- admission control sheds typed ``overloaded`` replies (global and
  per-tenant fair share) instead of queueing unboundedly;
- deadlines cancel un-dispatched work with ``deadline_exceeded`` and
  never lie about claimed work;
- concurrent envelopes group-commit into fewer batches (and fewer
  fsyncs) than requests;
- graceful drain checkpoints a durable service;
- the client retries exactly what its policy says it retries.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time

import pytest

from crashpoints import fingerprint
from netfaults import Stall, drive, serial_fingerprint, workload
from repro.errors import GameConfigError
from repro.gateway import (
    AdvanceSlots,
    Configure,
    ErrorReply,
    LedgerQuery,
    PricingService,
    RunQuery,
    SubmitBids,
)
from repro.gateway.client import GatewayClient, GatewayUnavailable
from repro.gateway.server import (
    HTTP_STATUS,
    ROUTES,
    ServerConfig,
    ServerThread,
    path_for_kind,
)

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


def make_server(service=None, *, stall_hook=None, **knobs):
    """An in-process server on an ephemeral port, plus its service."""
    service = service or PricingService()
    thread = ServerThread(
        service, ServerConfig(port=0, **knobs), stall_hook=stall_hook
    )
    host, port = thread.start()
    return thread, service, host, port


@pytest.fixture()
def gateway():
    thread, service, host, port = make_server()
    client = GatewayClient(host, port)
    try:
        yield client, service, thread
    finally:
        client.close()
        thread.stop()


CONFIG = Configure(optimizations=(("idx", 40.0), ("mv", 25.0)), horizon=4)


class TestEndpoints:
    def test_every_kind_round_trips_over_http(self):
        # A tiny pre-loaded universe gives RunQuery real tables to hit.
        from repro.astro.simulator import UniverseConfig, UniverseSimulator

        service = PricingService()
        for snapshot in UniverseSimulator(
            UniverseConfig(particles=200, snapshots=1), rng=3
        ).run():
            service.db.create_table(snapshot.to_table())
        thread, service, host, port = make_server(service)
        client = GatewayClient(host, port)
        try:
            replies = drive(
                client,
                [
                    CONFIG,
                    SubmitBids(tenant="ann", bids=(("idx", 1, (30.0, 15.0)),)),
                    SubmitBids(tenant="bob", bids=(("mv", 1, (20.0,)),)),
                    AdvanceSlots(slots=2),
                    RunQuery(
                        tenant="ann", query="members", table="snap_01", halo=0
                    ),
                    LedgerQuery(tenant="ann"),
                ],
            )
        finally:
            client.close()
            thread.stop()
        kinds = [type(reply).__name__ for reply in replies]
        assert kinds == [
            "ConfigReply",
            "BidsReply",
            "BidsReply",
            "SlotReply",
            "QueryReply",
            "LedgerReply",
        ]

    def test_server_state_matches_a_serial_run(self, gateway):
        client, service, _thread = gateway
        steps = workload()
        drive(client, steps)
        assert fingerprint(service) == serial_fingerprint(steps)

    def test_rejections_come_back_typed_not_raised(self, gateway):
        client, _service, _thread = gateway
        client.request(CONFIG)
        reply = client.request(
            SubmitBids(tenant="ann", bids=(("idx", 0, (1.0,)),))  # slot 0: invalid
        )
        assert isinstance(reply, ErrorReply)
        assert reply.code == "bid"
        assert reply.retryable is False

    def test_healthz_counts_dispatches(self, gateway):
        client, _service, _thread = gateway
        client.request(CONFIG)
        health = client.health()
        assert health["status"] == "ok"
        assert health["dispatched"] == 1
        assert health["batches"] == 1
        assert health["shed"] == 0

    def test_healthz_carries_version_uptime_workers_and_wal_seq(
        self, tmp_path
    ):
        import repro

        service = PricingService()
        service.attach_wal(tmp_path / "wal")
        thread, service, host, port = make_server(service)
        client = GatewayClient(host, port)
        try:
            client.request(CONFIG)
            health = client.health()
            assert health["version"] == repro.__version__
            assert health["uptime_s"] >= 0.0
            assert health["workers"] == 0  # in-process engine, no pool
            assert health["wal_seq"] >= 1  # the Configure was logged
            assert health["epoch"] >= 0
            seq = health["wal_seq"]
            client.request(
                SubmitBids(tenant="ann", bids=(("idx", 1, (30.0,)),))
            )
            assert client.health()["wal_seq"] > seq
        finally:
            client.close()
            thread.stop()

    def test_get_metrics_is_valid_prometheus_exposition(self, gateway):
        from promparse import parse_exposition

        client, _service, _thread = gateway
        client.request(CONFIG)
        client.request(SubmitBids(tenant="ann", bids=(("idx", 1, (30.0,)),)))
        text = client.metrics_text()
        types, samples = parse_exposition(text)
        assert types["repro_server_requests_total"] == "counter"
        assert types["repro_server_request_seconds"] == "histogram"
        assert types["repro_server_batch_size"] == "histogram"
        endpoints = {
            s.labels["endpoint"]
            for s in samples
            if s.name == "repro_server_requests_total"
        }
        assert {"/v1/slots", "/v1/bids"} <= endpoints
        # The scrape itself is accounted for on its own endpoint.
        rescrape = client.metrics_text()
        _, samples = parse_exposition(rescrape)
        (metrics_hits,) = [
            s.value
            for s in samples
            if s.name == "repro_server_requests_total"
            and s.labels["endpoint"] == "/v1/metrics"
        ]
        assert metrics_hits >= 1.0

    def test_post_metrics_routes_the_envelope(self, gateway):
        from repro.gateway import MetricsReply, MetricsRequest

        client, _service, _thread = gateway
        client.request(CONFIG)
        reply = client.request(MetricsRequest())
        assert isinstance(reply, MetricsReply)
        names = {entry[0] for entry in reply.metrics}
        assert "repro_server_requests_total" in names

    def test_every_route_kind_has_a_path_and_status(self):
        for path, kinds in ROUTES.items():
            for kind in kinds:
                assert path_for_kind(kind) == path
        with pytest.raises(GameConfigError):
            path_for_kind("ErrorReply")
        # Every wire error code the envelope layer can emit maps to a
        # status; unknowns fall back to 500 in the server.
        from repro.gateway.envelopes import ERROR_CODES

        for _exc, code in ERROR_CODES:
            assert code in HTTP_STATUS


class TestRawHttp:
    """Status-code and protocol behavior below the client's abstraction."""

    def _raw(self, host, port, method, path, body=b"", headers=None):
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def test_unknown_path_is_404_protocol_error(self, gateway):
        client, _service, _thread = gateway
        status, payload = self._raw(client.host, client.port, "POST", "/v2/bids")
        assert status == 404
        assert payload["kind"] == "ErrorReply"
        assert payload["code"] == "protocol"
        assert payload["retryable"] is False

    def test_wrong_method_is_405(self, gateway):
        client, _service, _thread = gateway
        status, payload = self._raw(client.host, client.port, "GET", "/v1/bids")
        assert status == 405
        assert payload["code"] == "protocol"

    def test_undecodable_body_is_400(self, gateway):
        client, _service, _thread = gateway
        status, payload = self._raw(
            client.host, client.port, "POST", "/v1/bids", body=b"{not json"
        )
        assert status == 400
        assert payload["code"] == "protocol"

    def test_kind_on_wrong_path_is_400(self, gateway):
        client, _service, _thread = gateway
        body = json.dumps(
            {"api": "1.6", "kind": "AdvanceSlots", "slots": 1}
        ).encode()
        status, payload = self._raw(
            client.host, client.port, "POST", "/v1/bids", body=body
        )
        assert status == 400
        assert payload["code"] == "protocol"
        assert "/v1/bids" in payload["message"]

    def test_malformed_deadline_header_is_400(self, gateway):
        client, _service, _thread = gateway
        body = json.dumps(
            {"api": "1.6", "kind": "LedgerQuery", "tenant": "ann"}
        ).encode()
        status, payload = self._raw(
            client.host,
            client.port,
            "POST",
            "/v1/ledger",
            body=body,
            headers={"X-Repro-Deadline": "soon"},
        )
        assert status == 400
        assert payload["code"] == "protocol"

    def test_overloaded_is_429_with_retry_after_header(self):
        thread, _service, host, port = make_server(max_pending=0)
        try:
            conn = http.client.HTTPConnection(host, port, timeout=10)
            body = json.dumps(
                {"api": "1.6", "kind": "LedgerQuery", "tenant": "ann"}
            ).encode()
            conn.request("POST", "/v1/ledger", body=body)
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 429
            assert float(response.headers["Retry-After"]) > 0
            assert payload["code"] == "overloaded"
            assert payload["retryable"] is True
            conn.close()
        finally:
            thread.stop()


class TestAdmissionControl:
    def test_zero_capacity_sheds_everything_typed(self):
        thread, service, host, port = make_server(max_pending=0)
        client = GatewayClient(host, port, max_attempts=2, sleep=lambda _s: None)
        try:
            reply = client.request(CONFIG)
            assert isinstance(reply, ErrorReply)
            assert reply.code == "overloaded"
            assert reply.retryable is True
            assert reply.retry_after > 0
            # Nothing reached the core: the shed is admission-side.
            assert fingerprint(service) == fingerprint(PricingService())
            assert client.health()["shed"] >= 2  # one per attempt
        finally:
            client.close()
            thread.stop()

    def test_global_bound_sheds_while_queue_is_full(self):
        stall = Stall({0: 0.5})
        thread, _service, host, port = make_server(
            stall_hook=stall, max_pending=2, max_delay=0.001
        )
        probe = GatewayClient(host, port, max_attempts=1)
        fillers = [GatewayClient(host, port) for _ in range(2)]
        try:
            threads = [
                threading.Thread(
                    target=filler.request,
                    args=(LedgerQuery(tenant=f"t{i}"),),
                )
                for i, filler in enumerate(fillers)
            ]
            for t in threads:
                t.start()
            while probe.health()["pending"] < 2:  # both queued behind the stall
                time.sleep(0.005)
            reply = probe.request(LedgerQuery(tenant="late"))
            assert isinstance(reply, ErrorReply)
            assert reply.code == "overloaded"
            for t in threads:
                t.join(timeout=10)
            assert probe.health()["pending"] == 0
        finally:
            for filler in fillers:
                filler.close()
            probe.close()
            thread.stop()

    def test_tenant_fair_share_sheds_only_the_hog(self):
        stall = Stall({0: 0.5})
        thread, _service, host, port = make_server(
            stall_hook=stall, tenant_pending=1, max_delay=0.001
        )
        probe = GatewayClient(host, port, max_attempts=1)
        hog = GatewayClient(host, port)
        neighbor = GatewayClient(host, port)
        try:
            hog_thread = threading.Thread(
                target=hog.request, args=(LedgerQuery(tenant="hog"),)
            )
            hog_thread.start()
            while probe.health()["pending"] < 1:
                time.sleep(0.005)
            shed = probe.request(LedgerQuery(tenant="hog"))
            assert isinstance(shed, ErrorReply)
            assert shed.code == "overloaded"
            assert "hog" in shed.message
            # A different tenant still gets in while the hog is capped.
            neighbor_thread = threading.Thread(
                target=neighbor.request, args=(LedgerQuery(tenant="calm"),)
            )
            neighbor_thread.start()
            while probe.health()["pending"] < 2:
                time.sleep(0.005)
            hog_thread.join(timeout=10)
            neighbor_thread.join(timeout=10)
            assert probe.health()["shed"] == 1
        finally:
            hog.close()
            neighbor.close()
            probe.close()
            thread.stop()


class TestDeadlines:
    def test_expired_work_is_cancelled_before_dispatch(self):
        stall = Stall({0: 0.4})
        thread, service, host, port = make_server(stall_hook=stall)
        client = GatewayClient(host, port, max_attempts=1)
        try:
            baseline = fingerprint(PricingService())
            reply = client.request(
                SubmitBids(tenant="ann", bids=(("idx", 1, (9.0,)),)),
                deadline=0.05,
            )
            assert isinstance(reply, ErrorReply)
            assert reply.code == "deadline_exceeded"
            assert reply.retryable is True
            # The stalled batch re-checks after the stall: nothing
            # cancelled ever reaches the service.
            while client.health()["pending"]:
                time.sleep(0.005)
            assert client.health()["dispatched"] == 0
            assert fingerprint(service) == baseline
        finally:
            client.close()
            thread.stop()

    def test_unexpired_deadline_returns_the_real_reply(self, gateway):
        client, _service, _thread = gateway
        reply = client.request(CONFIG, deadline=30.0)
        assert type(reply).__name__ == "ConfigReply"


class TestGroupCommit:
    def test_concurrent_envelopes_share_batches_and_fsyncs(self, tmp_path):
        stall = Stall({1: 0.4})
        service = PricingService()
        service.attach_wal(tmp_path / "wal")
        thread = ServerThread(
            service, ServerConfig(port=0, max_delay=0.02), stall_hook=stall
        )
        host, port = thread.start()
        clients = [GatewayClient(host, port) for _ in range(5)]
        try:
            clients[0].request(CONFIG)  # batch 0
            fsyncs_before = clients[0].health()["fsyncs"]
            # Batch 1 stalls on the first post-config envelope; the other
            # four arrive behind the held flush lock and must coalesce.
            first = threading.Thread(
                target=clients[0].request,
                args=(SubmitBids(tenant="t0", bids=(("idx", 1, (5.0,)),)),),
            )
            first.start()
            while stall.batches < 2:  # batch 1 has entered the stall
                time.sleep(0.005)
            rest = [
                threading.Thread(
                    target=clients[i].request,
                    args=(SubmitBids(tenant=f"t{i}", bids=(("idx", 1, (5.0 + i,)),)),),
                )
                for i in range(1, 5)
            ]
            for t in rest:
                t.start()
            first.join(timeout=10)
            for t in rest:
                t.join(timeout=10)
            health = clients[0].health()
            assert health["dispatched"] == 6
            # 1 config batch + 1 stalled submit + 1 coalesced batch of 4.
            assert health["batches"] == 3
            fsync_delta = health["fsyncs"] - fsyncs_before
            assert fsync_delta <= 2  # group commit: 5 submits, ≤2 fsyncs
        finally:
            for client in clients:
                client.close()
            thread.stop()
            service.close()


class TestDrain:
    def test_stop_checkpoints_a_durable_service(self, tmp_path):
        wal_dir = tmp_path / "wal"
        service = PricingService()
        service.attach_wal(wal_dir)
        thread = ServerThread(service, ServerConfig(port=0))
        host, port = thread.start()
        client = GatewayClient(host, port)
        steps = workload(tenants=2, opts=2)
        try:
            drive(client, steps)
        finally:
            client.close()
        checkpoints_before = len(list(wal_dir.glob("checkpoint-*.json")))
        thread.stop()
        assert len(list(wal_dir.glob("checkpoint-*.json"))) > checkpoints_before
        expected = fingerprint(service)
        service.close()
        recovered = PricingService.recover(wal_dir)
        try:
            assert fingerprint(recovered) == expected
            assert fingerprint(recovered) == serial_fingerprint(steps)
        finally:
            recovered.close()

    def test_stopped_server_refuses_connections(self, gateway):
        client, _service, thread = gateway
        client.request(CONFIG)
        thread.stop()
        fresh = GatewayClient(
            client.host,
            client.port,
            max_attempts=2,
            sleep=lambda _s: None,
        )
        with pytest.raises(GatewayUnavailable):
            fresh.request(LedgerQuery(tenant="ann"))


class TestClientPolicy:
    def test_backoff_is_capped_exponential_with_jitter_floor(self):
        sleeps = []
        client = GatewayClient(
            "localhost",
            1,
            max_attempts=5,
            base_delay=0.1,
            max_delay=0.3,
            rng=random.Random(7),
            sleep=sleeps.append,
        )
        for attempt in range(5):
            client._backoff(attempt, floor=0.05)
        # The final attempt never sleeps (no retry follows it).
        assert len(sleeps) == 4
        ceilings = [0.1, 0.2, 0.3, 0.3]  # capped at max_delay
        for slept, ceiling in zip(sleeps, ceilings):
            assert 0.05 <= slept <= max(ceiling, 0.05)

    def test_typed_shed_is_returned_after_retries_not_raised(self):
        thread, _service, host, port = make_server(max_pending=0)
        sleeps = []
        client = GatewayClient(
            host, port, max_attempts=3, sleep=sleeps.append
        )
        try:
            reply = client.request(LedgerQuery(tenant="ann"))
            assert isinstance(reply, ErrorReply)
            assert reply.code == "overloaded"
            assert len(sleeps) == 2  # retried, then returned the verdict
            # Every wait honors the server's retry_after floor.
            assert all(s >= reply.retry_after for s in sleeps)
        finally:
            client.close()
            thread.stop()

    def test_non_retryable_error_is_never_retried(self, gateway):
        client, _service, _thread = gateway
        sleeps = []
        eager = GatewayClient(
            client.host, client.port, max_attempts=5, sleep=sleeps.append
        )
        try:
            eager.request(CONFIG)
            reply = eager.request(
                SubmitBids(tenant="ann", bids=(("idx", 0, (1.0,)),))
            )
            assert reply.code == "bid"
            assert sleeps == []
            assert eager.health()["dispatched"] == 2  # exactly one try each
        finally:
            eager.close()

    def test_connection_refused_retries_until_unavailable(self):
        sleeps = []
        client = GatewayClient(
            "127.0.0.1",
            1,  # nothing listens on port 1
            max_attempts=3,
            sleep=sleeps.append,
        )
        with pytest.raises(GatewayUnavailable) as excinfo:
            client.request(LedgerQuery(tenant="ann"))
        assert "3 attempts" in str(excinfo.value)
        assert len(sleeps) == 2

    def test_stale_keep_alive_is_reopened_transparently(self):
        # A server restart invalidates the client's cached connection;
        # the reused-connection death is always safe to retry.
        thread, _service, host, port = make_server()
        client = GatewayClient(host, port)
        try:
            client.request(CONFIG)
            thread.stop()
            replacement, _svc, host2, port2 = make_server()
            try:
                client.host, client.port = host2, port2
                reply = client.request(CONFIG)
                assert type(reply).__name__ == "ConfigReply"
            finally:
                replacement.stop()
        finally:
            client.close()
