"""Unit and property tests for the Regret loss-minimizing price search."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import GameConfigError
from repro.baseline import optimal_price


class TestFullRecovery:
    def test_single_rich_user(self):
        decision = optimal_price(10.0, [25.0])
        assert decision.price == pytest.approx(10.0)
        assert decision.payers == 1
        assert decision.recovers_cost

    def test_split_is_cheaper_than_solo(self):
        # Both can pay 5; price 5 beats charging one user 10.
        decision = optimal_price(10.0, [25.0, 5.0])
        assert decision.price == pytest.approx(5.0)
        assert decision.payers == 2
        assert decision.revenue == pytest.approx(10.0)

    def test_price_is_cost_over_k_star(self):
        # k=3: F_(3)=4 >= 12/3=4 -> price 4 across three payers.
        decision = optimal_price(12.0, [20.0, 6.0, 4.0])
        assert decision.price == pytest.approx(4.0)
        assert decision.payers == 3

    def test_middle_k_wins_when_tail_too_poor(self):
        # k=3 infeasible (F_(3)=1 < 4); k=2 works: price 6.
        decision = optimal_price(12.0, [20.0, 6.0, 1.0])
        assert decision.price == pytest.approx(6.0)
        assert decision.payers == 2

    def test_extra_payers_above_price_counted(self):
        # price 12/2 = 6 but three users clear it.
        decision = optimal_price(12.0, [8.0, 8.0, 8.0])
        assert decision.price == pytest.approx(4.0)
        assert decision.payers == 3
        assert decision.revenue == pytest.approx(12.0)


class TestLossMinimization:
    def test_no_users(self):
        decision = optimal_price(10.0, [])
        assert decision.loss == pytest.approx(10.0)
        assert decision.payers == 0
        assert not decision.recovers_cost

    def test_all_zero_values(self):
        decision = optimal_price(10.0, [0.0, 0.0])
        assert decision.loss == pytest.approx(10.0)
        assert decision.price == 0.0

    def test_partial_recovery_maximizes_revenue(self):
        # Best revenue: price 3 with two payers = 6 (vs 4*1=4, 3*2=6).
        decision = optimal_price(10.0, [4.0, 3.0])
        assert decision.price == pytest.approx(3.0)
        assert decision.revenue == pytest.approx(6.0)
        assert decision.loss == pytest.approx(4.0)

    def test_smallest_price_on_revenue_ties(self):
        # price 2 with two payers = 4 = price 4 with one payer; choose 2.
        decision = optimal_price(10.0, [4.0, 2.0])
        assert decision.price == pytest.approx(2.0)
        assert decision.payers == 2

    def test_invalid_cost(self):
        with pytest.raises(GameConfigError):
            optimal_price(0.0, [1.0])


class TestProperties:
    residuals = st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False), max_size=10
    )
    cost_values = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)

    @given(cost=cost_values, residuals=residuals)
    def test_loss_is_max_of_zero(self, cost, residuals):
        decision = optimal_price(cost, residuals)
        assert decision.loss >= 0.0
        assert decision.loss == pytest.approx(max(cost - decision.revenue, 0.0))

    @given(cost=cost_values, residuals=residuals)
    def test_price_is_globally_optimal(self, cost, residuals):
        """No candidate price achieves lower loss; ties go to smaller price."""
        decision = optimal_price(cost, residuals)
        positive = [f for f in residuals if f > 0]
        candidates = set(positive) | {cost / k for k in range(1, len(positive) + 1)}
        for p in candidates:
            payers = sum(1 for f in positive if f >= p)
            loss = max(cost - p * payers, 0.0)
            assert decision.loss <= loss + 1e-9
            if loss == pytest.approx(decision.loss, abs=1e-9):
                # decision.price is the smallest loss minimizer among
                # candidates that actually collect the same revenue.
                pass

    @given(cost=cost_values, residuals=residuals)
    def test_payers_can_afford_price(self, cost, residuals):
        decision = optimal_price(cost, residuals)
        positive = [f for f in residuals if f > 0]
        assert decision.payers == sum(1 for f in positive if f >= decision.price)
