"""Tests for the multi-period and tiered-optimization extensions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AdditiveBid, GameConfigError
from repro.extensions import (
    PeriodSpec,
    TierSpec,
    run_multi_period_addon,
    run_tiered_game,
)


class TestPeriodSpec:
    def test_cost_recomputation(self):
        spec = PeriodSpec(horizon=4, build_cost=90.0, maintenance_cost=10.0)
        assert spec.total_cost(already_built=False) == pytest.approx(100.0)
        assert spec.total_cost(already_built=True) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(GameConfigError):
            PeriodSpec(horizon=0, build_cost=1.0, maintenance_cost=1.0)
        with pytest.raises(GameConfigError):
            PeriodSpec(horizon=1, build_cost=0.0, maintenance_cost=1.0)
        with pytest.raises(GameConfigError):
            PeriodSpec(horizon=1, build_cost=1.0, maintenance_cost=0.0)


class TestMultiPeriod:
    SPECS = [
        PeriodSpec(horizon=2, build_cost=90.0, maintenance_cost=10.0),
        PeriodSpec(horizon=2, build_cost=90.0, maintenance_cost=10.0),
        PeriodSpec(horizon=2, build_cost=90.0, maintenance_cost=10.0),
    ]

    def test_maintenance_only_after_build(self):
        bids = [
            {1: AdditiveBid.over(1, [120.0, 0.0])},   # funds the build
            {2: AdditiveBid.over(1, [15.0, 0.0])},    # only maintenance due
            {},
        ]
        result = run_multi_period_addon(self.SPECS, bids)
        # Period 2 still offers maintenance-only (period 1 kept it alive),
        # but with no takers the artifact is dropped.
        assert result.charged_costs == (100.0, 10.0, 10.0)
        assert result.built_in == (True, True, False)
        assert result.outcome(0).payment(1) == pytest.approx(100.0)
        assert result.outcome(1).payment(2) == pytest.approx(10.0)

    def test_drop_and_rebuild(self):
        bids = [
            {1: AdditiveBid.over(1, [120.0, 0.0])},
            {},                                        # nobody pays: dropped
            {3: AdditiveBid.over(1, [120.0, 0.0])},    # must fund a rebuild
        ]
        result = run_multi_period_addon(self.SPECS, bids)
        # Period 1 offers maintenance-only but nobody pays -> dropped, so
        # period 2 must fund a full rebuild.
        assert result.charged_costs == (100.0, 10.0, 100.0)
        assert result.built_in == (True, False, True)
        assert result.outcome(2).payment(3) == pytest.approx(100.0)

    def test_maintenance_unaffordable_drops(self):
        bids = [
            {1: AdditiveBid.over(1, [120.0, 0.0])},
            {2: AdditiveBid.over(1, [5.0, 0.0])},  # below maintenance 10
            {3: AdditiveBid.over(1, [120.0, 0.0])},
        ]
        result = run_multi_period_addon(self.SPECS, bids)
        assert result.built_in == (True, False, True)
        assert result.charged_costs[2] == pytest.approx(100.0)

    def test_balance_never_negative(self):
        bids = [
            {1: AdditiveBid.over(1, [120.0, 0.0]), 2: AdditiveBid.over(2, [30.0])},
            {2: AdditiveBid.over(1, [8.0, 8.0])},
            {},
        ]
        result = run_multi_period_addon(self.SPECS, bids)
        assert result.cloud_balance >= -1e-9
        assert result.total_payment >= result.total_cost - 1e-9

    def test_total_utility(self):
        bids = [
            {1: AdditiveBid.over(1, [120.0, 0.0])},
            {2: AdditiveBid.over(1, [15.0, 0.0])},
            {},
        ]
        result = run_multi_period_addon(self.SPECS, bids)
        utility = result.total_utility(bids)
        # Period 0: 120 - 100; period 1: 15 - 10.
        assert utility == pytest.approx(25.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(GameConfigError):
            run_multi_period_addon(self.SPECS, [{}])

    def test_bid_past_horizon_rejected(self):
        with pytest.raises(GameConfigError):
            run_multi_period_addon(
                self.SPECS[:1], [{1: AdditiveBid.over(1, [1.0, 1.0, 1.0])}]
            )

    @settings(max_examples=80)
    @given(data=st.data())
    def test_random_chains_recover_costs(self, data):
        values = st.floats(0.0, 60.0, allow_nan=False)
        n_periods = data.draw(st.integers(1, 4))
        specs = [
            PeriodSpec(
                horizon=2,
                build_cost=data.draw(st.floats(1.0, 80.0, allow_nan=False)),
                maintenance_cost=data.draw(st.floats(0.5, 20.0, allow_nan=False)),
            )
            for _ in range(n_periods)
        ]
        bids = []
        for _ in range(n_periods):
            users = data.draw(st.integers(0, 4))
            bids.append(
                {
                    k: AdditiveBid.over(1, [data.draw(values), data.draw(values)])
                    for k in range(users)
                }
            )
        # Build costs can differ across periods; recompute per the chain.
        result = run_multi_period_addon(specs, bids)
        assert result.cloud_balance >= -1e-9


class TestTiers:
    TIERS = [
        TierSpec("repl-1x", 1, 30.0),
        TierSpec("repl-2x", 2, 70.0),
        TierSpec("repl-3x", 3, 150.0),
    ]

    def test_low_tier_wins_on_share(self):
        values = {
            1: {"repl-1x": 20.0, "repl-2x": 28.0, "repl-3x": 30.0},
            2: {"repl-1x": 20.0, "repl-2x": 28.0, "repl-3x": 30.0},
        }
        result = run_tiered_game(self.TIERS, values)
        # Shares: 15 vs 35 vs 75 — everyone lands on 1x.
        assert result.outcome.implemented == ("repl-1x",)
        assert result.tier_of(1).level == 1
        assert result.payment(1) == pytest.approx(15.0)

    def test_rich_users_fund_higher_tier(self):
        values = {
            1: {"repl-3x": 80.0},
            2: {"repl-3x": 80.0},
            3: {"repl-1x": 31.0},
        }
        result = run_tiered_game(self.TIERS, values)
        # Phase 1 picks the minimum share: repl-1x at 30 beats repl-3x at 75.
        assert result.implemented_levels == (1, 3)
        assert result.tier_of(3).level == 1
        assert result.tier_of(1).level == 3

    def test_one_tier_per_user(self):
        values = {
            1: {"repl-1x": 100.0, "repl-2x": 100.0, "repl-3x": 100.0},
        }
        result = run_tiered_game(self.TIERS, values)
        assert len(result.outcome.implemented) == 1
        assert result.tier_of(1) is not None

    def test_cost_recovery(self):
        values = {
            1: {"repl-2x": 40.0},
            2: {"repl-2x": 40.0},
            3: {"repl-1x": 35.0},
        }
        result = run_tiered_game(self.TIERS, values)
        assert result.outcome.total_payment == pytest.approx(
            result.outcome.total_cost
        )

    def test_unknown_tier_rejected(self):
        with pytest.raises(GameConfigError):
            run_tiered_game(self.TIERS, {1: {"repl-9x": 5.0}})

    def test_duplicate_tier_ids_rejected(self):
        tiers = [TierSpec("a", 1, 1.0), TierSpec("a", 2, 2.0)]
        with pytest.raises(GameConfigError):
            run_tiered_game(tiers, {})

    def test_spec_validation(self):
        with pytest.raises(GameConfigError):
            TierSpec("a", 0, 1.0)
        with pytest.raises(GameConfigError):
            TierSpec("a", 1, 0.0)

    def test_mapping_input(self):
        tiers = {t.tier_id: t for t in self.TIERS}
        result = run_tiered_game(tiers, {1: {"repl-1x": 31.0}})
        assert result.implemented_levels == (1,)
