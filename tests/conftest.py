"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.astro import UniverseConfig, UseCaseConfig, build_use_case


@pytest.fixture(scope="session")
def small_use_case():
    """A scaled-down astronomy use case shared across test modules.

    600 particles / 8 snapshots builds in about a second and exercises the
    same calibration, pricing, and savings machinery as the full-size one.
    """
    return build_use_case(
        UseCaseConfig(
            universe=UniverseConfig(
                particles=600, halos=10, snapshots=8, min_halo_members=6
            ),
            halos_per_group=2,
        )
    )
