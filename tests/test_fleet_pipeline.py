"""The workload-to-bid pipeline: savings estimation through fleet pricing."""

from __future__ import annotations

import pytest

from repro import GameConfigError
from repro.db import (
    CandidateView,
    Catalog,
    CostModel,
    SavingsEstimator,
    Schema,
    Table,
)
from repro.fleet import TenantWorkload, build_fleet, candidate_catalog, workload_bid


def make_catalog(rows: int = 1000) -> Catalog:
    catalog = Catalog()
    table = Table(
        "events", Schema.of(uid="int", ts="int", payload="str", kind="int")
    )
    table.extend((i, i * 7, f"p{i}", i % 5) for i in range(rows))
    catalog.create_table(table)
    return catalog


@pytest.fixture()
def estimator() -> SavingsEstimator:
    return SavingsEstimator(make_catalog(), CostModel())


NARROW = CandidateView("v_uid_kind", "events", ("uid", "kind"))


class TestSavingsEstimator:
    def test_view_sizing(self, estimator):
        # events rows are int+int+str+int = 8+8+24+8 = 48 bytes wide; the
        # (uid, kind) view is 16 bytes per row.
        assert estimator.view_rows(NARROW) == 1000
        assert estimator.view_bytes(NARROW) == 16_000.0

    def test_saving_is_scan_byte_difference(self, estimator):
        model = estimator.model
        expected = (48_000.0 - 16_000.0) * model.scan_byte_weight
        assert estimator.saving_units_per_run(NARROW) == pytest.approx(expected)
        assert estimator.saving_seconds(NARROW, runs=2.0) == pytest.approx(
            2.0 * expected * model.seconds_per_unit
        )

    def test_filtered_view_adds_emit_savings(self, estimator):
        filtered = CandidateView(
            "v_filtered", "events", ("uid", "kind"), keep_fraction=0.5
        )
        model = estimator.model
        expected = (
            48_000.0 - 500 * 16
        ) * model.scan_byte_weight + 500 * model.emit_weight
        assert estimator.saving_units_per_run(filtered) == pytest.approx(expected)

    def test_useless_candidate_saves_nothing(self, estimator):
        wide = CandidateView(
            "v_wide", "events", ("uid", "ts", "payload", "kind")
        )
        assert estimator.saving_units_per_run(wide) == 0.0

    def test_build_cost_positive(self, estimator):
        assert estimator.build_units(NARROW) > 0

    def test_index_saving_clamped(self, estimator):
        generous = estimator.index_saving_units("events", probes=1, expected_matches=1)
        assert generous > 0
        hopeless = estimator.index_saving_units(
            "events", probes=10**9, expected_matches=0
        )
        assert hopeless == 0.0

    def test_candidate_validation(self):
        with pytest.raises(GameConfigError):
            CandidateView("v", "events", ())
        with pytest.raises(GameConfigError):
            CandidateView("v", "events", ("uid",), keep_fraction=0.0)
        with pytest.raises(GameConfigError):
            CandidateView("v", "events", ("uid",), keep_fraction=1.5)

    def test_negative_runs_rejected(self, estimator):
        with pytest.raises(GameConfigError):
            estimator.saving_seconds(NARROW, runs=-1.0)


class TestWorkloadBid:
    def workload(self, **overrides) -> TenantWorkload:
        fields = dict(
            tenant="acme",
            table_name="events",
            columns=("uid", "kind"),
            start=2,
            end=5,
            runs_per_slot=3.0,
        )
        fields.update(overrides)
        return TenantWorkload(**fields)

    def test_bid_spans_service_interval(self, estimator):
        bid = workload_bid(estimator, self.workload(), NARROW)
        assert bid is not None
        assert (bid.start, bid.end) == (2, 5)
        per_slot = estimator.saving_seconds(NARROW, 3.0)
        assert bid.value_at(3) == pytest.approx(per_slot)
        assert bid.total() == pytest.approx(4 * per_slot)

    def test_wrong_table_or_columns_yield_no_bid(self, estimator):
        other = CandidateView("v_other", "other_table", ("uid",))
        assert workload_bid(estimator, self.workload(), other) is None
        uncovering = CandidateView("v_uid", "events", ("uid",))
        assert (
            workload_bid(estimator, self.workload(), uncovering) is None
        ), "candidate missing a needed column cannot help"

    def test_workload_validation(self):
        with pytest.raises(GameConfigError):
            self.workload(start=0)
        with pytest.raises(GameConfigError):
            self.workload(end=1)
        with pytest.raises(GameConfigError):
            self.workload(runs_per_slot=-1.0)


class TestBuildFleet:
    def test_catalog_prices_storage(self, estimator):
        catalog = candidate_catalog(estimator, [NARROW], dollars_per_byte=0.001)
        assert catalog.get("v_uid_kind").cost == pytest.approx(16.0)
        assert catalog.get("v_uid_kind").kind == "view"
        with pytest.raises(GameConfigError):
            candidate_catalog(estimator, [NARROW], dollars_per_byte=0.0)

    def test_tenants_fund_a_worthwhile_view(self, estimator):
        workloads = [
            TenantWorkload(f"tenant-{i}", "events", ("uid", "kind"), 1, 6)
            for i in range(4)
        ]
        engine = build_fleet(
            estimator,
            workloads,
            [NARROW],
            horizon=6,
            dollars_per_byte=1e-4,
            shards=2,
        )
        report = engine.run_to_end()
        # Four tenants each save 32 units/slot (0.032 s); the view costs
        # 1.6: residuals 4 x 0.192 >> 1.6 at slot 1.
        assert report.implemented == {"v_uid_kind": 1}
        cost = engine.catalog.get("v_uid_kind").cost
        assert report.revenue_of("v_uid_kind") >= cost - 1e-9
        assert set(report.payments) == {f"tenant-{i}" for i in range(4)}

    def test_hopeless_view_stays_unbuilt(self, estimator):
        workloads = [
            TenantWorkload("solo", "events", ("uid", "kind"), 1, 2, 0.001)
        ]
        engine = build_fleet(
            estimator, workloads, [NARROW], horizon=3, dollars_per_byte=10.0
        )
        report = engine.run_to_end()
        assert report.implemented == {}
        assert report.ledger.revenue == 0.0

    def test_workload_beyond_horizon_rejected(self, estimator):
        workloads = [TenantWorkload("acme", "events", ("uid",), 1, 9)]
        candidates = [CandidateView("v_uid", "events", ("uid",))]
        with pytest.raises(GameConfigError):
            build_fleet(
                estimator, workloads, candidates, horizon=5, dollars_per_byte=1.0
            )
