"""Properties of the closed optimization loop.

Three contracts the advisor must never break:

* adopting a funded physical design returns **bit-identical rows** for
  every workload query;
* adoption never **increases** a workload's metered cost;
* fleet-priced **index candidates travel the identical mechanism path**
  as view candidates — same bids in, same game outcomes out.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advisor import AdvisorConfig, OptimizationAdvisor, WorkloadLog
from repro.cloudsim.catalog import OptimizationCatalog
from repro.db import (
    CandidateIndex,
    CandidateView,
    Catalog,
    CostModel,
    QueryEngine,
    SavingsEstimator,
    Schema,
    Table,
)
from repro.fleet import FleetEngine, TenantWorkload, build_fleet, workload_bid

SNAPSHOT_SCHEMA = Schema.of(
    pid="int", x="float", y="float", z="float", vx="float",
    vy="float", vz="float", mass="float", halo="int",
)


def snapshot_catalog(seed: int, rows: int, halos: int) -> Catalog:
    catalog = Catalog()
    rng = np.random.default_rng(seed)
    for name in ("snap_01", "snap_02"):
        catalog.create_table(
            Table.from_columns(
                name,
                SNAPSHOT_SCHEMA,
                {
                    "pid": np.arange(rows),
                    "x": rng.normal(size=rows),
                    "y": rng.normal(size=rows),
                    "z": rng.normal(size=rows),
                    "vx": rng.normal(size=rows),
                    "vy": rng.normal(size=rows),
                    "vz": rng.normal(size=rows),
                    "mass": rng.uniform(1, 2, size=rows),
                    "halo": rng.integers(-1, halos, size=rows),
                },
            )
        )
    return catalog


def run_workload(engine: QueryEngine, halos: int, model: CostModel):
    """A fixed query session; returns (all result rows, total units)."""
    rows, units = [], 0.0
    for halo in range(halos):
        members = engine.halo_members("snap_02", halo)
        rows.append(("members", halo, members.rows))
        units += model.units(members.meter)
        histogram = engine.progenitor_histogram(
            "snap_01", frozenset(r[0] for r in members.rows)
        )
        rows.append(("histogram", halo, histogram.rows))
        units += model.units(histogram.meter)
        top, meter = engine.top_contributor("snap_02", halo, "snap_01")
        rows.append(("top", halo, top))
        units += model.units(meter)
    return rows, units


class TestAdoptionIsInvisibleButCheaper:
    @given(
        seed=st.integers(0, 10_000),
        rows=st.integers(40, 400),
        halos=st.integers(2, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_rows_and_non_increasing_cost(self, seed, rows, halos):
        catalog = snapshot_catalog(seed, rows, halos)
        model = CostModel()
        log = WorkloadLog()
        engine = QueryEngine(catalog, model, log=log)

        with log.tenant("prop"):
            before_rows, before_units = run_workload(engine, halos, model)

        advisor = OptimizationAdvisor(
            catalog, model, AdvisorConfig(horizon=4, dollars_per_byte=1e-9)
        )
        outcome = advisor.advise(log)
        assert outcome.adopted, "storage this cheap must fund the designs"

        engine.log = None
        after_rows, after_units = run_workload(engine, halos, model)

        assert after_rows == before_rows, (
            "adopted plans must return bit-identical results"
        )
        assert after_units <= before_units, (
            f"adoption increased metered cost: {before_units} -> {after_units} "
            f"(adopted {outcome.adopted})"
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_second_round_is_idempotent_on_results(self, seed):
        catalog = snapshot_catalog(seed, 120, 5)
        model = CostModel()
        log = WorkloadLog()
        engine = QueryEngine(catalog, model, log=log)
        with log.tenant("prop"):
            run_workload(engine, 5, model)
        advisor = OptimizationAdvisor(
            catalog, model, AdvisorConfig(horizon=4, dollars_per_byte=1e-9)
        )
        advisor.advise(log)
        engine.log = None
        first_rows, first_units = run_workload(engine, 5, model)

        # A fresh advising round over a fresh log of the optimized run
        # must leave results untouched and never regress the cost.
        log2 = WorkloadLog()
        engine.log = log2
        with log2.tenant("prop"):
            run_workload(engine, 5, model)
        OptimizationAdvisor(
            catalog, model, AdvisorConfig(horizon=4, dollars_per_byte=1e-9)
        ).advise(log2)
        engine.log = None
        second_rows, second_units = run_workload(engine, 5, model)
        assert second_rows == first_rows
        assert second_units <= first_units


class TestIndexesShareTheMechanismPath:
    @given(
        seed=st.integers(0, 10_000),
        tenants=st.integers(1, 6),
        runs=st.floats(0.5, 20.0),
        rate=st.floats(1e-7, 1e-4),
    )
    @settings(max_examples=40, deadline=None)
    def test_fleet_outcome_equals_manual_games(self, seed, tenants, runs, rate):
        """build_fleet's games for a mixed view+index catalog are exactly
        the games one would build by hand from the same quotes — the
        candidate's kind never leaks into the mechanism."""
        catalog = snapshot_catalog(seed, 150, 4)
        catalog.analyze_table("snap_01", ["pid", "halo"])
        estimator = SavingsEstimator(catalog, CostModel())
        candidates = [
            CandidateView("v_narrow", "snap_01", ("pid", "halo")),
            CandidateIndex("ix_halo", "snap_01", "halo", probes_per_run=2.0),
        ]
        workloads = [
            TenantWorkload(
                tenant=f"t{i}",
                table_name="snap_01",
                columns=("pid", "halo"),
                start=1,
                end=4,
                runs_per_slot=runs,
                key_columns=("halo",),
            )
            for i in range(tenants)
        ]
        fleet = build_fleet(
            estimator, workloads, candidates, horizon=4, dollars_per_byte=rate
        )
        report = fleet.run_to_end()

        # The hand-built twin: same costs, same bids, kind erased.
        quotes = estimator.price_many(candidates)
        manual_catalog = OptimizationCatalog.from_costs(
            {c.name: quotes[c.name].view_bytes * rate for c in candidates}
        )
        manual = FleetEngine(manual_catalog, horizon=4)
        for workload in workloads:
            for candidate in candidates:
                bid = workload_bid(
                    estimator, workload, candidate, quote=quotes[candidate.name]
                )
                if bid is not None:
                    manual.place_bid(workload.tenant, candidate.name, bid)
        manual_report = manual.run_to_end()

        assert dict(report.implemented) == dict(manual_report.implemented)
        assert dict(report.payments) == dict(manual_report.payments)
        assert dict(report.granted_at) == dict(manual_report.granted_at)

    @given(seed=st.integers(0, 10_000), probes=st.floats(0.5, 50.0))
    @settings(max_examples=60, deadline=None)
    def test_price_many_matches_per_candidate_methods(self, seed, probes):
        catalog = snapshot_catalog(seed, 80, 3)
        catalog.analyze_table("snap_02", ["pid", "halo", "mass"])
        estimator = SavingsEstimator(catalog, CostModel())
        candidates = [
            CandidateView("v", "snap_02", ("pid", "halo"), keep_fraction=0.5),
            CandidateIndex("ih", "snap_02", "halo", probes_per_run=probes),
            CandidateIndex("is", "snap_02", "mass", kind="sorted"),
        ]
        quotes = estimator.price_many(candidates)
        assert quotes["v"].saving_units_per_run == estimator.saving_units_per_run(
            candidates[0]
        )
        for name, candidate in (("ih", candidates[1]), ("is", candidates[2])):
            assert quotes[name].view_bytes == estimator.index_bytes(candidate)
            assert quotes[name].saving_units_per_run == (
                estimator.index_saving_units_per_run(candidate)
            )
