"""The fast engine must be *exactly* the seed iterative implementation.

The sort-once/single-scan solver (:mod:`repro.core.fastshapley`) and the
incremental slot stepping replaced the seed's rebuild-the-set eviction
loop. These property tests replay randomized bid profiles — including
``math.inf`` forced bids and zero bids — through both and demand identical
serviced sets, identical prices (bit-for-bit, both sides compute the same
``cost / k`` division), identical payments, and identical round counts.

The reference implementations below are verbatim copies of the seed
algorithms, kept here so the library can never drift away from them
unnoticed.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run_shapley
from repro.core.online import AddOnState, SubstOnState
from repro.core.outcome import ShapleyResult
from repro.utils.numeric import close, isclose_or_greater

# ------------------------------------------------------------- reference --


def reference_shapley(cost: float, bids: dict) -> ShapleyResult:
    """The seed's iterative-eviction Shapley loop, verbatim."""
    serviced = {user for user, bid in bids.items() if bid > 0}
    price = 0.0
    rounds = 0
    while serviced:
        rounds += 1
        price = cost / len(serviced)
        keep = {user for user in serviced if isclose_or_greater(bids[user], price)}
        if keep == serviced:
            break
        serviced = keep
    if not serviced:
        return ShapleyResult(frozenset(), 0.0, {}, rounds)
    payments = {user: price for user in serviced}
    return ShapleyResult(frozenset(serviced), price, payments, rounds)


def reference_substoff(costs: dict, bids: dict):
    """The seed's phase loop (deterministic ties), verbatim in substance."""
    order = {j: k for k, j in enumerate(costs)}
    remaining_costs = dict(costs)
    active = {user: dict(row) for user, row in bids.items()}
    implemented: list = []
    grants: dict = {}
    payments: dict = {}
    shares: dict = {}
    while True:
        feasible: dict = {}
        for optimization, cost in remaining_costs.items():
            if math.isinf(cost):
                continue
            column = {
                user: row.get(optimization, 0.0) for user, row in active.items()
            }
            result = reference_shapley(cost, column)
            if result.implemented:
                feasible[optimization] = (result.price, result.serviced)
        if not feasible:
            return tuple(implemented), grants, payments, shares
        min_share = min(price for price, _ in feasible.values())
        tied = [j for j, (price, _) in feasible.items() if close(price, min_share)]
        chosen = min(tied, key=order.__getitem__)
        share, serviced = feasible[chosen]
        implemented.append(chosen)
        shares[chosen] = share
        for user in serviced:
            grants[user] = chosen
            payments[user] = share
            active[user] = {}
        remaining_costs[chosen] = math.inf


# ------------------------------------------------------------ strategies --

finite_bids = st.floats(min_value=0.0, max_value=200.0, allow_nan=False)
bid_values = st.one_of(finite_bids, st.just(0.0), st.just(math.inf))
costs = st.floats(min_value=0.25, max_value=500.0, allow_nan=False)


@st.composite
def bid_profiles(draw, max_users=12):
    n = draw(st.integers(0, max_users))
    return {i: draw(bid_values) for i in range(n)}


@st.composite
def slot_sequences(draw, max_users=10, max_slots=6):
    """A per-slot sequence of sparse bid updates (arrivals and revisions)."""
    n = draw(st.integers(1, max_users))
    slots = draw(st.integers(1, max_slots))
    updates = []
    for _ in range(slots):
        changed = draw(
            st.dictionaries(
                st.integers(0, n - 1), bid_values, min_size=0, max_size=n
            )
        )
        updates.append(changed)
    return updates


@st.composite
def subst_slot_sequences(draw, max_users=8, max_opts=3, max_slots=5):
    n_opts = draw(st.integers(1, max_opts))
    opt_costs = {
        f"opt{j}": draw(st.floats(0.25, 120.0, allow_nan=False))
        for j in range(n_opts)
    }
    n = draw(st.integers(1, max_users))
    slots = draw(st.integers(1, max_slots))
    updates = []
    for _ in range(slots):
        rows = draw(
            st.dictionaries(
                st.integers(0, n - 1),
                st.fixed_dictionaries(
                    {j: finite_bids for j in opt_costs}
                ),
                min_size=0,
                max_size=n,
            )
        )
        updates.append(rows)
    return opt_costs, updates


# ----------------------------------------------------------------- tests --


class TestSingleShot:
    @settings(max_examples=300)
    @given(cost=costs, bids=bid_profiles())
    def test_scan_equals_iterative(self, cost, bids):
        fast = run_shapley(cost, bids)
        slow = reference_shapley(cost, bids)
        assert fast.serviced == slow.serviced
        assert fast.price == slow.price  # same division, bit-for-bit
        assert fast.payments == slow.payments
        assert fast.rounds == slow.rounds

    def test_forced_and_zero_bids_mixed(self):
        bids = {1: math.inf, 2: math.inf, 3: 26.0, 4: 0.0, 5: 0.0}
        fast = run_shapley(100.0, bids)
        slow = reference_shapley(100.0, bids)
        assert fast == slow
        assert fast.serviced == frozenset({1, 2})
        assert fast.price == 50.0

    def test_all_infinite(self):
        fast = run_shapley(90.0, {i: math.inf for i in range(3)})
        assert fast.price == 30.0
        assert fast.serviced == frozenset(range(3))


class TestIncrementalAddOnSlots:
    """step_changed must track the seed per-slot full recomputation."""

    @settings(max_examples=200)
    @given(cost=costs, updates=slot_sequences())
    def test_incremental_equals_full_replay(self, cost, updates):
        state = AddOnState(cost)
        current: dict = {}  # the profile a full recomputation would see
        cumulative: frozenset = frozenset()
        for t, changed in enumerate(updates, start=1):
            delta = state.step_changed(t, changed)

            current.update(changed)
            replay_bids = dict(current)
            for user in cumulative:
                replay_bids[user] = math.inf
            slow = reference_shapley(cost, replay_bids)

            assert state.cumulative == slow.serviced or (
                not slow.serviced and state.cumulative == cumulative
            )
            if slow.serviced:
                assert delta.price == slow.price
                assert delta.newly_serviced == slow.serviced - cumulative
                cumulative = slow.serviced
            else:
                assert delta.price == 0.0
                assert delta.newly_serviced == frozenset()
            if cumulative:
                assert state.exit_price(next(iter(cumulative))) == delta.price

    @settings(max_examples=100)
    @given(cost=costs, updates=slot_sequences())
    def test_incremental_equals_compat_step(self, cost, updates):
        """The two entry points of AddOnState agree slot for slot."""
        incremental = AddOnState(cost)
        full = AddOnState(cost)
        current: dict = {}
        for t, changed in enumerate(updates, start=1):
            delta = incremental.step_changed(t, changed)
            current.update(changed)
            result = full.step(t, current)
            assert incremental.cumulative == full.cumulative
            assert delta.price == result.price
            assert incremental.implemented_at == full.implemented_at


class TestIncrementalSubstOnSlots:
    @settings(max_examples=100)
    @given(game=subst_slot_sequences())
    def test_incremental_equals_reference_phases(self, game):
        opt_costs, updates = game
        state = SubstOnState(opt_costs)
        current: dict = {}  # unserviced users' rows, as full replay sees them
        grants: dict = {}
        for t, rows in enumerate(updates, start=1):
            delta = state.step_changed(t, rows)

            for user, row in rows.items():
                if user not in grants:
                    current[user] = dict(row)
            matrix = {u: dict(r) for u, r in current.items()}
            for user, locked in grants.items():
                row = {j: 0.0 for j in opt_costs}
                row[locked] = math.inf
                matrix[user] = row
            implemented, slot_grants, payments, shares = reference_substoff(
                opt_costs, matrix
            )

            assert dict(state.grants) == slot_grants
            assert dict(delta.shares) == shares
            new = {u: j for u, j in slot_grants.items() if u not in grants}
            assert dict(delta.new_grants) == new
            for user in new:
                current.pop(user, None)
            grants = slot_grants
        for user, optimization in grants.items():
            assert state.exit_price(user) == shares[optimization]
