"""Tests for the view-vs-index substitutable game built from the engine."""

from __future__ import annotations

import pytest

from repro import run_substoff
from repro.astro.alternatives import build_index_or_view_game
from repro.errors import GameConfigError


class TestGameConstruction:
    def test_two_optimizations(self, small_use_case):
        game = build_index_or_view_game(small_use_case)
        assert set(game.costs) == {game.view_id, game.index_id}
        assert all(c > 0 for c in game.costs.values())

    def test_defaults_to_final_snapshot(self, small_use_case):
        game = build_index_or_view_game(small_use_case)
        assert game.table_name == small_use_case.final_table

    def test_values_scale_with_executions(self, small_use_case):
        one = build_index_or_view_game(small_use_case, executions=1)
        many = build_index_or_view_game(small_use_case, executions=50)
        for user in one.values:
            assert many.values[user] == pytest.approx(50 * one.values[user])

    def test_bids_are_substitutable_rows(self, small_use_case):
        game = build_index_or_view_game(small_use_case)
        for user, row in game.bids.items():
            assert set(row) == set(game.costs)
            assert len({round(v, 12) for v in row.values()}) == 1

    def test_conservative_value(self, small_use_case):
        game = build_index_or_view_game(small_use_case, executions=1)
        for user in game.values:
            conservative = min(
                game.view_saving_min[user], game.index_saving_min[user]
            )
            expected = small_use_case.pricing.compute_dollars(conservative)
            assert game.values[user] == pytest.approx(expected)

    def test_every_touching_user_present(self, small_use_case):
        game = build_index_or_view_game(small_use_case)
        # All six astronomers touch the final snapshot.
        assert set(game.values) == set(range(6))

    def test_other_snapshot(self, small_use_case):
        table = small_use_case.table_names[0]
        game = build_index_or_view_game(small_use_case, snapshot_table=table)
        assert game.table_name == table
        # Only stride-1 users touch every snapshot; stride 2/4 users might
        # miss the oldest one, so the participant set can shrink.
        assert set(game.values) <= set(range(6))

    def test_validation(self, small_use_case):
        with pytest.raises(GameConfigError):
            build_index_or_view_game(small_use_case, executions=0)
        with pytest.raises(GameConfigError):
            build_index_or_view_game(small_use_case, snapshot_table="snap_99")


class TestGamePlays:
    def test_substoff_builds_at_most_one(self, small_use_case):
        game = build_index_or_view_game(small_use_case, executions=60)
        outcome = run_substoff(game.costs, game.bids)
        # Pure substitutes with identical bidder sets: one build suffices.
        assert len(outcome.implemented) <= 1
        assert outcome.total_payment == pytest.approx(outcome.total_cost)

    def test_unaffordable_at_tiny_usage(self, small_use_case):
        game = build_index_or_view_game(small_use_case, executions=1)
        outcome = run_substoff(game.costs, game.bids)
        game60 = build_index_or_view_game(small_use_case, executions=60)
        outcome60 = run_substoff(game60.costs, game60.bids)
        # More usage can only help implementation.
        assert len(outcome.implemented) <= len(outcome60.implemented)
