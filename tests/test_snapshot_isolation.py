"""Epoch-versioned copy-on-write snapshots under interleaved mutation.

The PR 6 tentpole contract, verified end to end:

* Under any interleaving of ``SubmitBids``/``AdvanceSlots``/catalog
  mutations/``RunQuery`` dispatches, every query sees exactly one catalog
  epoch and returns rows (and metered units) bit-identical to a fully
  serialized execution at that epoch.
* ``as_of`` re-reads a retained earlier epoch bit-identically even after
  arbitrary later mutation; unretained epochs fail as typed errors.
* ``Table``'s columnar shadow never hands a reader a torn or mutable
  column: arrays and batches captured between mutations stay bit-identical
  to the moment of capture.
* The satellite surfaces: ``drop_table`` view cascade, index retirement,
  all-or-nothing ``extend``, ``epoch_batch`` coalescing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advisor import WorkloadLog
from repro.db import (
    Catalog,
    CatalogSnapshot,
    CostModel,
    MaterializedView,
    QueryEngine,
    Schema,
    Table,
)
from repro.errors import QueryError, SchemaError
from repro.gateway.envelopes import (
    AdvanceSlots,
    AdviseRequest,
    ErrorReply,
    QueryReply,
    RunQuery,
    SubmitBids,
)
from repro.gateway.service import SNAPSHOT_RETENTION, PricingService

# --------------------------------------------------------------- fixtures --


def build_db() -> Catalog:
    """Two deterministic particle snapshots, the workload's usual shape."""
    db = Catalog()
    rng = np.random.default_rng(7)
    for name in ("snap_old", "snap_new"):
        db.create_table(
            Table.from_columns(
                name,
                Schema.of(pid="int", halo="int"),
                {"pid": np.arange(80), "halo": rng.integers(-1, 4, size=80)},
            )
        )
    return db


def build_service() -> PricingService:
    return PricingService(
        catalog={"opt_a": 4.0, "opt_b": 6.0}, horizon=40, db_catalog=build_db()
    )


# The interleaving alphabet: fleet traffic, catalog mutations, and queries.
# Every op is deterministic given the service state it runs against, so a
# prefix replay on a fresh service reproduces the exact same states.
MUTATION_OPS = (
    ("bids", "tycho", "opt_a"),
    ("bids", "vera", "opt_b"),
    ("advance",),
    ("insert", 1),
    ("insert", 3),
    ("hash_index",),
    ("drop_hash_index",),
    ("analyze",),
)

QUERY_OPS = (
    ("q_members", 0),
    ("q_members", 2),
    ("q_histogram",),
)


def apply_mutation(service: PricingService, op) -> None:
    tag = op[0]
    if tag == "bids":
        _, tenant, optimization = op
        service.dispatch(
            SubmitBids(
                tenant=tenant,
                bids=((optimization, service.fleet.slot + 1, (1.5, 2.0)),),
            )
        )
    elif tag == "advance":
        if service.fleet.slot < service.fleet.horizon:
            service.dispatch(AdvanceSlots(slots=1))
    elif tag == "insert":
        table = service.db.table("snap_new")
        base = len(table)
        table.extend(
            [(10_000 + base + i, (base + i) % 5 - 1) for i in range(op[1])]
        )
    elif tag == "hash_index":
        service.db.create_hash_index("snap_new", "halo")
    elif tag == "drop_hash_index":
        if service.db.hash_index("snap_new", "halo") is not None:
            service.db.drop_hash_index("snap_new", "halo")
    elif tag == "analyze":
        service.db.analyze_table("snap_new")
    else:  # pragma: no cover - alphabet and dispatcher must stay in sync
        raise AssertionError(f"unknown op {op!r}")


def query_request(op, as_of=None) -> RunQuery:
    if op[0] == "q_members":
        return RunQuery(
            tenant="reader",
            query="members",
            table="snap_new",
            halo=op[1],
            as_of=as_of,
        )
    return RunQuery(
        tenant="reader",
        query="histogram",
        table="snap_old",
        pids=tuple(range(0, 60, 3)),
        as_of=as_of,
    )


# ----------------------------------------------- interleaving properties --


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.sampled_from(MUTATION_OPS + QUERY_OPS), min_size=1, max_size=10
    )
)
def test_interleaved_queries_match_serialized_execution(ops):
    """Every query under interleaving == the same query run serialized.

    Each captured reply is replayed against a fresh service that executes
    only the prefix of ops before it; rows, metered units, plan source and
    epoch must all be bit-identical. Epochs across the run must be
    monotonic — a query can never see an older state than its predecessor.
    """
    service = build_service()
    captured = []
    last_epoch = -1
    for position, op in enumerate(ops):
        if op[0].startswith("q_"):
            reply = service.dispatch(query_request(op))
            assert isinstance(reply, QueryReply), reply
            assert reply.epoch >= last_epoch
            last_epoch = reply.epoch
            captured.append((position, op, reply))
        else:
            apply_mutation(service, op)

    for position, op, reply in captured:
        fresh = build_service()
        for earlier in ops[:position]:
            if earlier[0].startswith("q_"):
                fresh.dispatch(query_request(earlier))
            else:
                apply_mutation(fresh, earlier)
        serialized = fresh.dispatch(query_request(op))
        assert serialized.rows == reply.rows
        assert serialized.units == reply.units
        assert serialized.source == reply.source
        assert serialized.epoch == reply.epoch

    # Time travel on the fully mutated service: every epoch a query pinned
    # is still retained (the alphabet is shorter than the retention window)
    # and re-reads bit-identically.
    for _, op, reply in captured:
        again = service.dispatch(query_request(op, as_of=reply.epoch))
        assert isinstance(again, QueryReply), again
        assert again.rows == reply.rows
        assert again.units == reply.units
        assert again.epoch == reply.epoch


def test_queries_see_fresh_rows_after_direct_table_mutation():
    """Row inserts move the epoch, so the snapshot cache can never serve
    stale rows for a current-state read."""
    service = build_service()
    before = service.dispatch(query_request(("q_members", 1)))
    assert isinstance(before, QueryReply)

    service.db.table("snap_new").insert((90_001, 1))
    after = service.dispatch(query_request(("q_members", 1)))
    assert after.epoch > before.epoch
    assert len(after.rows) == len(before.rows) + 1
    assert (90_001,) in after.rows

    # ... while the pinned earlier epoch still reads the old rows.
    pinned = service.dispatch(query_request(("q_members", 1), as_of=before.epoch))
    assert pinned.rows == before.rows
    assert pinned.epoch == before.epoch


def test_as_of_unknown_epoch_is_a_typed_query_error():
    service = build_service()
    reply = service.dispatch(query_request(("q_members", 0), as_of=10_000))
    assert isinstance(reply, ErrorReply)
    assert reply.code == "query"
    assert "not retained" in reply.message


def test_snapshot_retention_evicts_oldest_epoch():
    service = build_service()
    first = service.dispatch(query_request(("q_members", 0)))
    assert isinstance(first, QueryReply)
    for i in range(SNAPSHOT_RETENTION + 1):
        service.db.table("snap_new").insert((50_000 + i, 0))
        pinned = service.dispatch(query_request(("q_members", 0)))
        assert isinstance(pinned, QueryReply)
    evicted = service.dispatch(query_request(("q_members", 0), as_of=first.epoch))
    assert isinstance(evicted, ErrorReply)
    assert evicted.code == "query"


def test_advise_reply_echoes_post_adoption_epoch():
    service = build_service()
    for _ in range(6):
        service.dispatch(query_request(("q_members", 1)))
    before = service.db.epoch
    reply = service.dispatch(AdviseRequest(horizon=6, dollars_per_byte=1e-9))
    assert not isinstance(reply, ErrorReply), reply
    assert reply.epoch == service.db.epoch
    if reply.adopted:
        # The round moves the epoch at most twice — once for its ANALYZE
        # side effect, once for the whole adoption batch — no matter how
        # many designs were installed.
        assert before < service.db.epoch <= before + 2


# -------------------------------------------------- exactly-one-epoch --


class _MutatingLog(WorkloadLog):
    """A workload log that mutates the catalog from inside ``record_query``
    — the worst-case re-entrant writer a multi-step query can meet."""

    def __init__(self, catalog: Catalog, table_name: str, row) -> None:
        super().__init__()
        self._catalog = catalog
        self._table_name = table_name
        self._row = row

    def record_query(self, **kwargs):
        self._catalog.table(self._table_name).insert(self._row)
        return super().record_query(**kwargs)


def test_multistep_query_pins_one_epoch_under_reentrant_mutation():
    """``halo_chain`` runs members + histogram steps; a writer sneaking a
    *result-changing* row in between the steps must not be visible."""
    clean = QueryEngine(build_db(), CostModel())
    members = clean.halo_members("snap_new", 0)
    target_pid = int(members.rows[0][0])
    expected_chain, expected_meter = clean.halo_chain(
        ["snap_new", "snap_old"], 0
    )

    db = build_db()
    # Each log record lands a snap_old row whose pid IS a member of the
    # probed halo: without snapshot pinning the histogram step would count
    # it and the chain could flip.
    log = _MutatingLog(db, "snap_old", (target_pid, 3))
    engine = QueryEngine(db, CostModel(), log=log)
    epoch_before = db.epoch
    chain, meter = engine.halo_chain(["snap_new", "snap_old"], 0)

    assert db.epoch > epoch_before  # the writer really ran mid-query
    assert chain == expected_chain
    assert CostModel().units(meter) == CostModel().units(expected_meter)

    # Serialized-after semantics: a fresh query at the new epoch does see
    # the inserted rows.
    after = QueryEngine(db, CostModel()).progenitor_histogram(
        "snap_old", frozenset({target_pid})
    )
    counts = dict(after.rows)
    assert counts.get(3, 0) >= 1


def test_catalog_snapshot_survives_drop_table():
    db = build_db()
    snap = db.snapshot()
    assert isinstance(snap, CatalogSnapshot)
    pinned_rows = QueryEngine(snap, CostModel()).halo_members("snap_new", 0).rows

    db.drop_table("snap_new")
    with pytest.raises(QueryError):
        db.table("snap_new")
    # The pinned snapshot still serves the dropped table, bit-identically.
    again = QueryEngine(snap, CostModel()).halo_members("snap_new", 0)
    assert again.rows == pinned_rows
    assert snap.snapshot() is snap  # snapshotting a snapshot is identity


# ------------------------------------------------ torn-column properties --


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.sampled_from(("insert", "extend", "column", "batch", "snapshot")),
        max_size=24,
    )
)
def test_readers_never_observe_torn_columns(ops):
    """Arrays, batches and snapshots captured between mutations stay
    bit-identical to the moment of capture and are never writable."""
    table = Table.from_columns(
        "t",
        Schema.of(x="int", y="float"),
        {"x": np.arange(4), "y": np.linspace(0.0, 1.0, 4)},
    )
    captured = []
    next_x = 4
    for op in ops:
        if op == "insert":
            table.insert((next_x, next_x / 2.0))
            next_x += 1
        elif op == "extend":
            table.extend([(next_x + i, float(next_x + i)) for i in range(3)])
            next_x += 3
        elif op == "column":
            array = table.column_array("x")
            captured.append(("column", array, array.copy(), len(table)))
        elif op == "batch":
            batch = table.as_batch()
            frozen = [column.copy() for column in batch.columns]
            captured.append(("batch", batch, frozen, len(table)))
        else:
            snap = table.snapshot()
            captured.append(("snapshot", snap, list(snap.rows()), len(table)))

    for kind, obj, expected, n in captured:
        if kind == "column":
            assert not obj.flags.writeable
            assert len(obj) == n
            np.testing.assert_array_equal(obj, expected)
        elif kind == "batch":
            assert len(obj) == n
            for column, frozen in zip(obj.columns, expected):
                assert not column.flags.writeable
                np.testing.assert_array_equal(column, frozen)
        else:
            assert len(obj) == n
            assert list(obj.rows()) == expected
            batch = obj.as_batch()
            assert len(batch) == n
            assert batch.epoch == obj.version


def test_lazy_snapshot_columns_are_bit_identical_across_growth():
    """A snapshot's column arrays are derived lazily; buffer growth after
    the pin must not change what the snapshot reads."""
    table = Table.from_columns(
        "t", Schema.of(x="int"), {"x": np.arange(5)}
    )
    snap = table.snapshot()
    eager = snap.column_array("x").copy()
    # Force several buffer doublings past the pinned length.
    table.extend([(100 + i,) for i in range(200)])
    np.testing.assert_array_equal(snap.column_array("x"), eager)
    assert len(snap.as_batch()) == 5


# ------------------------------------------------------------ satellites --


def test_drop_table_cascades_dependent_views():
    db = build_db()
    engine = QueryEngine(db, CostModel())
    db.create_view(
        MaterializedView.projection_of(
            "v_members", db.table("snap_new"), ("pid", "halo")
        )
    )
    db.create_view(
        MaterializedView.projection_of(
            "v_other", db.table("snap_old"), ("pid", "halo")
        )
    )

    epoch = db.epoch
    db.drop_table("snap_new")
    assert db.epoch == epoch + 1
    assert not db.has_view("v_members")  # cascaded with its base table
    assert db.has_view("v_other")  # unrelated view untouched
    # The planner can never be offered a view over a missing base table.
    with pytest.raises(QueryError):
        engine.halo_members("snap_new", 0)


def test_index_retirement_bumps_epoch_and_planner_falls_back():
    db = build_db()
    db.analyze_table("snap_new")
    db.create_hash_index("snap_new", "halo")
    engine = QueryEngine(db, CostModel())

    with_index = engine.halo_members("snap_new", 2)
    assert with_index.source == "index"

    epoch = db.epoch
    db.drop_hash_index("snap_new", "halo")
    assert db.epoch == epoch + 1
    assert db.hash_index("snap_new", "halo") is None

    without = engine.halo_members("snap_new", 2)
    assert without.source != "index"
    assert without.rows == with_index.rows
    assert without.epoch > with_index.epoch

    with pytest.raises(QueryError, match="no hash index"):
        db.drop_hash_index("snap_new", "halo")


def test_sorted_index_retirement():
    db = build_db()
    db.create_sorted_index("snap_new", "pid")
    epoch = db.epoch
    db.drop_sorted_index("snap_new", "pid")
    assert db.epoch == epoch + 1
    assert db.sorted_index("snap_new", "pid") is None
    with pytest.raises(QueryError, match="no sorted index"):
        db.drop_sorted_index("snap_new", "pid")


def test_extend_is_all_or_nothing():
    table = Table("t", Schema.of(x="int"))
    table.insert((1,))
    version = table.version
    with pytest.raises(SchemaError):
        table.extend([(2,), ("not an int",), (3,)])
    assert len(table) == 1  # nothing from the bad batch landed
    assert table.version == version
    table.extend([(2,), (3,)])
    assert table.version == version + 1  # one bump for the whole batch
    table.extend([])
    assert table.version == version + 1  # empty batch is a no-op


def test_registered_table_mutations_move_the_catalog_epoch():
    db = Catalog()
    table = db.create_table(Table("t", Schema.of(x="int")))
    epoch = db.epoch
    table.insert((1,))
    assert db.epoch == epoch + 1
    table.extend([(2,), (3,)])
    assert db.epoch == epoch + 2
    db.drop_table("t")
    after_drop = db.epoch
    table.insert((4,))  # unregistered again: no catalog to notify
    assert db.epoch == after_drop


def test_epoch_batch_coalesces_to_one_boundary():
    db = Catalog()
    epoch = db.epoch
    with db.epoch_batch():
        db.create_table(
            Table.from_columns("t", Schema.of(x="int"), {"x": np.arange(3)})
        )
        with db.epoch_batch():  # nested batches join the outermost
            db.create_hash_index("t", "x")
            db.analyze_table("t")
        assert db.epoch == epoch  # nothing lands until the batch closes
    assert db.epoch == epoch + 1

    with db.epoch_batch():
        pass  # an empty batch must not move the epoch
    assert db.epoch == epoch + 1
