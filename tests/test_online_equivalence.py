"""Equivalence of the three online execution paths.

The batch runners, the incremental state machines, and the cloud-service
loop must agree: same cumulative sets, same grants, same payments. These
property tests replay random games through all of them.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AdditiveBid, SubstitutableBid, run_addon, run_subston
from repro.cloudsim import CloudService, OptimizationCatalog
from repro.core.online import AddOnState, SubstOnState

values = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


@st.composite
def additive_games(draw, max_users=6, max_slots=5):
    cost = draw(st.floats(0.5, 100.0, allow_nan=False))
    bids = {}
    for i in range(draw(st.integers(1, max_users))):
        start = draw(st.integers(1, max_slots))
        duration = draw(st.integers(1, max_slots - start + 1))
        bids[i] = AdditiveBid.over(
            start, draw(st.lists(values, min_size=duration, max_size=duration))
        )
    return cost, bids


@st.composite
def substitutable_games(draw, max_users=5, max_slots=4):
    n_opts = draw(st.integers(1, 3))
    costs = {j: draw(st.floats(0.5, 60.0, allow_nan=False)) for j in range(n_opts)}
    bids = {}
    for i in range(draw(st.integers(1, max_users))):
        start = draw(st.integers(1, max_slots))
        duration = draw(st.integers(1, max_slots - start + 1))
        subs = draw(
            st.sets(st.integers(0, n_opts - 1), min_size=1, max_size=n_opts)
        )
        bids[i] = SubstitutableBid.over(
            start,
            draw(st.lists(values, min_size=duration, max_size=duration)),
            subs,
        )
    return costs, bids


class TestAddOnPaths:
    @settings(max_examples=150)
    @given(game=additive_games())
    def test_state_machine_matches_batch(self, game):
        cost, bids = game
        horizon = max(b.end for b in bids.values())
        batch = run_addon(cost, bids, horizon=horizon)

        state = AddOnState(cost)
        for t in range(1, horizon + 1):
            residuals = {
                u: (b.residual(t) if t >= b.start else 0.0)
                for u, b in bids.items()
            }
            state.step(t, residuals)
            assert state.cumulative == batch.cumulative(t)
            assert state.price == pytest.approx(batch.price_by_slot[t])
        assert state.implemented_at == batch.implemented_at

    @settings(max_examples=100)
    @given(game=additive_games())
    def test_cloud_service_matches_batch(self, game):
        cost, bids = game
        horizon = max(b.end for b in bids.values())
        batch = run_addon(cost, bids, horizon=horizon)

        service = CloudService(
            OptimizationCatalog.from_costs({"opt": cost}),
            horizon=horizon,
            mode="additive",
        )
        for user, bid in bids.items():
            service.place_additive_bid(user, "opt", bid)
        report = service.run_to_end()

        for user in bids:
            assert report.payments.get(user, 0.0) == pytest.approx(
                batch.payment(user)
            )
        if batch.implemented:
            assert report.implemented == {"opt": batch.implemented_at}
        else:
            assert report.implemented == {}
        assert report.ledger.revenue == pytest.approx(batch.total_payment)


class TestSubstOnPaths:
    @settings(max_examples=100)
    @given(game=substitutable_games())
    def test_state_machine_matches_batch(self, game):
        costs, bids = game
        horizon = max(b.end for b in bids.values())
        batch = run_subston(costs, bids, horizon=horizon)

        state = SubstOnState(costs)
        for t in range(1, horizon + 1):
            matrix = {}
            for user, bid in bids.items():
                if user in state.grants:
                    continue
                if t >= bid.start:
                    residual = bid.residual(t)
                    matrix[user] = {
                        j: (residual if j in bid.substitutes else 0.0)
                        for j in costs
                    }
                else:
                    matrix[user] = {j: 0.0 for j in costs}
            state.step(t, matrix)
        assert state.grants == dict(batch.grants)
        assert state.granted_at == dict(batch.granted_at)
        assert state.implemented_at == dict(batch.implemented_at)

    @settings(max_examples=80)
    @given(game=substitutable_games())
    def test_cloud_service_matches_batch(self, game):
        costs, bids = game
        horizon = max(b.end for b in bids.values())
        batch = run_subston(costs, bids, horizon=horizon)

        service = CloudService(
            OptimizationCatalog.from_costs(costs),
            horizon=horizon,
            mode="substitutable",
        )
        for user, bid in bids.items():
            service.place_substitutable_bid(user, bid)
        report = service.run_to_end()

        for user in bids:
            assert report.payments.get(user, 0.0) == pytest.approx(
                batch.payment(user)
            )
        assert report.implemented == dict(batch.implemented_at)
        for user, optimization in batch.grants.items():
            assert report.grant_slot(user, optimization) == batch.granted_at[user]
