"""Unit tests for the Regret baseline (additive and substitutable)."""

from __future__ import annotations

import pytest

from repro import AdditiveBid, MechanismError, SubstitutableBid
from repro.baseline import (
    run_regret_additive,
    run_regret_additive_many,
    run_regret_substitutable,
)


class TestAdditiveSingleOpt:
    def test_never_implemented(self):
        bids = {1: AdditiveBid.over(1, [1.0, 1.0, 1.0])}
        outcome = run_regret_additive(100.0, bids)
        assert not outcome.implemented
        assert outcome.total_utility == 0.0
        assert outcome.cloud_balance == 0.0

    def test_regret_trace(self):
        bids = {
            1: AdditiveBid.over(1, [10.0, 10.0, 10.0]),
            2: AdditiveBid.over(2, [5.0, 5.0]),
        }
        outcome = run_regret_additive(1000.0, bids)
        # R(1)=0, R(2)=10, R(3)=25, R(4)... horizon is 3.
        assert outcome.regret_trace == (0.0, 0.0, 10.0, 25.0)

    def test_greedy_implementation_slot(self):
        bids = {1: AdditiveBid.over(1, [10.0, 10.0, 10.0, 10.0])}
        outcome = run_regret_additive(20.0, bids)
        # R(3) = 20 >= 20: implemented at t_r = 3.
        assert outcome.implemented_at == 3

    def test_value_at_tr_is_lost(self):
        bids = {1: AdditiveBid.over(1, [10.0, 10.0, 10.0, 10.0])}
        outcome = run_regret_additive(20.0, bids)
        # Residual after t_r=3 is only slot 4's value: 10 < price 20.
        # The lone user cannot recover the cost; loss-minimizing price is 10.
        assert outcome.price == pytest.approx(10.0)
        assert outcome.serviced == frozenset({1})
        assert outcome.total_utility == pytest.approx(10.0 - 20.0)
        assert outcome.cloud_balance == pytest.approx(-10.0)

    def test_recovering_case(self):
        bids = {
            1: AdditiveBid.over(1, [30.0, 30.0]),
            2: AdditiveBid.over(2, [0.0, 40.0, 40.0]),
        }
        outcome = run_regret_additive(30.0, bids, horizon=4)
        # R(2) = 30 >= 30: t_r = 2. Residuals after 2: user1 -> 0 (slot 2 is
        # her last... values [30,30] over slots 1-2, so residual(3)=0);
        # user2 -> 80. Price 30 charged to user 2 alone.
        assert outcome.implemented_at == 2
        assert outcome.price == pytest.approx(30.0)
        assert outcome.serviced == frozenset({2})
        assert outcome.total_utility == pytest.approx(80.0 - 30.0)
        assert outcome.cloud_balance == pytest.approx(0.0)

    def test_implementation_requires_positive_cost(self):
        with pytest.raises(MechanismError):
            run_regret_additive(0.0, {1: AdditiveBid.single_slot(1, 5.0)})

    def test_empty_game(self):
        outcome = run_regret_additive(5.0, {}, horizon=3)
        assert not outcome.implemented
        assert outcome.regret_trace == (0.0, 0.0, 0.0, 0.0)


class TestAdditiveMany:
    def test_independent_opts(self):
        costs = {"a": 20.0, "b": 1000.0}
        bids = {
            "a": {1: AdditiveBid.over(1, [10.0] * 4)},
            "b": {1: AdditiveBid.over(1, [1.0] * 4)},
        }
        outcome = run_regret_additive_many(costs, bids)
        assert outcome.per_opt["a"].implemented
        assert not outcome.per_opt["b"].implemented
        assert outcome.total_cost == pytest.approx(20.0)

    def test_unknown_opt_rejected(self):
        with pytest.raises(MechanismError):
            run_regret_additive_many({"a": 5.0}, {"zzz": {}})


class TestSubstitutable:
    def test_lock_stops_regret_contribution(self):
        costs = {"a": 10.0, "b": 12.0}
        bids = {
            1: SubstitutableBid.over(1, [5.0] * 6, {"a", "b"}),
        }
        outcome = run_regret_substitutable(costs, bids)
        # Both accumulate regret together; "a" crosses at t=3 (R=10) and
        # services user 1. Locked, she stops feeding "b", whose regret
        # freezes at 10 < 12: never implemented.
        assert outcome.per_opt["a"].implemented_at == 3
        assert not outcome.per_opt["b"].implemented
        assert outcome.per_opt["b"].regret_trace[-1] == pytest.approx(10.0)
        assert outcome.per_opt["a"].serviced == frozenset({1})

    def test_unserviced_user_keeps_feeding_other_substitutes(self):
        costs = {"a": 10.0, "b": 12.0}
        bids = {
            # User 1 wants only "a" and funds its regret, but has no
            # residual left when it is implemented.
            1: SubstitutableBid.over(1, [5.0, 5.0, 0.0, 0.0, 0.0], {"a"}),
            # User 2 wants both; she is not serviced by "a" (her residual is
            # large, but let's see) — she keeps feeding "b" only if
            # unserviced.
            2: SubstitutableBid.over(1, [2.0] * 5, {"b"}),
        }
        outcome = run_regret_substitutable(costs, bids)
        # "a" crosses at t=3 (R_a = 10). User 1's residual after 3 is 0:
        # nobody pays, cloud eats the full cost.
        assert outcome.per_opt["a"].implemented_at == 3
        assert outcome.per_opt["a"].serviced == frozenset()
        assert outcome.per_opt["a"].cloud_balance == pytest.approx(-10.0)
        # "b" accumulates 2/slot from user 2: reaches 12 after 6 slots — but
        # horizon is 5, so it is never implemented.
        assert not outcome.per_opt["b"].implemented

    def test_serviced_user_realizes_residual(self):
        costs = {"a": 6.0}
        bids = {
            1: SubstitutableBid.over(1, [3.0] * 4, {"a"}),
            2: SubstitutableBid.over(1, [3.0] * 4, {"a"}),
        }
        outcome = run_regret_substitutable(costs, bids)
        # R_a: 0, 6 at t=2 -> implemented t_r=2; residuals after 2: 6 each.
        assert outcome.per_opt["a"].implemented_at == 2
        assert outcome.per_opt["a"].serviced == frozenset({1, 2})
        assert outcome.per_opt["a"].price == pytest.approx(3.0)
        assert outcome.total_utility == pytest.approx(12.0 - 6.0)

    def test_same_slot_processing_in_cost_order(self):
        # Both cross at t=2; "a" is processed first (mapping order) and
        # takes the user, so "b" still gets implemented but services nobody.
        costs = {"a": 4.0, "b": 4.0}
        bids = {1: SubstitutableBid.over(1, [4.0] * 3, {"a", "b"})}
        outcome = run_regret_substitutable(costs, bids)
        assert outcome.per_opt["a"].implemented_at == 2
        assert outcome.per_opt["a"].serviced == frozenset({1})
        # "b"'s regret froze at 4 when the user locked to "a"... it crossed
        # in the same slot, after "a" (mapping order), with the user already
        # locked: implemented but unserviced.
        assert outcome.per_opt["b"].implemented_at == 2
        assert outcome.per_opt["b"].serviced == frozenset()

    def test_unknown_substitute_rejected(self):
        with pytest.raises(MechanismError):
            run_regret_substitutable(
                {"a": 5.0}, {1: SubstitutableBid.single_slot(1, 5.0, {"x"})}
            )
